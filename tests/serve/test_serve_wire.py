"""Tests of the serve wire helpers: SSE encoding and request parsing."""

from __future__ import annotations

import json

import pytest

from repro.errors import RegistryError, ServeError
from repro.serve.parse import portfolio_from_request, problem_from_request
from repro.serve.sse import format_sse

PROBLEM_BODY = {
    "model": "BlackScholes1D",
    "model_params": {"spot": 100.0, "rate": 0.05, "volatility": 0.2},
    "option": "CallEuro",
    "option_params": {"strike": 100.0, "maturity": 1.0},
    "method": "CF_Call",
    "label": "atm_call",
}


class TestFormatSse:
    def test_minimal_block(self):
        block = format_sse({"done": 1})
        assert block == b'data: {"done":1}\n\n'

    def test_full_block_field_order(self):
        block = format_sse({"done": 1}, event="progress", event_id=7)
        assert block == b'id: 7\nevent: progress\ndata: {"done":1}\n\n'

    def test_data_is_single_line_json(self):
        block = format_sse({"text": "line1\nline2"})
        body = block.decode()
        assert body.endswith("\n\n")
        payload = json.loads(body[len("data: ") : -2])
        assert payload == {"text": "line1\nline2"}

    def test_multiline_event_name_rejected(self):
        with pytest.raises(ValueError):
            format_sse({}, event="bad\nname")


class TestProblemFromRequest:
    def test_round_trip_matches_direct_construction(self):
        problem = problem_from_request(PROBLEM_BODY)
        assert problem.label == "atm_call"
        assert problem.method_name == "CF_Call"
        assert problem.compute().price == pytest.approx(10.450583572185565)

    @pytest.mark.parametrize("missing", ["model", "option", "method"])
    def test_missing_leg_rejected(self, missing):
        body = {key: value for key, value in PROBLEM_BODY.items() if key != missing}
        with pytest.raises(ServeError, match=missing):
            problem_from_request(body)

    def test_unknown_registry_name_propagates(self):
        with pytest.raises(RegistryError):
            problem_from_request({**PROBLEM_BODY, "model": "NotAModel"})

    def test_non_mapping_params_rejected(self):
        with pytest.raises(ServeError, match="model_params"):
            problem_from_request({**PROBLEM_BODY, "model_params": [1, 2]})

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeError):
            problem_from_request(["not", "a", "dict"])


class TestPortfolioFromRequest:
    def _body(self, **extra):
        positions = [
            {**PROBLEM_BODY, "label": f"pos_{index}", **extra.pop(index, {})}
            for index in range(3)
        ]
        return {"name": "req", "positions": positions, **extra}

    def test_positions_become_portfolio_in_order(self):
        portfolio, priorities = portfolio_from_request(self._body())
        assert len(portfolio) == 3
        assert [position.label for position in portfolio] == [
            "pos_0",
            "pos_1",
            "pos_2",
        ]
        assert priorities is None

    def test_quantity_category_and_priority(self):
        body = {
            "positions": [
                {**PROBLEM_BODY, "quantity": 2.5, "category": "barrier"},
                {**PROBLEM_BODY, "priority": 9},
            ]
        }
        portfolio, priorities = portfolio_from_request(body)
        positions = list(portfolio)
        assert positions[0].quantity == 2.5
        assert positions[0].category == "barrier"
        assert priorities == {1: 9.0}

    def test_empty_positions_rejected(self):
        with pytest.raises(ServeError, match="positions"):
            portfolio_from_request({"positions": []})

    def test_bad_position_error_names_its_index(self):
        body = {"positions": [PROBLEM_BODY, {"model": "BlackScholes1D"}]}
        with pytest.raises(ServeError, match=r"positions\[1\]"):
            portfolio_from_request(body)
