"""End-to-end tests of the ``repro-serve`` daemon over real HTTP.

One module-scoped server (local backend, auth enabled) carries most tests;
rate limiting and cancellation get their own short-lived instances.  The
centerpiece is the acceptance path: an authed ``POST /v1/run`` whose SSE
stream shows incremental progress and whose prices are bit-identical to an
in-process ``ValuationSession.run``, followed by an identical request that
is answered entirely from the shared cache without touching workers.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ValuationSession
from repro.core.portfolio import Portfolio, Position
from repro.serve import ReproServer, ServerConfig
from repro.serve.service import PricingService

TOKEN = "test-secret"


def _position_body(strike: float, **extra) -> dict:
    return {
        "model": "BlackScholes1D",
        "model_params": {"spot": 100.0, "rate": 0.05, "volatility": 0.2},
        "option": "CallEuro",
        "option_params": {"strike": strike, "maturity": 1.0},
        "method": "CF_Call",
        "label": f"call_{strike:g}",
        **extra,
    }


def _slow_position_body(strike: float) -> dict:
    body = _position_body(strike)
    body["method"] = "MC_European"
    body["method_params"] = {"n_paths": 120_000, "seed": int(strike)}
    return body


def _portfolio(strikes: list[float]) -> Portfolio:
    from repro.serve.parse import problem_from_request

    portfolio = Portfolio(name="reference")
    for strike in strikes:
        problem = problem_from_request(_position_body(strike))
        portfolio.add(
            Position(problem=problem, label=problem.label or f"call_{strike:g}")
        )
    return portfolio


def _request(url: str, data=None, token: str | None = TOKEN, method=None):
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    body = json.dumps(data).encode() if data is not None else None
    request = urllib.request.Request(
        url, data=body, headers=headers, method=method or ("POST" if body else "GET")
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _read_sse(url: str, token: str | None = TOKEN) -> list[tuple[str, dict]]:
    """Read one SSE stream to EOF; returns ``(event_name, payload)`` pairs."""
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    request = urllib.request.Request(url, headers=headers)
    events, name = [], "message"
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        for raw in response:
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                name = line[len("event: ") :]
            elif line.startswith("data: "):
                events.append((name, json.loads(line[len("data: ") :])))
                name = "message"
    return events


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, backend="local", n_workers=2, auth_token=TOKEN)
    with ReproServer(config) as running:
        yield running


class TestOpenEndpoints:
    def test_healthz_without_auth(self, server):
        status, body = _request(server.url + "/healthz", token=None)
        assert status == 200
        assert body["status"] == "ok"
        assert body["backend"] == "local"

    def test_stats_without_auth(self, server):
        status, body = _request(server.url + "/v1/stats", token=None)
        assert status == 200
        assert set(body) >= {"jobs", "requests", "cache", "workers", "queue_depth"}

    def test_dashboard_without_auth(self, server):
        with urllib.request.urlopen(server.url + "/", timeout=10) as response:
            assert response.status == 200
            html = response.read().decode()
        assert "repro-serve" in html and "/v1/stats" in html


class TestAuth:
    @pytest.mark.parametrize(
        "path,payload",
        [
            ("/v1/price", {}),
            ("/v1/run", {}),
            ("/v1/jobs/000001-feedface", None),
            ("/v1/stream/000001-feedface", None),
        ],
    )
    def test_data_endpoints_require_token(self, server, path, payload):
        status, body = _request(server.url + path, payload, token=None)
        assert status == 401
        assert "token" in body["error"]

    def test_wrong_token_rejected(self, server):
        status, _ = _request(server.url + "/v1/price", {}, token="wrong")
        assert status == 401

    def test_x_auth_token_header_accepted(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs/unknown", headers={"X-Auth-Token": TOKEN}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404  # authorized, then not found


class TestErrors:
    def test_unknown_endpoint_404(self, server):
        assert _request(server.url + "/v1/nope", {"x": 1})[0] == 404
        assert _request(server.url + "/v2/price", token=None)[0] == 401

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/price",
            data=b"{not json",
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_problem_400(self, server):
        status, body = _request(
            server.url + "/v1/price",
            {"model": "NotAModel", "option": "CallEuro", "method": "CF_Call"},
        )
        assert status == 400
        assert "NotAModel" in body["error"]

    def test_oversized_body_413(self):
        config = ServerConfig(port=0, max_body_bytes=512)
        with ReproServer(config) as small:
            status, body = _request(
                small.url + "/v1/price", {"padding": "x" * 2048}, token=None
            )
        assert status == 413
        assert "byte limit" in body["error"]

    def test_unknown_job_404(self, server):
        assert _request(server.url + "/v1/jobs/000999-00000000")[0] == 404
        assert _request(server.url + "/v1/stream/000999-00000000")[0] == 404
        assert (
            _request(server.url + "/v1/jobs/000999-00000000/cancel", {})[0] == 404
        )


class TestPriceEndpoint:
    def test_miss_then_hit(self, server):
        body = _position_body(83.0)
        status, first = _request(server.url + "/v1/price", body)
        assert status == 200
        assert first["cache_hit"] is False
        status, second = _request(server.url + "/v1/price", body)
        assert status == 200
        assert second["cache_hit"] is True
        assert second["price"] == first["price"]
        assert second["digest"] == first["digest"]

    def test_price_matches_direct_compute(self, server):
        from repro.serve.parse import problem_from_request

        body = _position_body(97.0)
        _, response = _request(server.url + "/v1/price", body)
        assert response["price"] == problem_from_request(body).compute().price


class TestGreeksEndpoint:
    def test_full_ladder_with_theta(self, server):
        body = _position_body(100.0)
        body["method"] = "MC_European"
        body["method_params"] = {"n_paths": 20_000, "seed": 7}
        status, report = _request(server.url + "/v1/greeks", body)
        assert status == 200
        assert report["engine"] == "batched"
        assert 0.0 < report["delta"] < 1.0
        assert report["gamma"] > 0.0
        assert report["vega"] > 0.0
        assert report["theta"] < 0.0  # long vanilla call decays

    def test_batched_matches_serial_engine_bit_for_bit(self, server):
        body = _position_body(104.0)
        body["method"] = "MC_European"
        body["method_params"] = {"n_paths": 20_000, "seed": 3}
        _, batched = _request(server.url + "/v1/greeks", body)
        _, serial = _request(server.url + "/v1/greeks", {**body, "engine": "serial"})
        for key in ("price", "delta", "gamma", "vega", "rho", "theta"):
            assert batched[key] == serial[key]

    def test_bad_engine_400(self, server):
        status, response = _request(
            server.url + "/v1/greeks", _position_body(100.0, engine="nope")
        )
        assert status == 400
        assert "engine" in response["error"]

    def test_requires_auth(self, server):
        status, _ = _request(
            server.url + "/v1/greeks", _position_body(100.0), token=None
        )
        assert status == 401

    def test_counter_visible_in_stats(self, server):
        _, stats = _request(server.url + "/v1/stats", token=None)
        assert stats["requests"]["greek_ladders"] >= 2


class TestRunLifecycle:
    def test_acceptance_path(self, server):
        """run -> SSE progress -> bit-identical prices -> cached re-run."""
        strikes = [91.0, 96.0, 101.0, 106.0, 111.0]
        run_body = {"positions": [_position_body(strike) for strike in strikes]}

        status, submitted = _request(server.url + "/v1/run", run_body)
        assert status in (200, 202)
        job_id = submitted["job"]

        events = _read_sse(server.url + f"/v1/stream/{job_id}")
        names = [name for name, _ in events]
        progress = [payload for name, payload in events if name == "progress"]
        # incremental StreamProgress: one tick per position, done counts rising
        assert len(progress) == len(strikes)
        assert [tick["done"] for tick in progress] == list(range(1, len(strikes) + 1))
        assert all(tick["total"] == len(strikes) for tick in progress)
        assert names[-1] == "done"

        status, record = _request(server.url + f"/v1/jobs/{job_id}")
        assert status == 200 and record["state"] == "done"
        result = record["result"]

        # bit-identical to an in-process session over the same positions
        reference = ValuationSession(backend="local", n_workers=2).run(
            _portfolio(strikes)
        )
        assert result["prices"] == {
            str(job): price for job, price in reference.prices().items()
        }
        assert result["errors"] == {}

        # an identical second run is answered from the shared cache: the
        # campaign collapses to the "cache" pseudo-scheduler (no worker ran)
        hits_before = _request(server.url + "/v1/stats", token=None)[1]["cache"]["hits"]
        status, rerun = _request(server.url + "/v1/run", {**run_body, "wait": True})
        assert status == 200
        assert rerun["state"] == "done"
        assert rerun["result"]["scheduler"] == "cache"
        assert rerun["result"]["prices"] == result["prices"]

        stats = _request(server.url + "/v1/stats", token=None)[1]
        assert stats["cache"]["hits"] >= hits_before + len(strikes)
        assert stats["requests"]["cache_only_runs"] >= 1

    def test_wait_returns_completed_snapshot(self, server):
        run_body = {
            "positions": [_position_body(strike) for strike in (71.0, 76.0)],
            "wait": True,
        }
        status, record = _request(server.url + "/v1/run", run_body)
        assert status == 200
        assert record["state"] == "done"
        assert len(record["result"]["prices"]) == 2
        assert record["result"]["value"] is not None

    def test_per_position_priorities_use_priority_scheduler(self, server):
        run_body = {
            "positions": [
                _position_body(61.0 + index, priority=index) for index in range(3)
            ],
            "wait": True,
        }
        _, record = _request(server.url + "/v1/run", run_body)
        assert record["state"] == "done"
        assert record["result"]["scheduler"] == "priority"

    def test_batch_with_priorities_rejected(self, server):
        run_body = {
            "positions": [_position_body(51.0, priority=1)],
            "batch": True,
        }
        status, body = _request(server.url + "/v1/run", run_body)
        assert status == 400
        assert "batch" in body["error"]

    def test_run_with_failing_position_reports_errors(self, server):
        # Heston + closed-form Black-Scholes pricer: parses cleanly, fails at
        # compute time with IncompatibleMethodError (a per-position error)
        bad = _position_body(41.0)
        bad["model"] = "Heston1D"
        bad["model_params"] = {
            "spot": 100.0,
            "rate": 0.03,
            "v0": 0.04,
            "kappa": 2.0,
            "theta": 0.04,
            "sigma_v": 0.4,
            "rho": -0.7,
        }
        status, record = _request(
            server.url + "/v1/run",
            {"positions": [_position_body(42.0), bad], "wait": True},
        )
        assert status == 200
        assert record["state"] == "done"
        assert list(record["result"]["errors"]) == ["1"]
        assert record["result"]["value"] is None


class TestCancellation:
    def test_cancel_running_job_over_http(self):
        config = ServerConfig(port=0, backend="local", n_workers=1)
        with ReproServer(config) as server:
            run_body = {
                "positions": [_slow_position_body(60.0 + index) for index in range(8)]
            }
            _, submitted = _request(server.url + "/v1/run", run_body, token=None)
            job_id = submitted["job"]

            events: list[tuple[str, dict]] = []
            streamer = threading.Thread(
                target=lambda: events.extend(
                    _read_sse(server.url + f"/v1/stream/{job_id}", token=None)
                )
            )
            streamer.start()
            status, body = _request(
                server.url + f"/v1/jobs/{job_id}/cancel", {}, token=None
            )
            assert status == 200
            streamer.join(timeout=120)
            assert not streamer.is_alive()

            _, record = _request(server.url + f"/v1/jobs/{job_id}", token=None)
            assert record["state"] == "cancelled"
            # the SSE stream ended with the cancelled terminal event
            assert events and events[-1][0] == "cancelled"
            # every position resolves with exactly one tick -- priced or
            # withdrawn -- and cooperative cancel withdrew at least one
            progress = [payload for name, payload in events if name == "progress"]
            assert len(progress) == 8
            priced = [tick for tick in progress if not tick["cancelled"]]
            assert len(priced) < 8
            assert all(tick["price"] is None for tick in progress if tick["cancelled"])

    def test_cancel_queued_job_withdraws_it(self):
        # no started executor: the job can never leave the queue
        service = PricingService(ServerConfig(port=0))
        record = service.submit_run({"positions": [_position_body(33.0)]})
        assert record.state == "queued"
        cancelled = service.cancel_job(record.id)
        assert cancelled is record
        assert record.state == "cancelled"
        assert service.stats()["requests"]["runs_cancelled"] == 1


class TestRateLimit:
    def test_429_with_retry_after(self):
        config = ServerConfig(port=0, rate_limit=1.0, rate_burst=2)
        with ReproServer(config) as server:
            body = _position_body(123.0)
            codes = []
            retry_after = None
            for _ in range(4):
                try:
                    request = urllib.request.Request(
                        server.url + "/v1/price", data=json.dumps(body).encode()
                    )
                    with urllib.request.urlopen(request, timeout=10) as response:
                        codes.append(response.status)
                except urllib.error.HTTPError as error:
                    codes.append(error.code)
                    retry_after = error.headers.get("Retry-After")
            assert codes.count(200) == 2
            assert codes.count(429) == 2
            assert retry_after is not None and float(retry_after) > 0
            stats = _request(server.url + "/v1/stats", token=None)[1]
            assert stats["requests"]["rate_limited"] == 2
            # stats and healthz stay reachable while the client is throttled
            assert _request(server.url + "/healthz", token=None)[0] == 200


class TestShutdownEndpoint:
    def test_shutdown_stops_the_server(self):
        server = ReproServer(ServerConfig(port=0)).start()
        status, body = _request(server.url + "/v1/shutdown", {}, token=None)
        assert status == 200 and body["status"] == "stopping"
        deadline = threading.Event()
        for _ in range(100):
            try:
                _request(server.url + "/healthz", token=None)
            except (urllib.error.URLError, ConnectionError, OSError):
                break
            deadline.wait(0.1)
        else:
            pytest.fail("server still answering after /v1/shutdown")
        server.stop()  # idempotent
