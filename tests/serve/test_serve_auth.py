"""Tests of :mod:`repro.serve.auth` (shared secret + token buckets)."""

from __future__ import annotations

from repro.serve.auth import RateLimiter, TokenBucket, token_matches


class TestTokenMatches:
    def test_disabled_auth_allows_everything(self):
        assert token_matches(None, None)
        assert token_matches(None, "anything")

    def test_exact_match_required(self):
        assert token_matches("s3cret", "s3cret")
        assert not token_matches("s3cret", "s3cret ")
        assert not token_matches("s3cret", "S3CRET")

    def test_missing_token_denied(self):
        assert not token_matches("s3cret", None)
        assert not token_matches("s3cret", "")


class _Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3, now=0.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]
        # half a second at 2 tokens/s buys exactly one more request
        assert bucket.allow(0.5)
        assert not bucket.allow(0.5)

    def test_retry_after_hint(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert 0.0 < bucket.retry_after() <= 0.5

    def test_capacity_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2, now=0.0)
        allowed = sum(bucket.allow(3600.0) for _ in range(10))
        assert allowed == 2


class TestRateLimiter:
    def test_disabled_when_rate_zero(self):
        limiter = RateLimiter(0.0)
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.allow("1.2.3.4") == (True, 0.0)
        assert limiter.n_clients() == 0

    def test_per_client_buckets(self):
        clock = _Clock()
        limiter = RateLimiter(1.0, burst=2, clock=clock)
        assert limiter.allow("a")[0] and limiter.allow("a")[0]
        allowed, retry_after = limiter.allow("a")
        assert not allowed and retry_after > 0
        # a different client has its own untouched budget
        assert limiter.allow("b")[0]
        assert limiter.n_clients() == 2

    def test_refill_restores_service(self):
        clock = _Clock()
        limiter = RateLimiter(10.0, burst=1, clock=clock)
        assert limiter.allow("a")[0]
        assert not limiter.allow("a")[0]
        clock.now += 0.2
        assert limiter.allow("a")[0]

    def test_idle_buckets_pruned(self):
        clock = _Clock()
        limiter = RateLimiter(1.0, burst=2, clock=clock)
        for index in range(4097):
            limiter.allow(f"client-{index}")
            clock.now += 10.0  # every earlier bucket refills to capacity
        assert limiter.n_clients() < 4097
