"""Tests of :mod:`repro.serve.jobs` (job records, events, the table)."""

from __future__ import annotations

import threading

import pytest

from repro.api.futures import StreamProgress
from repro.core import build_toy_portfolio
from repro.serve.jobs import JOB_STATES, TERMINAL_STATES, JobRecord, JobTable


def _tick(done: int, total: int = 5, **kwargs) -> StreamProgress:
    defaults = dict(job_id=done - 1, label=f"pos_{done - 1}")
    defaults.update(kwargs)
    return StreamProgress(done=done, total=total, **defaults)


@pytest.fixture(scope="module")
def portfolio():
    return build_toy_portfolio(n_options=5)


class TestJobRecord:
    def test_lifecycle_done(self, portfolio):
        record = JobRecord("j1", portfolio)
        assert record.state == "queued" and not record.terminal
        record.mark_running()
        assert record.state == "running"
        record.finish({"prices": {}})
        assert record.state == "done" and record.terminal
        assert record.finished_at is not None

    def test_lifecycle_failed_and_cancelled(self, portfolio):
        failed = JobRecord("j2", portfolio)
        failed.fail("boom")
        assert failed.state == "failed" and failed.error == "boom"

        cancelled = JobRecord("j3", portfolio)
        cancelled.mark_cancelled()
        assert cancelled.state == "cancelled"

        finished_cancelled = JobRecord("j4", portfolio)
        finished_cancelled.mark_running()
        finished_cancelled.finish({}, cancelled=True)
        assert finished_cancelled.state == "cancelled"

    def test_mark_cancelled_only_withdraws_queued_jobs(self, portfolio):
        record = JobRecord("j5", portfolio)
        record.mark_running()
        record.mark_cancelled()  # too late to withdraw: executor owns it now
        assert record.state == "running"

    def test_event_replay_and_cursor(self, portfolio):
        record = JobRecord("j6", portfolio)
        for done in (1, 2, 3):
            record.add_progress(_tick(done))
        events, cursor = record.events_since(0)
        assert [event["done"] for event in events] == [1, 2, 3]
        assert cursor == 3
        more, cursor2 = record.events_since(cursor)
        assert more == [] and cursor2 == 3
        assert record.n_done == 3

    def test_ring_buffer_drops_oldest_and_keeps_cursor_semantics(self, portfolio):
        record = JobRecord("j7", portfolio, max_events=3)
        for done in range(1, 6):  # 5 events into a 3-slot ring
            record.add_progress(_tick(done))
        events, cursor = record.events_since(0)
        assert [event["done"] for event in events] == [3, 4, 5]
        assert cursor == 5

    def test_wait_event_wakes_on_progress(self, portfolio):
        record = JobRecord("j8", portfolio)
        seen = threading.Event()

        def follower():
            if record.wait_event(0, timeout=10.0):
                seen.set()

        thread = threading.Thread(target=follower)
        thread.start()
        record.add_progress(_tick(1))
        thread.join(timeout=10.0)
        assert seen.is_set()

    def test_wait_event_wakes_on_terminal_without_events(self, portfolio):
        record = JobRecord("j9", portfolio)
        record.fail("dead on arrival")
        assert record.wait_event(0, timeout=0.1)

    def test_wait_terminal(self, portfolio):
        record = JobRecord("j10", portfolio)
        assert not record.wait_terminal(timeout=0.05)
        record.finish({})
        assert record.wait_terminal(timeout=0.05)

    def test_snapshot_shape(self, portfolio):
        record = JobRecord("j11", portfolio, priority=2.0, batch=True)
        record.add_progress(_tick(1))
        view = record.snapshot()
        assert view["job"] == "j11"
        assert view["state"] == "queued"
        assert view["priority"] == 2.0
        assert view["batch"] is True
        assert view["done"] == 1 and view["total"] == len(portfolio)
        assert "result" in view
        assert "result" not in record.snapshot(include_result=False)

    def test_progress_event_carries_price_and_error(self, portfolio):
        record = JobRecord("j12", portfolio)
        record.add_progress(_tick(1, error="overflow"))
        (event,), _ = record.events_since(0)
        assert event["error"] == "overflow"
        assert event["price"] is None


class TestJobTable:
    def test_create_get_and_unique_ids(self, portfolio):
        table = JobTable()
        first, second = table.create(portfolio), table.create(portfolio)
        assert first.id != second.id
        assert table.get(first.id) is first
        assert table.get("nope") is None
        assert len(table) == 2

    def test_counts_cover_every_state(self, portfolio):
        table = JobTable()
        table.create(portfolio)
        running = table.create(portfolio)
        running.mark_running()
        counts = table.counts()
        assert set(counts) == set(JOB_STATES)
        assert counts["queued"] == 1 and counts["running"] == 1

    def test_recent_is_newest_first_without_results(self, portfolio):
        table = JobTable()
        records = [table.create(portfolio) for _ in range(5)]
        records[-1].finish({"prices": {"0": 1.0}})
        recent = table.recent(3)
        assert [view["job"] for view in recent] == [
            record.id for record in reversed(records[-3:])
        ]
        assert all("result" not in view for view in recent)

    def test_terminal_states_constant(self):
        assert TERMINAL_STATES == {"done", "failed", "cancelled"}
