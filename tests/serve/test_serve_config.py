"""Tests of :mod:`repro.serve.config` (daemon configuration validation)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, ServeError
from repro.serve import SERVABLE_BACKENDS, ServerConfig


class TestServerConfig:
    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.backend == "local"
        assert config.auth_token is None
        assert config.rate_limit == 0.0

    @pytest.mark.parametrize("backend", SERVABLE_BACKENDS)
    def test_every_servable_backend_accepted(self, backend):
        hosts = ("localhost:9631",) if backend == "remote" else ()
        assert ServerConfig(backend=backend, hosts=hosts).backend == backend

    def test_simulated_backend_rejected(self):
        # the simulated cluster prices nothing; serving it would be a lie
        with pytest.raises(ServeError, match="simulated"):
            ServerConfig(backend="simulated")

    def test_serve_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            ServerConfig(backend="nope")

    def test_hosts_normalized_to_tuple(self):
        config = ServerConfig(backend="remote", hosts=["h1:9631", "h2:9632"])
        assert config.hosts == ("h1:9631", "h2:9632")

    def test_hosts_require_remote_backend(self):
        with pytest.raises(ServeError, match="remote"):
            ServerConfig(backend="local", hosts=("h1:9631",))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"rate_limit": -1.0},
            {"rate_burst": 0},
            {"keepalive_interval": -5.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServerConfig(**kwargs)

    def test_frozen(self):
        config = ServerConfig()
        with pytest.raises(AttributeError):
            config.port = 80
