"""Documentation checks: links must resolve, quickstart snippets must run.

Docs rot in two ways: relative links break when files move, and code
snippets drift away from the API they illustrate.  Both are cheap to catch
mechanically, so this module

* link-checks ``README.md`` and every page under ``docs/`` (relative
  targets must exist in the repository; external URLs are not fetched);
* executes the fenced ``python`` blocks of every ``docs/*.md`` page
  top-to-bottom in one namespace per file (doctest-style: later blocks may
  use names defined by earlier ones), plus the README's Quickstart block.

Writing a docs page therefore comes with a contract: every ```` ```python ````
fence must actually run (use another info string -- ``text``, ``pycon`` --
for illustrative fragments).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PAGES = sorted((REPO_ROOT / "docs").glob("*.md"))
LINKED_PAGES = [REPO_ROOT / "README.md", *DOC_PAGES]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def _iter_links(text: str):
    """Markdown link targets outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line) or line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield from _LINK.findall(line)


def _fenced_blocks(text: str, language: str) -> list[str]:
    blocks: list[str] = []
    current: list[str] | None = None
    for line in text.splitlines():
        match = _FENCE.match(line)
        if current is None and match and match.group(1) == language:
            current = []
        elif current is not None and line.strip().startswith("```"):
            blocks.append("\n".join(current))
            current = None
        elif current is not None:
            current.append(line)
    return blocks


@pytest.mark.parametrize("page", LINKED_PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page: Path):
    broken = []
    for target in _iter_links(page.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (page.parent / path).exists():
            broken.append(target)
    assert not broken, f"broken relative links in {page.name}: {broken}"


def test_docs_directory_is_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/backends.md" in readme


@pytest.fixture
def _pristine_registries():
    """Snapshot the scheduler/backend registries around snippet execution.

    The worked examples in the docs end in ``register_scheduler`` /
    ``register_backend`` -- the point of the pages -- which would otherwise
    leak demo entries into the process-global registries and break
    exact-set registry assertions elsewhere in the suite.
    """
    from repro.cluster.backends import _BACKEND_REGISTRY
    from repro.core.scheduler import SCHEDULERS

    schedulers, backends = dict(SCHEDULERS), dict(_BACKEND_REGISTRY)
    try:
        yield
    finally:
        SCHEDULERS.clear()
        SCHEDULERS.update(schedulers)
        _BACKEND_REGISTRY.clear()
        _BACKEND_REGISTRY.update(backends)


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_docs_python_snippets_execute(page: Path, _pristine_registries):
    blocks = _fenced_blocks(page.read_text(encoding="utf-8"), "python")
    assert blocks, f"{page.name} has no runnable python snippet"
    namespace: dict = {"__name__": f"docs_snippet_{page.stem}"}
    for index, block in enumerate(blocks):
        # dont_inherit: snippets must behave like standalone modules, not
        # inherit this file's `from __future__ import annotations`
        code = compile(
            block, f"{page.name}[python block {index + 1}]", "exec", dont_inherit=True
        )
        exec(code, namespace)  # noqa: S102 - executing our own documentation


def test_readme_quickstart_executes():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    quickstart = text.split("## Quickstart", 1)[1]
    block = _fenced_blocks(quickstart, "python")[0]
    exec(compile(block, "README.md[quickstart]", "exec"), {"__name__": "readme_quickstart"})
