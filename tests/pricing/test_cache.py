"""Tests of the digest-keyed result cache (:mod:`repro.pricing.cache`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    PricingProblem,
    ResultCache,
    model_digest,
    problem_digest,
    stable_digest,
)
from repro.pricing.methods.base import PricingResult
from repro.serial import serialize


def _mc_problem(strike: float = 100.0, seed: int = 0) -> PricingProblem:
    problem = PricingProblem(label=f"cache_K{strike}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("MC_European", n_paths=2_000, seed=seed)
    return problem


def _result(price: float = 10.0) -> PricingResult:
    return PricingResult(
        price=price,
        std_error=0.01,
        confidence_interval=(price - 0.02, price + 0.02),
        method_name="MC_European",
        n_evaluations=2_000,
    )


class TestStableDigest:
    def test_key_order_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_tuples_lists_and_arrays_agree(self):
        assert stable_digest((1.0, 2.0)) == stable_digest([1.0, 2.0])
        assert stable_digest(np.array([1.0, 2.0])) == stable_digest([1.0, 2.0])

    def test_numpy_scalars_agree_with_python(self):
        assert stable_digest(np.float64(0.1)) == stable_digest(0.1)
        assert stable_digest(np.int64(3)) == stable_digest(3)

    def test_distinct_values_distinct_digests(self):
        assert stable_digest({"x": 1.0}) != stable_digest({"x": 1.0000001})

    def test_unsupported_type_raises(self):
        with pytest.raises(PricingError):
            stable_digest({"x": object()})


class TestProblemDigest:
    def test_stable_across_to_params_round_trip(self):
        problem = _mc_problem()
        rebuilt = PricingProblem.from_dict(problem.to_dict())
        assert problem_digest(rebuilt) == problem_digest(problem)

    def test_stable_across_serialization(self):
        problem = _mc_problem()
        rebuilt = serialize(problem).unserialize()
        assert problem_digest(rebuilt) == problem_digest(problem)

    def test_sensitive_to_every_leg(self):
        base = problem_digest(_mc_problem())
        assert problem_digest(_mc_problem(strike=101.0)) != base
        assert problem_digest(_mc_problem(seed=1)) != base
        other_model = _mc_problem()
        other_model.set_model("BlackScholes1D", spot=100.0, rate=0.04, volatility=0.2)
        assert problem_digest(other_model) != base

    def test_model_digest_matches_param_digest(self):
        problem = _mc_problem()
        assert problem.model.param_digest() == model_digest(problem.model)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        digest = "d" * 64
        assert cache.get(digest) is None
        cache.put(digest, _result(12.5))
        hit = cache.get(digest)
        assert hit is not None
        assert hit.price == 12.5
        assert hit.std_error == 0.01
        assert hit.confidence_interval == (12.48, 12.52)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _result(1.0))
        cache.put("b", _result(2.0))
        assert cache.get("a").price == 1.0  # refresh "a": "b" is now LRU
        cache.put("c", _result(3.0))
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a").price == 1.0
        assert cache.get("c").price == 3.0

    def test_max_entries_validated(self):
        with pytest.raises(PricingError):
            ResultCache(max_entries=0)

    def test_refuses_priceless_results(self):
        with pytest.raises(PricingError):
            ResultCache().put("x", {"std_error": 0.1})

    def test_disk_store_round_trip(self, tmp_path):
        first = ResultCache(directory=tmp_path)
        first.put("deadbeef", _result(7.0))
        assert (tmp_path / "deadbeef.json").exists()

        fresh = ResultCache(directory=tmp_path)  # simulates another process
        hit = fresh.get("deadbeef")
        assert hit is not None and hit.price == 7.0
        assert fresh.stats.disk_hits == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("cafe", _result(4.0))
        cache.clear()
        assert len(cache) == 0
        assert cache.get("cafe").price == 4.0  # re-read from disk
        assert cache.stats.disk_hits == 1

    def test_contains_and_problem_helpers(self):
        cache = ResultCache()
        problem = _mc_problem()
        assert problem_digest(problem) not in cache
        assert cache.get_problem(problem) is None
        cache.put_problem(problem, _result(9.0))
        assert problem_digest(problem) in cache
        assert cache.get_problem(problem).price == 9.0

    def test_hit_rate(self):
        cache = ResultCache()
        assert cache.stats.hit_rate == 0.0
        cache.put("k", _result())
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)
