"""Property-based tests for :func:`repro.pricing.batch.plan_batches`.

Three invariants must hold for *every* input, not just the hand-picked
examples in ``test_batch.py``:

* **partition** -- every input index appears exactly once, either in a
  group or in the singles list;
* **signature cohesion** -- grouped members share one simulation
  signature, and (without ``max_group_size``) signature-equal problems
  always land in the same group or all degrade to singletons together;
* **permutation invariance** -- reordering the input only relabels
  indices; the partition itself (which problems share paths) is stable.

Uses ``hypothesis`` when installed; otherwise falls back to a seeded
random sweep over the same generator so the properties are still
exercised, just with fewer shrinking guarantees.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.pricing import PricingProblem, plan_batches, simulation_signature

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

# Each spec is a hashable recipe for one input slot.  Distinct MC families
# (seed, n_paths, n_steps) have distinct simulation signatures; strikes vary
# within a family without changing the signature.
_FAMILIES = ((0, 1_000, None), (7, 1_000, None), (0, 2_000, None), (0, 1_000, 6))
_SPEC_POOL = (
    [("mc", f, strike) for f in range(len(_FAMILIES)) for strike in (90.0, 100.0, 110.0)]
    + [("cf", 0, 100.0), ("none", 0, 0.0)]
)


def _build(spec: tuple[str, int, float]) -> PricingProblem | None:
    kind, family, strike = spec
    if kind == "none":
        return None
    problem = PricingProblem(label=f"{kind}_{family}_{strike}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    if kind == "cf":
        problem.set_method("CF_Call")
    else:
        seed, n_paths, n_steps = _FAMILIES[family]
        problem.set_method("MC_European", n_paths=n_paths, n_steps=n_steps, seed=seed)
    return problem


def _signature_key(spec: tuple[str, int, float]) -> int | None:
    """Which shared-simulation family the spec belongs to (None = singleton)."""
    return spec[1] if spec[0] == "mc" else None


def _check_partition(specs, min_group_size=2, max_group_size=None):
    problems = [_build(spec) for spec in specs]
    plan = plan_batches(problems, min_group_size=min_group_size, max_group_size=max_group_size)
    covered = [index for group in plan.groups for index in group.indices]
    covered.extend(plan.singles)
    assert sorted(covered) == list(range(len(specs)))
    assert len(covered) == len(set(covered))
    return plan, problems


def _check_cohesion(specs):
    plan, problems = _check_partition(specs)
    # every grouped member carries the group's signature
    for group in plan.groups:
        for index in group.indices:
            assert simulation_signature(problems[index]) == group.signature
    # signature-equal problems share a group (or all degrade together)
    family_members: dict[int, list[int]] = {}
    for index, spec in enumerate(specs):
        key = _signature_key(spec)
        if key is not None:
            family_members.setdefault(key, []).append(index)
    grouped = {index: g for g, group in enumerate(plan.groups) for index in group.indices}
    for members in family_members.values():
        if len(members) >= 2:
            assert {grouped[index] for index in members} == {grouped[members[0]]}
        else:
            assert all(index in plan.singles for index in members)
    # unplannable entries are always singles
    for index, spec in enumerate(specs):
        if _signature_key(spec) is None:
            assert index in plan.singles


def _shape(specs, plan):
    """Order-free fingerprint: the partition as spec multisets."""
    groups = Counter(
        tuple(sorted(specs[index] for index in group.indices)) for group in plan.groups
    )
    singles = Counter(specs[index] for index in plan.singles)
    return groups, singles


def _check_permutation_invariance(specs, perm_seed):
    plan, _ = _check_partition(specs)
    order = list(range(len(specs)))
    random.Random(perm_seed).shuffle(order)
    permuted = [specs[index] for index in order]
    permuted_plan, _ = _check_partition(permuted)
    assert _shape(specs, plan) == _shape(permuted, permuted_plan)


def _check_max_group_size(specs, max_group_size):
    plan, _ = _check_partition(specs, max_group_size=max_group_size)
    for group in plan.groups:
        assert 2 <= len(group) <= max_group_size


def _random_specs(rng: random.Random) -> list[tuple[str, int, float]]:
    return [rng.choice(_SPEC_POOL) for _ in range(rng.randrange(0, 13))]


if HAVE_HYPOTHESIS:
    spec_lists = st.lists(st.sampled_from(_SPEC_POOL), max_size=12)

    class TestPlanProperties:
        @settings(max_examples=40, deadline=None)
        @given(specs=spec_lists)
        def test_partition(self, specs):
            _check_partition(specs)

        @settings(max_examples=40, deadline=None)
        @given(specs=spec_lists)
        def test_signature_cohesion(self, specs):
            _check_cohesion(specs)

        @settings(max_examples=40, deadline=None)
        @given(specs=spec_lists, perm_seed=st.integers(0, 2**16))
        def test_permutation_invariance(self, specs, perm_seed):
            _check_permutation_invariance(specs, perm_seed)

        @settings(max_examples=25, deadline=None)
        @given(specs=spec_lists, max_group_size=st.integers(2, 6))
        def test_max_group_size_respected(self, specs, max_group_size):
            _check_max_group_size(specs, max_group_size)

else:  # pragma: no cover - exercised only without hypothesis

    class TestPlanProperties:
        @pytest.mark.parametrize("case_seed", range(40))
        def test_partition(self, case_seed):
            _check_partition(_random_specs(random.Random(1000 + case_seed)))

        @pytest.mark.parametrize("case_seed", range(40))
        def test_signature_cohesion(self, case_seed):
            _check_cohesion(_random_specs(random.Random(2000 + case_seed)))

        @pytest.mark.parametrize("case_seed", range(40))
        def test_permutation_invariance(self, case_seed):
            rng = random.Random(3000 + case_seed)
            _check_permutation_invariance(_random_specs(rng), rng.randrange(2**16))

        @pytest.mark.parametrize("case_seed", range(25))
        def test_max_group_size_respected(self, case_seed):
            rng = random.Random(4000 + case_seed)
            _check_max_group_size(_random_specs(rng), rng.randrange(2, 7))
