"""Tests of the binomial and trinomial tree pricers."""

from __future__ import annotations

import pytest

from repro.errors import PricingError
from repro.pricing import (
    AmericanPut,
    BinomialTree,
    ClosedFormCall,
    ClosedFormPut,
    EuropeanCall,
    EuropeanPut,
    TrinomialTree,
)


class TestBinomialTree:
    def test_european_call_converges_to_black_scholes(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        tree = BinomialTree(n_steps=1000).price(bs_model, atm_call)
        assert tree.price == pytest.approx(exact, rel=1e-3)

    def test_european_put_converges(self, bs_model, atm_put):
        exact = ClosedFormPut().price(bs_model, atm_put).price
        tree = BinomialTree(n_steps=1000).price(bs_model, atm_put)
        assert tree.price == pytest.approx(exact, rel=1e-3)

    def test_convergence_rate(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        errors = [
            abs(BinomialTree(n_steps=n).price(bs_model, atm_call).price - exact)
            for n in (50, 200, 800)
        ]
        assert errors[0] > errors[2]

    def test_delta_close_to_closed_form(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).delta
        tree = BinomialTree(n_steps=1000).price(bs_model, atm_call)
        assert tree.delta == pytest.approx(exact, abs=5e-3)

    def test_american_put_premium(self, bs_model):
        european = ClosedFormPut().price(bs_model, EuropeanPut(100.0, 1.0)).price
        american = BinomialTree(n_steps=1000).price(bs_model, AmericanPut(100.0, 1.0)).price
        assert american > european
        # classical reference value for (S=K=100, r=5%, sigma=20%, T=1)
        assert american == pytest.approx(6.0896, abs=5e-3)

    def test_american_put_above_intrinsic_everywhere(self, bs_model):
        deep_itm = AmericanPut(strike=150.0, maturity=1.0)
        result = BinomialTree(n_steps=500).price(bs_model, deep_itm)
        assert result.price >= 50.0 - 1e-9

    def test_dividend_model(self, bs_model_dividend, atm_call):
        exact = ClosedFormCall().price(bs_model_dividend, atm_call).price
        tree = BinomialTree(n_steps=1000).price(bs_model_dividend, atm_call)
        assert tree.price == pytest.approx(exact, rel=2e-3)

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            BinomialTree(n_steps=0)

    def test_unsupported_model(self, heston_model, atm_call):
        assert not BinomialTree().supports(heston_model, atm_call)

    def test_extra_diagnostics(self, bs_model, atm_call):
        result = BinomialTree(n_steps=100).price(bs_model, atm_call)
        assert 0.0 < result.extra["p"] < 1.0
        assert result.extra["u"] > 1.0 > result.extra["d"]


class TestTrinomialTree:
    def test_european_call_converges(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        tree = TrinomialTree(n_steps=500).price(bs_model, atm_call)
        assert tree.price == pytest.approx(exact, rel=1e-3)

    def test_american_put_matches_binomial(self, bs_model):
        product = AmericanPut(strike=100.0, maturity=1.0)
        binomial = BinomialTree(n_steps=1500).price(bs_model, product).price
        trinomial = TrinomialTree(n_steps=800).price(bs_model, product).price
        assert trinomial == pytest.approx(binomial, rel=2e-3)

    def test_probabilities_valid(self, bs_model, atm_call):
        result = TrinomialTree(n_steps=200).price(bs_model, atm_call)
        probabilities = [result.extra[k] for k in ("pu", "pm", "pd")]
        assert all(p >= 0 for p in probabilities)
        assert sum(probabilities) == pytest.approx(1.0, abs=1e-12)

    def test_delta(self, bs_model, atm_put):
        exact = ClosedFormPut().price(bs_model, atm_put).delta
        tree = TrinomialTree(n_steps=500).price(bs_model, atm_put)
        assert tree.delta == pytest.approx(exact, abs=5e-3)

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            TrinomialTree(n_steps=-1)
        with pytest.raises(PricingError):
            TrinomialTree(stretch=0.5)

    def test_extreme_drift_rejected(self, atm_call):
        """A huge drift over few steps gives negative probabilities."""
        from repro.pricing import BlackScholesModel

        model = BlackScholesModel(spot=100.0, rate=3.0, volatility=0.05)
        with pytest.raises(PricingError):
            TrinomialTree(n_steps=2).price(model, atm_call)

    def test_trees_agree_with_each_other(self, bs_model):
        product = EuropeanCall(strike=110.0, maturity=2.0)
        binomial = BinomialTree(n_steps=1000).price(bs_model, product).price
        trinomial = TrinomialTree(n_steps=600).price(bs_model, product).price
        assert binomial == pytest.approx(trinomial, rel=2e-3)
