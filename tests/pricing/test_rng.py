"""Tests of the random number generation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pricing.rng import (
    AntitheticGenerator,
    PseudoRandomGenerator,
    SobolGenerator,
    create_generator,
)


class TestPseudoRandomGenerator:
    def test_reproducible_with_same_seed(self):
        a = PseudoRandomGenerator(seed=42).normals((100,))
        b = PseudoRandomGenerator(seed=42).normals((100,))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = PseudoRandomGenerator(seed=1).normals((100,))
        b = PseudoRandomGenerator(seed=2).normals((100,))
        assert not np.allclose(a, b)

    def test_normals_have_standard_moments(self):
        samples = PseudoRandomGenerator(seed=0).normals((200_000,))
        assert samples.mean() == pytest.approx(0.0, abs=0.01)
        assert samples.std() == pytest.approx(1.0, abs=0.01)

    def test_uniforms_in_unit_interval(self):
        samples = PseudoRandomGenerator(seed=0).uniforms((10_000,))
        assert samples.min() >= 0.0
        assert samples.max() <= 1.0
        assert samples.mean() == pytest.approx(0.5, abs=0.02)

    def test_spawn_produces_independent_streams(self):
        parent = PseudoRandomGenerator(seed=7)
        children = parent.spawn(3)
        assert len(children) == 3
        streams = [child.normals((1000,)) for child in children]
        # children must differ from each other
        assert not np.allclose(streams[0], streams[1])
        assert not np.allclose(streams[1], streams[2])
        # and correlations must be negligible
        corr = np.corrcoef(streams[0], streams[1])[0, 1]
        assert abs(corr) < 0.1

    def test_correlated_normals_match_target_correlation(self):
        corr = np.array([[1.0, 0.7], [0.7, 1.0]])
        samples = PseudoRandomGenerator(seed=3).correlated_normals(200_000, corr)
        empirical = np.corrcoef(samples.T)
        assert empirical[0, 1] == pytest.approx(0.7, abs=0.01)

    def test_correlated_normals_validates_shape(self):
        gen = PseudoRandomGenerator(seed=0)
        with pytest.raises(ValueError):
            gen.correlated_normals(10, np.ones((2, 3)))


class TestSobolGenerator:
    def test_uniforms_shape_and_range(self):
        gen = SobolGenerator(dimension=4, seed=1)
        samples = gen.uniforms((100, 4))
        assert samples.shape == (100, 4)
        assert samples.min() > 0.0
        assert samples.max() < 1.0

    def test_normals_are_finite(self):
        gen = SobolGenerator(dimension=2, seed=1)
        samples = gen.normals((256, 2))
        assert np.all(np.isfinite(samples))

    def test_one_dimensional_request(self):
        gen = SobolGenerator(dimension=1, seed=5)
        samples = gen.normals((128,))
        assert samples.shape == (128,)

    def test_dimension_mismatch_raises(self):
        gen = SobolGenerator(dimension=3)
        with pytest.raises(ValueError):
            gen.uniforms((10, 4))
        with pytest.raises(ValueError):
            SobolGenerator(dimension=2).normals((10,))

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            SobolGenerator(dimension=0)

    def test_sobol_integration_beats_plain_mc_on_smooth_integrand(self):
        """QMC error on E[exp(Z)] should be far below the MC error."""
        exact = np.exp(0.5)
        n = 2**12
        sobol_est = np.exp(SobolGenerator(dimension=1, seed=0).normals((n,))).mean()
        mc_est = np.exp(PseudoRandomGenerator(seed=0).normals((n,))).mean()
        assert abs(sobol_est - exact) < abs(mc_est - exact) + 5e-3
        assert sobol_est == pytest.approx(exact, abs=5e-3)

    def test_spawn(self):
        children = SobolGenerator(dimension=2, seed=0).spawn(2)
        assert len(children) == 2
        a = children[0].uniforms((64, 2))
        b = children[1].uniforms((64, 2))
        assert not np.allclose(a, b)


class TestAntitheticGenerator:
    def test_normals_are_mirrored(self):
        gen = AntitheticGenerator(PseudoRandomGenerator(seed=0))
        samples = gen.normals((100,))
        np.testing.assert_allclose(samples[:50], -samples[50:])

    def test_uniforms_are_reflected(self):
        gen = AntitheticGenerator(PseudoRandomGenerator(seed=0))
        samples = gen.uniforms((100,))
        np.testing.assert_allclose(samples[:50], 1.0 - samples[50:])

    def test_odd_count_rejected(self):
        gen = AntitheticGenerator(PseudoRandomGenerator(seed=0))
        with pytest.raises(ValueError):
            gen.normals((101,))

    def test_matrix_shapes_preserved(self):
        gen = AntitheticGenerator(PseudoRandomGenerator(seed=0))
        samples = gen.normals((10, 7))
        assert samples.shape == (10, 7)
        np.testing.assert_allclose(samples[:5], -samples[5:])

    def test_correlated_normals_mirrored(self):
        corr = np.array([[1.0, 0.5], [0.5, 1.0]])
        gen = AntitheticGenerator(PseudoRandomGenerator(seed=0))
        samples = gen.correlated_normals(20, corr)
        np.testing.assert_allclose(samples[:10], -samples[10:])


class TestFactory:
    def test_create_pseudo(self):
        assert isinstance(create_generator("pcg64"), PseudoRandomGenerator)
        assert isinstance(create_generator("pseudo"), PseudoRandomGenerator)

    def test_create_sobol(self):
        gen = create_generator("sobol", dimension=5)
        assert isinstance(gen, SobolGenerator)
        assert gen.dimension == 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            create_generator("xorshift")
