"""Tests of the Fourier-COS pricing method."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    ClosedFormCall,
    ClosedFormPut,
    DigitalCall,
    DigitalPut,
    EuropeanCall,
    EuropeanPut,
    FourierCOS,
    analytics,
)


class TestCOSBlackScholes:
    @pytest.mark.parametrize("strike", [70.0, 90.0, 100.0, 120.0, 150.0])
    def test_call_matches_closed_form(self, bs_model, strike):
        product = EuropeanCall(strike=strike, maturity=1.0)
        exact = ClosedFormCall().price(bs_model, product).price
        cos = FourierCOS(n_terms=256).price(bs_model, product)
        assert cos.price == pytest.approx(exact, abs=1e-8)

    @pytest.mark.parametrize("maturity", [0.1, 0.5, 2.0, 5.0])
    def test_put_matches_closed_form(self, bs_model, maturity):
        product = EuropeanPut(strike=95.0, maturity=maturity)
        exact = ClosedFormPut().price(bs_model, product).price
        cos = FourierCOS(n_terms=256).price(bs_model, product)
        assert cos.price == pytest.approx(exact, abs=1e-7)

    def test_digitals_match_closed_form(self, bs_model):
        call = FourierCOS(n_terms=512).price(bs_model, DigitalCall(strike=100.0, maturity=1.0))
        put = FourierCOS(n_terms=512).price(bs_model, DigitalPut(strike=100.0, maturity=1.0))
        assert call.price == pytest.approx(
            float(analytics.digital_call_price(100, 100, 0.05, 0.2, 1.0)), abs=1e-6
        )
        assert put.price == pytest.approx(
            float(analytics.digital_put_price(100, 100, 0.05, 0.2, 1.0)), abs=1e-6
        )

    def test_convergence_in_terms(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        coarse = abs(FourierCOS(n_terms=16).price(bs_model, atm_call).price - exact)
        fine = abs(FourierCOS(n_terms=256).price(bs_model, atm_call).price - exact)
        assert fine <= coarse

    def test_dividend_model(self, bs_model_dividend, atm_call):
        exact = ClosedFormCall().price(bs_model_dividend, atm_call).price
        cos = FourierCOS(n_terms=256).price(bs_model_dividend, atm_call)
        assert cos.price == pytest.approx(exact, abs=1e-7)


class TestCOSHestonMerton:
    def test_heston_put_call_parity(self, heston_model):
        call = FourierCOS(n_terms=512).price(heston_model, EuropeanCall(100.0, 1.0)).price
        put = FourierCOS(n_terms=512).price(heston_model, EuropeanPut(100.0, 1.0)).price
        parity = 100.0 - 100.0 * np.exp(-heston_model.rate)
        assert call - put == pytest.approx(parity, abs=1e-5)

    def test_heston_degenerate_vol_of_vol_close_to_black_scholes(self):
        """With tiny vol-of-vol and v0 = theta, Heston reduces to Black-Scholes."""
        from repro.pricing import BlackScholesModel, HestonModel

        heston = HestonModel(spot=100, rate=0.05, v0=0.04, kappa=5.0, theta=0.04,
                             sigma_v=1e-3, rho=0.0)
        bs = BlackScholesModel(spot=100, rate=0.05, volatility=0.2)
        product = EuropeanCall(strike=100.0, maturity=1.0)
        heston_price = FourierCOS(n_terms=512).price(heston, product).price
        bs_price = ClosedFormCall().price(bs, product).price
        assert heston_price == pytest.approx(bs_price, abs=1e-3)

    def test_heston_skew_direction(self, heston_model):
        """Negative correlation makes low-strike implied vols higher."""
        low = FourierCOS(n_terms=512).price(heston_model, EuropeanCall(80.0, 1.0)).price
        high = FourierCOS(n_terms=512).price(heston_model, EuropeanCall(120.0, 1.0)).price
        iv_low = analytics.bs_implied_volatility(low, 100.0, 80.0, heston_model.rate, 1.0)
        iv_high = analytics.bs_implied_volatility(high, 100.0, 120.0, heston_model.rate, 1.0)
        assert iv_low > iv_high

    def test_merton_zero_intensity_is_black_scholes(self, atm_call):
        from repro.pricing import MertonJumpModel

        merton = MertonJumpModel(spot=100, rate=0.05, volatility=0.2,
                                 jump_intensity=0.0, jump_mean=0.0, jump_std=0.1)
        cos = FourierCOS(n_terms=256).price(merton, atm_call).price
        exact = float(analytics.bs_call_price(100, 100, 0.05, 0.2, 1.0))
        assert cos == pytest.approx(exact, abs=1e-7)

    def test_merton_jump_risk_increases_otm_put_value(self, merton_model):
        """Downward jumps make out-of-the-money puts more valuable."""
        from repro.pricing import BlackScholesModel

        bs = BlackScholesModel(spot=100, rate=0.05, volatility=0.2)
        product = EuropeanPut(strike=70.0, maturity=1.0)
        merton_price = FourierCOS(n_terms=512).price(merton_model, product).price
        bs_price = ClosedFormPut().price(bs, product).price
        assert merton_price > bs_price


class TestCOSInterface:
    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            FourierCOS(n_terms=4)
        with pytest.raises(PricingError):
            FourierCOS(truncation_width=-1.0)

    def test_unsupported_products(self, bs_model):
        from repro.pricing import AmericanPut, AsianCall

        assert not FourierCOS().supports(bs_model, AmericanPut(100.0, 1.0))
        assert not FourierCOS().supports(bs_model, AsianCall(100.0, 1.0))

    def test_unsupported_model(self, basket_model, atm_call):
        assert not FourierCOS().supports(basket_model, atm_call)

    def test_local_vol_model_has_no_char_function(self, atm_call):
        from repro.pricing import SmileLocalVolModel

        model = SmileLocalVolModel(spot=100, rate=0.05, base_volatility=0.2)
        assert not FourierCOS().supports(model, atm_call)
