"""Tests of the PricingProblem engine and the registries."""

from __future__ import annotations

import pytest

from repro.errors import ProblemStateError, RegistryError
from repro.pricing import (
    BlackScholesModel,
    ClosedFormCall,
    EuropeanCall,
    PricingProblem,
    compatible_methods,
    list_methods,
    list_models,
    list_products,
    premia_create,
    register_method,
    register_method_alias,
    register_model,
    register_product,
)
from repro.pricing.engine import ASSET_CLASSES
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.black_scholes import BlackScholesModel as BSModel
from repro.pricing.products.vanilla import EuropeanCall as ECall


class TestRegistries:
    def test_expected_entries_present(self):
        assert "BlackScholes1D" in list_models()
        assert "Heston1D" in list_models()
        assert "CallEuro" in list_products()
        assert "PutAmer" in list_products()
        assert "CF_Call" in list_methods()
        assert "MC_AM_Alfonsi_LongstaffSchwartz" in list_methods()
        assert "MC_AM_Alfonsi_LongstaffSchwartz" not in list_methods(include_aliases=False)

    def test_compatible_methods_black_scholes_call(self, bs_model, atm_call):
        methods = compatible_methods(bs_model, atm_call)
        for expected in ("CF_Call", "FD_European", "MC_European", "TR_CoxRossRubinstein",
                         "FFT_COS", "TR_Trinomial"):
            assert expected in methods
        assert "CF_Put" not in methods
        assert "FD_American" not in methods

    def test_compatible_methods_heston_american(self, heston_model):
        from repro.pricing import AmericanPut

        methods = compatible_methods(heston_model, AmericanPut(100.0, 1.0))
        assert methods == ["MC_AM_LongstaffSchwartz"]

    def test_register_custom_method_and_alias(self, bs_model, atm_call):
        class ConstantPrice(PricingMethod):
            method_name = "TEST_Constant"

            def supports(self, model, product):
                return True

            def _price(self, model, product):
                return PricingResult(price=1.234)

        register_method(ConstantPrice)
        register_method_alias("TEST_ConstantAlias", "TEST_Constant")
        problem = PricingProblem()
        problem.set_model(bs_model)
        problem.set_option(atm_call)
        problem.set_method("TEST_ConstantAlias")
        assert problem.compute().price == 1.234

    def test_register_invalid_classes(self):
        class NoName(PricingMethod):
            def supports(self, model, product):
                return True

            def _price(self, model, product):
                return PricingResult(price=0.0)

        NoName.method_name = "abstract"
        with pytest.raises(RegistryError):
            register_method(NoName)
        with pytest.raises(RegistryError):
            register_method_alias("X", "does_not_exist")

    def test_register_model_and_product_decorators(self):
        assert register_model(BSModel) is BSModel
        assert register_product(ECall) is ECall


class TestPricingProblem:
    def test_paper_example_workflow(self):
        """The exact call sequence of the paper's Section 3.3 example."""
        problem = premia_create()
        problem.set_asset("equity")
        problem.set_model(
            "Heston1D", spot=100.0, rate=0.03, v0=0.04, kappa=2.0, theta=0.04,
            sigma_v=0.4, rho=-0.7,
        )
        problem.set_option("PutAmer", strike=100.0, maturity=1.0)
        problem.set_method("MC_AM_Alfonsi_LongstaffSchwartz", n_paths=5_000, n_steps=10, seed=0)
        result = problem.compute()
        assert result.price > 0
        assert problem.get_method_results() is result

    def test_method_chaining(self):
        problem = (
            PricingProblem()
            .set_asset("equity")
            .set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
            .set_option("CallEuro", strike=100.0, maturity=1.0)
            .set_method("CF_Call")
        )
        assert problem.is_complete
        assert problem.compute().price == pytest.approx(10.450584, abs=1e-6)

    def test_set_with_instances(self, bs_model, atm_call):
        problem = PricingProblem.from_instances(bs_model, atm_call, ClosedFormCall())
        assert problem.model_name == "BlackScholes1D"
        assert problem.option_name == "CallEuro"
        assert problem.method_name == "CF_Call"
        assert problem.compute().price == pytest.approx(10.450584, abs=1e-6)

    def test_incomplete_problem_errors(self):
        problem = PricingProblem()
        assert not problem.is_complete
        with pytest.raises(ProblemStateError):
            problem.compute()
        with pytest.raises(ProblemStateError):
            problem.get_method_results()
        with pytest.raises(ProblemStateError):
            _ = problem.model
        with pytest.raises(ProblemStateError):
            _ = problem.product
        with pytest.raises(ProblemStateError):
            _ = problem.method

    def test_unknown_names_raise(self):
        problem = PricingProblem()
        with pytest.raises(RegistryError):
            problem.set_asset("crypto")
        with pytest.raises(RegistryError):
            problem.set_model("BlackScholes3000", spot=1.0)
        with pytest.raises(RegistryError):
            problem.set_option("CallQuantum", strike=1.0, maturity=1.0)
        with pytest.raises(RegistryError):
            problem.set_method("FD_DoesNotExist")

    def test_asset_classes(self):
        assert "equity" in ASSET_CLASSES
        problem = PricingProblem()
        problem.set_asset("interest_rate")
        assert problem.asset == "interest_rate"

    def test_to_dict_roundtrip(self, simple_problem):
        simple_problem.compute()
        data = simple_problem.to_dict()
        clone = PricingProblem.from_dict(data)
        assert clone == simple_problem
        assert clone.get_method_results().price == pytest.approx(
            simple_problem.get_method_results().price
        )

    def test_to_dict_roundtrip_without_result(self, simple_problem):
        clone = PricingProblem.from_dict(simple_problem.to_dict())
        assert clone == simple_problem
        assert not clone.has_result

    def test_partial_dict(self):
        clone = PricingProblem.from_dict({"asset": "equity", "label": "partial"})
        assert not clone.is_complete
        assert clone.label == "partial"

    def test_changing_inputs_invalidates_results(self, simple_problem):
        simple_problem.compute()
        assert simple_problem.has_result
        simple_problem.set_option("CallEuro", strike=120.0, maturity=1.0)
        assert not simple_problem.has_result

    def test_result_is_stamped_with_elapsed_and_name(self, simple_problem):
        result = simple_problem.compute()
        assert result.elapsed >= 0.0
        assert result.method_name == "CF_Call"

    def test_equality_ignores_results(self, simple_problem):
        other = PricingProblem.from_dict(simple_problem.to_dict())
        simple_problem.compute()
        assert other == simple_problem

    def test_repr(self, simple_problem):
        text = repr(simple_problem)
        assert "BlackScholes1D" in text and "CallEuro" in text and "CF_Call" in text
