"""Tests of the bump-and-revalue Greeks."""

from __future__ import annotations

import pytest

from repro.errors import PricingError
from repro.pricing import (
    BinomialTree,
    ClosedFormCall,
    ClosedFormPut,
    EuropeanCall,
    MonteCarloEuropean,
    PDEAmerican,
    analytics,
    bump_model,
    compute_greeks,
)
from repro.pricing.products.american import AmericanPut


class TestBumpModel:
    def test_absolute_bump(self, bs_model):
        bumped = bump_model(bs_model, "volatility", 0.05)
        assert bumped.volatility == pytest.approx(0.25)
        assert bumped.spot == bs_model.spot

    def test_relative_bump(self, bs_model):
        bumped = bump_model(bs_model, "spot", 0.10, relative=True)
        assert bumped.spot == pytest.approx(110.0)

    def test_vector_parameter_bump(self, basket_model):
        bumped = bump_model(basket_model, "spot", 0.01, relative=True)
        assert all(abs(s - 101.0) < 1e-12 for s in bumped.to_params()["spot"])

    def test_unknown_parameter(self, bs_model):
        with pytest.raises(PricingError):
            bump_model(bs_model, "skewness", 0.1)

    def test_original_model_untouched(self, bs_model):
        bump_model(bs_model, "spot", 0.5, relative=True)
        assert bs_model.spot == 100.0


class TestComputeGreeks:
    def test_against_closed_form_greeks(self, bs_model, atm_call):
        report = compute_greeks(bs_model, atm_call, ClosedFormCall(),
                                spot_bump=0.001, vol_bump=0.001, rate_bump=1e-5)
        s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.2, 1.0
        assert report.delta == pytest.approx(float(analytics.bs_call_delta(s, k, r, sigma, t)), abs=1e-4)
        assert report.gamma == pytest.approx(float(analytics.bs_gamma(s, k, r, sigma, t)), rel=1e-2)
        assert report.vega == pytest.approx(float(analytics.bs_vega(s, k, r, sigma, t)), rel=1e-3)
        assert report.rho == pytest.approx(float(analytics.bs_call_rho(s, k, r, sigma, t)), rel=1e-3)

    def test_put_delta_negative(self, bs_model, atm_put):
        report = compute_greeks(bs_model, atm_put, ClosedFormPut())
        assert report.delta < 0
        assert report.gamma > 0
        assert report.vega > 0
        assert report.rho < 0

    def test_american_put_greeks_from_pde(self, bs_model):
        product = AmericanPut(strike=100.0, maturity=1.0)
        report = compute_greeks(bs_model, product, PDEAmerican(n_space=300, n_time=150))
        assert -1.0 < report.delta < 0.0
        assert report.gamma > 0
        assert report.vega > 0

    def test_monte_carlo_greeks_with_common_random_numbers(self, bs_model, atm_call):
        method = MonteCarloEuropean(n_paths=100_000, seed=3)
        report = compute_greeks(bs_model, atm_call, method, spot_bump=0.02)
        exact_delta = float(analytics.bs_call_delta(100, 100, 0.05, 0.2, 1.0))
        # common random numbers keep finite-difference Monte-Carlo deltas tight
        assert report.delta == pytest.approx(exact_delta, abs=0.03)

    def test_tree_greeks(self, bs_model, atm_call):
        report = compute_greeks(bs_model, atm_call, BinomialTree(n_steps=400))
        assert report.delta == pytest.approx(0.6368, abs=0.01)

    def test_optional_greeks_can_be_skipped(self, bs_model, atm_call):
        report = compute_greeks(bs_model, atm_call, ClosedFormCall(),
                                compute_vega=False, compute_rho=False)
        assert report.vega is None
        assert report.rho is None
        assert report.as_dict()["vega"] is None

    def test_heston_vega_uses_v0(self, heston_model, atm_call):
        from repro.pricing import FourierCOS

        report = compute_greeks(heston_model, atm_call, FourierCOS(n_terms=256))
        # bumping the initial variance up must increase the call value
        assert report.vega is not None and report.vega > 0
