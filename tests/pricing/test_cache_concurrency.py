"""Shared-cache races: two sessions in one ``cache_dir``, corrupt entries.

The serve daemon shares one :class:`ResultCache` between HTTP handler
threads, and the multiprocessing/remote workers share its ``cache_dir``
between processes -- so get/put on overlapping digests must never corrupt
an entry, and a half-written or garbage file on disk must read as a miss
(counted in ``CacheStats.corrupt``), not as an exception.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import threading

import pytest

from repro.pricing import PricingProblem, ResultCache, problem_digest
from repro.pricing.methods.base import PricingResult

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

N_PROBLEMS = 8
ROUNDS = 40


def _problem(strike: float) -> PricingProblem:
    problem = PricingProblem(label=f"race_K{strike}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _digest_price_pairs() -> list[tuple[str, float]]:
    """The shared work-list: digest plus the exact price every writer stores."""
    pairs = []
    for index in range(N_PROBLEMS):
        problem = _problem(90.0 + index)
        pairs.append((problem_digest(problem), problem.compute().price))
    return pairs


def _race_worker(cache_dir: str, offset: int, queue: "mp.Queue") -> None:
    """One process hammering get/put over the shared digests.

    Starts at a different ``offset`` so the two processes interleave reads
    and writes on the same files in a different order.
    """
    cache = ResultCache(max_entries=4, directory=cache_dir)  # tiny LRU: force disk
    pairs = _digest_price_pairs()
    observed: dict[str, set[float]] = {digest: set() for digest, _ in pairs}
    for round_no in range(ROUNDS):
        for step in range(len(pairs)):
            digest, price = pairs[(step + offset) % len(pairs)]
            entry = cache.get(digest)
            if entry is None:
                cache.put(
                    digest,
                    PricingResult(
                        price=price,
                        std_error=None,
                        confidence_interval=None,
                        method_name="CF_Call",
                        n_evaluations=1,
                    ),
                )
            else:
                observed[digest].add(entry.price)
    stats = cache.stats
    queue.put(
        {
            "observed": {digest: sorted(prices) for digest, prices in observed.items()},
            "hits": stats.hits,
            "misses": stats.misses,
            "lookups": stats.lookups,
            "corrupt": stats.corrupt,
        }
    )


class TestCrossProcessRace:
    @pytest.mark.slow
    def test_two_processes_share_one_cache_dir(self, tmp_path):
        """Overlapping get/put from two processes: no corruption, sane stats."""
        expected = dict(_digest_price_pairs())
        ctx = mp.get_context("spawn")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_race_worker, args=(str(tmp_path), offset, queue))
            for offset in (0, N_PROBLEMS // 2)
        ]
        for proc in procs:
            proc.start()
        reports = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0

        for report in reports:
            # every price ever read back is the one true price for its digest
            for digest, prices in report["observed"].items():
                assert prices in ([], [expected[digest]])
            # hit accounting is exact per process, and nothing read as corrupt
            assert report["hits"] + report["misses"] == report["lookups"]
            assert report["lookups"] == ROUNDS * N_PROBLEMS
            assert report["corrupt"] == 0
        # with both processes done, the directory holds exactly the work-list
        # entries, each a complete JSON document with the right price
        for digest, price in expected.items():
            entry = json.loads((tmp_path / f"{digest}.json").read_text())
            assert entry["price"] == price
        assert not list(tmp_path.glob("*.tmp"))

    def test_threaded_race_on_one_instance(self, tmp_path):
        """Many threads on one ResultCache: entries stay intact, stats add up."""
        cache = ResultCache(max_entries=4, directory=tmp_path)
        pairs = _digest_price_pairs()
        errors: list[BaseException] = []

        def hammer(offset: int) -> None:
            try:
                for round_no in range(ROUNDS):
                    for step in range(len(pairs)):
                        digest, price = pairs[(step + offset) % len(pairs)]
                        entry = cache.get(digest)
                        if entry is None:
                            cache.put(
                                digest,
                                PricingResult(
                                    price=price,
                                    std_error=None,
                                    confidence_interval=None,
                                    method_name="CF_Call",
                                    n_evaluations=1,
                                ),
                            )
                        else:
                            assert entry.price == price
            except BaseException as exc:  # noqa: BLE001 - surface to main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(offset,)) for offset in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert cache.stats.hits + cache.stats.misses == 4 * ROUNDS * N_PROBLEMS
        assert cache.stats.corrupt == 0


class TestCorruptEntries:
    def _cache_with_entry(self, tmp_path):
        cache = ResultCache(max_entries=8, directory=tmp_path)
        problem = _problem(100.0)
        digest = problem_digest(problem)
        cache.put(digest, problem.compute())
        return cache, digest, tmp_path / f"{digest}.json"

    @pytest.mark.parametrize(
        "garbage",
        [b"", b"{\"price\": 1.0", b"not json at all", b"[1, 2, 3]", b"{\"no\": 1}"],
        ids=["empty", "truncated", "garbage", "non-object", "priceless"],
    )
    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, garbage):
        cache, digest, path = self._cache_with_entry(tmp_path)
        cache.clear()  # drop the in-memory copy; keep the disk file
        path.write_bytes(garbage)

        fresh = ResultCache(max_entries=8, directory=tmp_path)
        assert fresh.get(digest) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert not path.exists()  # deleted so the next put rewrites cleanly

        # the cache still works: a clean put/get cycle follows the cleanup
        problem = _problem(100.0)
        fresh.put(digest, problem.compute())
        fresh.clear()
        assert fresh.get(digest) is not None
        assert json.loads(path.read_text())["price"] == pytest.approx(
            problem.compute().price
        )

    def test_corrupt_entry_counted_once_per_read(self, tmp_path):
        cache, digest, path = self._cache_with_entry(tmp_path)
        cache.clear()
        path.write_text("{broken")
        fresh = ResultCache(max_entries=8, directory=tmp_path)
        assert fresh.get(digest) is None
        assert fresh.get(digest) is None  # file already unlinked: plain miss
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 2
