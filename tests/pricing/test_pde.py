"""Tests of the finite-difference (theta-scheme) pricers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    AmericanCall,
    AmericanPut,
    BarrierOption,
    BinomialTree,
    CEVModel,
    ClosedFormBarrier,
    ClosedFormCall,
    ClosedFormPut,
    DigitalCall,
    DownOutCall,
    EuropeanCall,
    EuropeanPut,
    MonteCarloEuropean,
    PDEAmerican,
    PDEBarrier,
    PDEEuropean,
    SmileLocalVolModel,
    UpOutCall,
)
from repro.pricing.methods.pde import PDEGrid


class TestGrid:
    def test_grid_contains_spot_and_strike(self):
        grid = PDEGrid.build(100.0, 0.2, 1.0, n_space=200, anchor=95.0)
        assert grid.s.min() < 95.0 < grid.s.max()
        assert grid.s.min() < 100.0 < grid.s.max()
        # the strike falls (almost) exactly on a node
        assert np.min(np.abs(grid.s - 95.0)) < 1e-6 * 95.0

    def test_barrier_pinned_to_boundary(self):
        grid = PDEGrid.build(100.0, 0.2, 1.0, n_space=200, lower_bound=85.0, anchor=100.0)
        assert grid.s[0] == pytest.approx(85.0, rel=1e-12)

    def test_invalid_configurations(self):
        with pytest.raises(PricingError):
            PDEGrid.build(100.0, 0.2, 1.0, n_space=4)
        with pytest.raises(PricingError):
            PDEGrid.build(100.0, 0.2, 1.0, n_space=100, lower_bound=300.0, upper_bound=200.0)


class TestEuropeanPDE:
    @pytest.mark.parametrize("maturity,strike", [(0.5, 90.0), (1.0, 100.0), (2.0, 120.0)])
    def test_call_matches_closed_form(self, bs_model, maturity, strike):
        product = EuropeanCall(strike=strike, maturity=maturity)
        pde = PDEEuropean(n_space=400, n_time=200).price(bs_model, product)
        exact = ClosedFormCall().price(bs_model, product)
        assert pde.price == pytest.approx(exact.price, rel=2e-3)
        assert pde.delta == pytest.approx(exact.delta, abs=1e-2)

    def test_put_matches_closed_form(self, bs_model, atm_put):
        pde = PDEEuropean(n_space=400, n_time=200).price(bs_model, atm_put)
        exact = ClosedFormPut().price(bs_model, atm_put)
        assert pde.price == pytest.approx(exact.price, rel=2e-3)

    def test_dividend_model(self, bs_model_dividend, atm_call):
        pde = PDEEuropean(n_space=400, n_time=200).price(bs_model_dividend, atm_call)
        exact = ClosedFormCall().price(bs_model_dividend, atm_call)
        assert pde.price == pytest.approx(exact.price, rel=2e-3)

    def test_digital_option(self, bs_model):
        product = DigitalCall(strike=100.0, maturity=1.0)
        pde = PDEEuropean(n_space=600, n_time=300).price(bs_model, product)
        from repro.pricing import analytics

        exact = float(analytics.digital_call_price(100, 100, 0.05, 0.2, 1.0))
        # the discontinuous payoff limits Crank-Nicolson to ~O(dx) accuracy
        assert pde.price == pytest.approx(exact, rel=1.5e-2)

    def test_grid_refinement_converges(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        coarse = PDEEuropean(n_space=60, n_time=30).price(bs_model, atm_call).price
        fine = PDEEuropean(n_space=500, n_time=250).price(bs_model, atm_call).price
        assert abs(fine - exact) < abs(coarse - exact)

    def test_fully_implicit_scheme_also_converges(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        implicit = PDEEuropean(n_space=400, n_time=400, theta=1.0).price(bs_model, atm_call)
        assert implicit.price == pytest.approx(exact, rel=5e-3)

    def test_local_volatility_matches_monte_carlo(self):
        model = SmileLocalVolModel(spot=100, rate=0.03, base_volatility=0.2, skew=0.3, term=0.1)
        product = EuropeanCall(strike=100.0, maturity=1.0)
        pde = PDEEuropean(n_space=500, n_time=250).price(model, product)
        mc = MonteCarloEuropean(n_paths=200_000, n_steps=100, seed=11).price(model, product)
        assert pde.price == pytest.approx(mc.price, abs=4 * mc.std_error + 0.02)

    def test_cev_matches_monte_carlo(self):
        model = CEVModel(spot=100, rate=0.05, volatility=0.2, beta=0.6)
        product = EuropeanPut(strike=100.0, maturity=1.0)
        pde = PDEEuropean(n_space=500, n_time=250).price(model, product)
        mc = MonteCarloEuropean(n_paths=200_000, n_steps=100, seed=12).price(model, product)
        assert pde.price == pytest.approx(mc.price, abs=4 * mc.std_error + 0.02)

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            PDEEuropean(n_space=5)
        with pytest.raises(PricingError):
            PDEEuropean(n_time=0)
        with pytest.raises(PricingError):
            PDEEuropean(theta=1.5)

    def test_does_not_support_heston(self, heston_model, atm_call):
        assert not PDEEuropean().supports(heston_model, atm_call)


class TestBarrierPDE:
    def test_down_out_call_matches_closed_form(self, bs_model):
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=85.0)
        pde = PDEBarrier(n_space=600, n_time=400).price(bs_model, product)
        exact = ClosedFormBarrier().price(bs_model, product)
        assert pde.price == pytest.approx(exact.price, rel=5e-3)

    def test_up_out_call_matches_closed_form(self, bs_model):
        product = UpOutCall(strike=100.0, maturity=1.0, barrier=140.0)
        pde = PDEBarrier(n_space=600, n_time=400).price(bs_model, product)
        exact = ClosedFormBarrier().price(bs_model, product)
        assert pde.price == pytest.approx(exact.price, rel=1e-2, abs=5e-3)

    def test_knock_in_via_parity(self, bs_model):
        product = BarrierOption(strike=100.0, maturity=1.0, barrier=85.0,
                                barrier_type="down-in", payoff_type="call")
        pde = PDEBarrier(n_space=600, n_time=400).price(bs_model, product)
        exact = ClosedFormBarrier().price(bs_model, product)
        assert pde.price == pytest.approx(exact.price, rel=2e-2, abs=5e-3)

    def test_already_knocked_out_returns_rebate(self, bs_model):
        product = BarrierOption(strike=100.0, maturity=1.0, barrier=110.0,
                                barrier_type="down-out", payoff_type="call", rebate=3.0)
        result = PDEBarrier().price(bs_model, product)
        assert result.price == pytest.approx(3.0)

    def test_barrier_option_cheaper_than_vanilla(self, bs_model):
        vanilla = ClosedFormCall().price(bs_model, EuropeanCall(100.0, 1.0)).price
        for barrier in (70.0, 85.0, 95.0):
            product = DownOutCall(strike=100.0, maturity=1.0, barrier=barrier)
            assert PDEBarrier(n_space=300, n_time=150).price(bs_model, product).price <= vanilla

    def test_local_vol_barrier_runs(self):
        model = SmileLocalVolModel(spot=100, rate=0.03, base_volatility=0.2, skew=0.3, term=0.1)
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=85.0)
        result = PDEBarrier(n_space=300, n_time=200).price(model, product)
        assert 0.0 < result.price < 20.0


class TestAmericanPDE:
    @pytest.mark.parametrize("mode", ["projected", "brennan_schwartz"])
    def test_american_put_matches_binomial(self, bs_model, mode):
        product = AmericanPut(strike=100.0, maturity=1.0)
        pde = PDEAmerican(n_space=500, n_time=400, american_mode=mode).price(bs_model, product)
        tree = BinomialTree(n_steps=2000).price(bs_model, product)
        assert pde.price == pytest.approx(tree.price, rel=2e-3)

    def test_american_put_worth_more_than_european(self, bs_model, atm_put):
        european = ClosedFormPut().price(bs_model, atm_put).price
        american = PDEAmerican(n_space=400, n_time=200).price(
            bs_model, AmericanPut(strike=100.0, maturity=1.0)
        ).price
        assert american > european

    def test_american_put_above_intrinsic(self, bs_model):
        product = AmericanPut(strike=120.0, maturity=1.0)
        result = PDEAmerican(n_space=400, n_time=200).price(bs_model, product)
        assert result.price >= 20.0 - 1e-6

    def test_american_call_no_dividend_equals_european(self, bs_model, atm_call):
        european = ClosedFormCall().price(bs_model, atm_call).price
        american = PDEAmerican(n_space=500, n_time=300).price(
            bs_model, AmericanCall(strike=100.0, maturity=1.0)
        ).price
        assert american == pytest.approx(european, rel=3e-3)

    def test_american_call_with_dividend_exceeds_european(self, bs_model_dividend):
        european = ClosedFormCall().price(
            bs_model_dividend, EuropeanCall(strike=100.0, maturity=2.0)
        ).price
        american = PDEAmerican(n_space=500, n_time=300).price(
            bs_model_dividend, AmericanCall(strike=100.0, maturity=2.0)
        ).price
        assert american > european

    def test_exercise_boundary_reported(self, bs_model):
        result = PDEAmerican(n_space=400, n_time=200).price(
            bs_model, AmericanPut(strike=100.0, maturity=1.0)
        )
        boundary = result.extra["exercise_boundary"]
        assert 40.0 < boundary < 100.0

    def test_invalid_mode(self):
        with pytest.raises(PricingError):
            PDEAmerican(american_mode="penalty")

    def test_local_vol_american(self):
        model = SmileLocalVolModel(spot=100, rate=0.05, base_volatility=0.2, skew=0.3, term=0.1)
        product = AmericanPut(strike=100.0, maturity=1.0)
        result = PDEAmerican(n_space=300, n_time=200).price(model, product)
        european = PDEEuropean(n_space=300, n_time=200).price(
            model, EuropeanPut(strike=100.0, maturity=1.0)
        )
        assert result.price >= european.price - 1e-6
