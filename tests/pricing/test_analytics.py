"""Tests of the closed-form Black-Scholes analytics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pricing import analytics

# textbook reference values (Hull-style parameters)
REFERENCE_CASES = [
    # spot, strike, rate, vol, maturity, dividend, call, put
    (100.0, 100.0, 0.05, 0.2, 1.0, 0.0, 10.450584, 5.573526),
    (42.0, 40.0, 0.10, 0.2, 0.5, 0.0, 4.759422, 0.808600),
    (100.0, 110.0, 0.03, 0.25, 2.0, 0.01, 11.528628, 17.102859),
]


@pytest.mark.parametrize("spot,strike,rate,vol,tau,div,call,put", REFERENCE_CASES)
def test_reference_call_prices(spot, strike, rate, vol, tau, div, call, put):
    value = analytics.bs_call_price(spot, strike, rate, vol, tau, div)
    assert value == pytest.approx(call, abs=2e-3)


@pytest.mark.parametrize("spot,strike,rate,vol,tau,div,call,put", REFERENCE_CASES)
def test_reference_put_prices(spot, strike, rate, vol, tau, div, call, put):
    value = analytics.bs_put_price(spot, strike, rate, vol, tau, div)
    assert value == pytest.approx(put, abs=2e-3)


def test_put_call_parity_exact():
    s, k, r, sigma, t, q = 100.0, 95.0, 0.04, 0.3, 1.5, 0.02
    call = analytics.bs_call_price(s, k, r, sigma, t, q)
    put = analytics.bs_put_price(s, k, r, sigma, t, q)
    forward_leg = s * np.exp(-q * t) - k * np.exp(-r * t)
    assert call - put == pytest.approx(forward_leg, abs=1e-12)


def test_call_price_is_vectorised():
    strikes = np.array([80.0, 90.0, 100.0, 110.0, 120.0])
    prices = analytics.bs_call_price(100.0, strikes, 0.05, 0.2, 1.0)
    assert prices.shape == strikes.shape
    # monotone decreasing in the strike
    assert np.all(np.diff(prices) < 0)


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        analytics.bs_call_price(-1.0, 100.0, 0.05, 0.2, 1.0)
    with pytest.raises(ValueError):
        analytics.bs_call_price(100.0, 100.0, 0.05, -0.2, 1.0)
    with pytest.raises(ValueError):
        analytics.bs_call_price(100.0, 100.0, 0.05, 0.2, 0.0)
    with pytest.raises(ValueError):
        analytics.bs_put_price(100.0, 0.0, 0.05, 0.2, 1.0)


def test_digital_prices_sum_to_discount_factor():
    s, k, r, sigma, t = 100.0, 105.0, 0.04, 0.3, 2.0
    call = analytics.digital_call_price(s, k, r, sigma, t)
    put = analytics.digital_put_price(s, k, r, sigma, t)
    assert call + put == pytest.approx(np.exp(-r * t), abs=1e-12)


def test_digital_call_is_strike_derivative_of_call():
    """-dC/dK equals the digital call price (static replication identity)."""
    s, r, sigma, t = 100.0, 0.05, 0.2, 1.0
    k = 100.0
    h = 1e-3
    dC_dK = (
        analytics.bs_call_price(s, k + h, r, sigma, t)
        - analytics.bs_call_price(s, k - h, r, sigma, t)
    ) / (2 * h)
    digital = analytics.digital_call_price(s, k, r, sigma, t)
    assert -dC_dK == pytest.approx(digital, rel=1e-5)


# ---------------------------------------------------------------------------
# Greeks
# ---------------------------------------------------------------------------


def test_call_delta_matches_finite_difference():
    s, k, r, sigma, t, q = 100.0, 105.0, 0.03, 0.25, 1.5, 0.01
    h = 1e-4 * s
    fd = (
        analytics.bs_call_price(s + h, k, r, sigma, t, q)
        - analytics.bs_call_price(s - h, k, r, sigma, t, q)
    ) / (2 * h)
    assert analytics.bs_call_delta(s, k, r, sigma, t, q) == pytest.approx(fd, rel=1e-6)


def test_put_delta_matches_finite_difference():
    s, k, r, sigma, t, q = 100.0, 95.0, 0.03, 0.25, 0.75, 0.01
    h = 1e-4 * s
    fd = (
        analytics.bs_put_price(s + h, k, r, sigma, t, q)
        - analytics.bs_put_price(s - h, k, r, sigma, t, q)
    ) / (2 * h)
    assert analytics.bs_put_delta(s, k, r, sigma, t, q) == pytest.approx(fd, rel=1e-6)


def test_gamma_matches_finite_difference():
    s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.2, 1.0
    h = 1e-3 * s
    fd = (
        analytics.bs_call_price(s + h, k, r, sigma, t)
        - 2 * analytics.bs_call_price(s, k, r, sigma, t)
        + analytics.bs_call_price(s - h, k, r, sigma, t)
    ) / h**2
    assert analytics.bs_gamma(s, k, r, sigma, t) == pytest.approx(fd, rel=1e-4)


def test_vega_matches_finite_difference():
    s, k, r, sigma, t = 100.0, 110.0, 0.05, 0.2, 1.0
    h = 1e-5
    fd = (
        analytics.bs_call_price(s, k, r, sigma + h, t)
        - analytics.bs_call_price(s, k, r, sigma - h, t)
    ) / (2 * h)
    assert analytics.bs_vega(s, k, r, sigma, t) == pytest.approx(fd, rel=1e-6)


def test_vega_identical_for_call_and_put():
    s, k, r, sigma, t = 100.0, 90.0, 0.02, 0.35, 2.0
    h = 1e-5
    call_vega = (
        analytics.bs_call_price(s, k, r, sigma + h, t)
        - analytics.bs_call_price(s, k, r, sigma - h, t)
    ) / (2 * h)
    put_vega = (
        analytics.bs_put_price(s, k, r, sigma + h, t)
        - analytics.bs_put_price(s, k, r, sigma - h, t)
    ) / (2 * h)
    assert call_vega == pytest.approx(put_vega, rel=1e-8)


def test_rho_matches_finite_difference():
    s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.2, 1.0
    h = 1e-6
    fd_call = (
        analytics.bs_call_price(s, k, r + h, sigma, t)
        - analytics.bs_call_price(s, k, r - h, sigma, t)
    ) / (2 * h)
    fd_put = (
        analytics.bs_put_price(s, k, r + h, sigma, t)
        - analytics.bs_put_price(s, k, r - h, sigma, t)
    ) / (2 * h)
    assert analytics.bs_call_rho(s, k, r, sigma, t) == pytest.approx(fd_call, rel=1e-5)
    assert analytics.bs_put_rho(s, k, r, sigma, t) == pytest.approx(fd_put, rel=1e-5)


def test_theta_matches_finite_difference_in_maturity():
    """Theta is -dV/dT for a fixed calendar date parametrised by maturity."""
    s, k, r, sigma, t, q = 100.0, 100.0, 0.05, 0.2, 1.0, 0.01
    h = 1e-5
    fd_call = -(
        analytics.bs_call_price(s, k, r, sigma, t + h, q)
        - analytics.bs_call_price(s, k, r, sigma, t - h, q)
    ) / (2 * h)
    fd_put = -(
        analytics.bs_put_price(s, k, r, sigma, t + h, q)
        - analytics.bs_put_price(s, k, r, sigma, t - h, q)
    ) / (2 * h)
    assert analytics.bs_call_theta(s, k, r, sigma, t, q) == pytest.approx(fd_call, rel=1e-4)
    assert analytics.bs_put_theta(s, k, r, sigma, t, q) == pytest.approx(fd_put, rel=1e-4)


# ---------------------------------------------------------------------------
# implied volatility
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sigma", [0.05, 0.2, 0.45, 0.8])
@pytest.mark.parametrize("is_call", [True, False])
def test_implied_volatility_inverts_the_formula(sigma, is_call):
    s, k, r, t = 100.0, 105.0, 0.03, 1.25
    price = (
        analytics.bs_call_price(s, k, r, sigma, t)
        if is_call
        else analytics.bs_put_price(s, k, r, sigma, t)
    )
    recovered = analytics.bs_implied_volatility(price, s, k, r, t, is_call=is_call)
    assert recovered == pytest.approx(sigma, abs=1e-7)


def test_implied_volatility_rejects_arbitrageable_prices():
    with pytest.raises(ValueError):
        analytics.bs_implied_volatility(200.0, 100.0, 100.0, 0.05, 1.0, is_call=True)
    with pytest.raises(ValueError):
        analytics.bs_implied_volatility(-1.0, 100.0, 100.0, 0.05, 1.0, is_call=True)


# ---------------------------------------------------------------------------
# barrier formulas
# ---------------------------------------------------------------------------


def test_barrier_in_out_parity_call():
    s, k, h, r, sigma, t = 100.0, 100.0, 85.0, 0.05, 0.2, 1.0
    vanilla = analytics.bs_call_price(s, k, r, sigma, t)
    out = analytics.barrier_call_price(s, k, h, r, sigma, t, barrier_type="down-out")
    inn = analytics.barrier_call_price(s, k, h, r, sigma, t, barrier_type="down-in")
    assert out + inn == pytest.approx(vanilla, rel=1e-10)


def test_barrier_in_out_parity_put():
    s, k, h, r, sigma, t = 100.0, 100.0, 120.0, 0.05, 0.2, 1.0
    vanilla = analytics.bs_put_price(s, k, r, sigma, t)
    out = analytics.barrier_put_price(s, k, h, r, sigma, t, barrier_type="up-out")
    inn = analytics.barrier_put_price(s, k, h, r, sigma, t, barrier_type="up-in")
    assert out + inn == pytest.approx(vanilla, rel=1e-10)


def test_down_out_call_bounded_by_vanilla():
    s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.25, 1.0
    vanilla = analytics.bs_call_price(s, k, r, sigma, t)
    for barrier in (70.0, 80.0, 90.0, 99.0):
        value = analytics.barrier_call_price(s, k, barrier, r, sigma, t, barrier_type="down-out")
        assert 0.0 <= value <= vanilla + 1e-12


def test_down_out_call_monotone_in_barrier():
    """Raising the knock-out barrier can only destroy value."""
    s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.25, 1.0
    barriers = [60.0, 70.0, 80.0, 90.0, 95.0, 99.0]
    values = [
        analytics.barrier_call_price(s, k, b, r, sigma, t, barrier_type="down-out")
        for b in barriers
    ]
    assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))


def test_far_barrier_recovers_vanilla():
    s, k, r, sigma, t = 100.0, 100.0, 0.05, 0.2, 1.0
    vanilla = analytics.bs_call_price(s, k, r, sigma, t)
    almost_vanilla = analytics.barrier_call_price(
        s, k, 1.0, r, sigma, t, barrier_type="down-out"
    )
    assert almost_vanilla == pytest.approx(vanilla, rel=1e-9)


def test_knocked_out_option_is_worthless():
    # spot already below a down-and-out barrier
    value = analytics.barrier_call_price(80.0, 100.0, 85.0, 0.05, 0.2, 1.0,
                                         barrier_type="down-out")
    assert value == 0.0
    # and the knock-in twin is worth the vanilla
    inn = analytics.barrier_call_price(80.0, 100.0, 85.0, 0.05, 0.2, 1.0,
                                       barrier_type="down-in")
    assert inn == pytest.approx(analytics.bs_call_price(80.0, 100.0, 0.05, 0.2, 1.0))


def test_up_out_call_with_barrier_below_strike_is_worthless():
    value = analytics.barrier_call_price(100.0, 120.0, 110.0, 0.05, 0.2, 1.0,
                                         barrier_type="up-out")
    assert value == pytest.approx(0.0, abs=1e-12)


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

_spots = st.floats(min_value=10.0, max_value=500.0)
_strikes = st.floats(min_value=10.0, max_value=500.0)
_rates = st.floats(min_value=-0.02, max_value=0.15)
_vols = st.floats(min_value=0.01, max_value=1.5)
_maturities = st.floats(min_value=0.01, max_value=10.0)


@settings(max_examples=200, deadline=None)
@given(spot=_spots, strike=_strikes, rate=_rates, vol=_vols, maturity=_maturities)
def test_call_price_within_no_arbitrage_bounds(spot, strike, rate, vol, maturity):
    price = float(analytics.bs_call_price(spot, strike, rate, vol, maturity))
    lower = max(spot - strike * np.exp(-rate * maturity), 0.0)
    assert lower - 1e-9 <= price <= spot + 1e-9


@settings(max_examples=200, deadline=None)
@given(spot=_spots, strike=_strikes, rate=_rates, vol=_vols, maturity=_maturities)
def test_put_call_parity_property(spot, strike, rate, vol, maturity):
    call = float(analytics.bs_call_price(spot, strike, rate, vol, maturity))
    put = float(analytics.bs_put_price(spot, strike, rate, vol, maturity))
    parity = spot - strike * np.exp(-rate * maturity)
    assert call - put == pytest.approx(parity, abs=1e-7 * max(1.0, spot, strike))


@settings(max_examples=200, deadline=None)
@given(spot=_spots, strike=_strikes, rate=_rates, vol=_vols, maturity=_maturities)
def test_delta_bounds_property(spot, strike, rate, vol, maturity):
    call_delta = float(analytics.bs_call_delta(spot, strike, rate, vol, maturity))
    put_delta = float(analytics.bs_put_delta(spot, strike, rate, vol, maturity))
    assert 0.0 <= call_delta <= 1.0
    assert -1.0 <= put_delta <= 0.0
    assert call_delta - put_delta == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=150, deadline=None)
@given(spot=_spots, strike=_strikes, rate=_rates, vol=_vols, maturity=_maturities)
def test_call_convex_in_strike_property(spot, strike, rate, vol, maturity):
    h = max(0.01 * strike, 0.5)
    low = float(analytics.bs_call_price(spot, strike - h * 0.5, rate, vol, maturity))
    mid = float(analytics.bs_call_price(spot, strike, rate, vol, maturity))
    high = float(analytics.bs_call_price(spot, strike + h * 0.5, rate, vol, maturity))
    assert low + high >= 2.0 * mid - 1e-8


@settings(max_examples=150, deadline=None)
@given(
    spot=_spots,
    strike=_strikes,
    rate=_rates,
    vol=st.floats(min_value=0.05, max_value=1.0),
    maturity=st.floats(min_value=0.05, max_value=5.0),
    barrier_frac=st.floats(min_value=0.3, max_value=0.99),
)
def test_barrier_parity_property(spot, strike, rate, vol, maturity, barrier_frac):
    barrier = spot * barrier_frac
    vanilla = float(analytics.bs_call_price(spot, strike, rate, vol, maturity))
    out = float(
        analytics.barrier_call_price(spot, strike, barrier, rate, vol, maturity,
                                     barrier_type="down-out")
    )
    inn = float(
        analytics.barrier_call_price(spot, strike, barrier, rate, vol, maturity,
                                     barrier_type="down-in")
    )
    assert 0.0 <= out <= vanilla + 1e-9
    assert 0.0 <= inn <= vanilla + 1e-9
    assert out + inn == pytest.approx(vanilla, rel=1e-6, abs=1e-8)
