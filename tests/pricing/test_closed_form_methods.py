"""Tests of the closed-form pricing methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleMethodError
from repro.pricing import (
    BasketPut,
    ClosedFormBarrier,
    ClosedFormBasketApprox,
    ClosedFormCall,
    ClosedFormDigital,
    ClosedFormPut,
    DigitalCall,
    DigitalPut,
    DownOutCall,
    EuropeanCall,
    EuropeanPut,
    MonteCarloEuropean,
    analytics,
)


class TestClosedFormVanilla:
    def test_call_price_and_greeks(self, bs_model, atm_call):
        result = ClosedFormCall().price(bs_model, atm_call)
        assert result.price == pytest.approx(10.450584, abs=1e-6)
        assert result.delta == pytest.approx(0.636831, abs=1e-6)
        assert result.method_name == "CF_Call"
        assert result.extra["gamma"] > 0
        assert result.extra["vega"] > 0
        assert result.elapsed >= 0.0

    def test_put_price_and_parity(self, bs_model, atm_call, atm_put):
        call = ClosedFormCall().price(bs_model, atm_call).price
        put = ClosedFormPut().price(bs_model, atm_put).price
        parity = bs_model.spot - atm_call.strike * np.exp(-bs_model.rate)
        assert call - put == pytest.approx(parity, abs=1e-12)

    def test_dividend_model(self, bs_model_dividend, atm_call):
        result = ClosedFormCall().price(bs_model_dividend, atm_call)
        expected = analytics.bs_call_price(100.0, 100.0, 0.05, 0.25, 1.0, 0.03)
        assert result.price == pytest.approx(float(expected), abs=1e-12)

    def test_incompatible_combination_raises(self, bs_model, atm_put, heston_model, atm_call):
        with pytest.raises(IncompatibleMethodError):
            ClosedFormCall().price(bs_model, atm_put)
        with pytest.raises(IncompatibleMethodError):
            ClosedFormCall().price(heston_model, atm_call)

    def test_put_delta_negative(self, bs_model, atm_put):
        result = ClosedFormPut().price(bs_model, atm_put)
        assert -1.0 < result.delta < 0.0


class TestClosedFormDigital:
    def test_digital_call(self, bs_model):
        product = DigitalCall(strike=100.0, maturity=1.0)
        result = ClosedFormDigital().price(bs_model, product)
        expected = analytics.digital_call_price(100, 100, 0.05, 0.2, 1.0)
        assert result.price == pytest.approx(float(expected), abs=1e-12)
        assert result.delta > 0

    def test_digital_put(self, bs_model):
        product = DigitalPut(strike=100.0, maturity=1.0)
        result = ClosedFormDigital().price(bs_model, product)
        expected = analytics.digital_put_price(100, 100, 0.05, 0.2, 1.0)
        assert result.price == pytest.approx(float(expected), abs=1e-12)
        assert result.delta < 0

    def test_digitals_sum_to_discount_bond(self, bs_model):
        call = ClosedFormDigital().price(bs_model, DigitalCall(strike=100.0, maturity=1.0))
        put = ClosedFormDigital().price(bs_model, DigitalPut(strike=100.0, maturity=1.0))
        assert call.price + put.price == pytest.approx(np.exp(-0.05), abs=1e-12)


class TestClosedFormBarrier:
    def test_down_out_call(self, bs_model):
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=85.0)
        result = ClosedFormBarrier().price(bs_model, product)
        expected = analytics.barrier_call_price(100, 100, 85, 0.05, 0.2, 1.0,
                                                barrier_type="down-out")
        assert result.price == pytest.approx(float(expected), abs=1e-12)
        assert 0 < result.price < ClosedFormCall().price(bs_model, EuropeanCall(100, 1.0)).price

    def test_rebate_not_supported_in_closed_form(self, bs_model):
        from repro.pricing import BarrierOption

        product = BarrierOption(strike=100.0, maturity=1.0, barrier=85.0, rebate=2.0)
        assert not ClosedFormBarrier().supports(bs_model, product)

    def test_delta_sign(self, bs_model):
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=85.0)
        result = ClosedFormBarrier().price(bs_model, product)
        assert result.delta > 0  # call-like product


class TestClosedFormBasketApprox:
    def test_close_to_monte_carlo(self, basket_model):
        product = BasketPut(strike=100.0, maturity=1.0, weights=[0.2] * 5)
        approx = ClosedFormBasketApprox().price(basket_model, product)
        mc = MonteCarloEuropean(n_paths=200_000, seed=3).price(basket_model, product)
        # the moment-matched lognormal is accurate to ~1-2% for baskets of
        # comparable assets
        assert approx.price == pytest.approx(mc.price, rel=0.03)

    def test_requires_nonnegative_weights(self, basket_model):
        product = BasketPut(strike=100.0, maturity=1.0, weights=[0.4, 0.4, 0.4, 0.4, -0.6])
        assert not ClosedFormBasketApprox().supports(basket_model, product)

    def test_requires_matching_dimension(self, basket_model):
        product = BasketPut(strike=100.0, maturity=1.0, weights=[0.5, 0.5])
        assert not ClosedFormBasketApprox().supports(basket_model, product)

    def test_incompatible_with_single_asset_model(self, bs_model):
        product = BasketPut(strike=100.0, maturity=1.0, weights=[1.0])
        assert not ClosedFormBasketApprox().supports(bs_model, product)


def test_methods_report_work_and_name(bs_model, atm_call):
    result = ClosedFormCall().price(bs_model, atm_call)
    assert result.n_evaluations == 1
    as_dict = result.as_dict()
    assert as_dict["price"] == result.price
    assert as_dict["method_name"] == "CF_Call"
