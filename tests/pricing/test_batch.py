"""Tests of the shared-path batch pricing subsystem (:mod:`repro.pricing.batch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    MonteCarloEuropean,
    PricingProblem,
    ProblemBatch,
    ResultCache,
    plan_batches,
    price_problems,
    simulation_signature,
)
from repro.serial import serialize


def _mc_problem(
    strike: float,
    seed: int = 0,
    n_paths: int = 2_000,
    n_steps: int | None = None,
    option: str = "CallEuro",
    maturity: float = 1.0,
    antithetic: bool = True,
    **method_params,
) -> PricingProblem:
    problem = PricingProblem(label=f"{option}_K{strike}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option(option, strike=strike, maturity=maturity)
    problem.set_method(
        "MC_European", n_paths=n_paths, n_steps=n_steps, seed=seed,
        antithetic=antithetic, **method_params,
    )
    return problem


def _cf_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"cf_{strike}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


class TestSimulationSignature:
    def test_same_family_same_signature(self):
        a = simulation_signature(_mc_problem(90.0))
        b = simulation_signature(_mc_problem(110.0))
        assert a is not None and a == b

    def test_terminal_vs_path_modes(self):
        terminal = simulation_signature(_mc_problem(100.0))
        paths = simulation_signature(_mc_problem(100.0, n_steps=12))
        assert terminal.mode == "terminal"
        assert paths.mode == "paths"
        assert terminal != paths

    @pytest.mark.parametrize(
        "other",
        [
            _mc_problem(100.0, seed=1),
            _mc_problem(100.0, n_paths=3_000),
            _mc_problem(100.0, maturity=2.0),
            _mc_problem(100.0, antithetic=False),
            # *every* method parameter must split groups: grouping problems
            # that differ only in payoff-side options (control variate,
            # barrier correction, rng, batching) would change their prices
            _mc_problem(100.0, control_variate=False),
            _mc_problem(100.0, barrier_correction=False),
            _mc_problem(100.0, rng_kind="sobol"),
            _mc_problem(100.0, batch_size=512),
        ],
    )
    def test_simulation_parameters_split_groups(self, other):
        assert simulation_signature(other) != simulation_signature(_mc_problem(100.0))

    def test_control_variate_mismatch_prices_stay_solo_identical(self):
        # the concrete bug this guards against: grouping a cv=True with a
        # cv=False problem would silently price both with one method
        with_cv = _mc_problem(100.0, control_variate=True)
        without_cv = _mc_problem(100.0, control_variate=False)
        results = price_problems([with_cv, without_cv])
        assert results[0].price == _mc_problem(100.0, control_variate=True).compute().price
        assert results[1].price == _mc_problem(100.0, control_variate=False).compute().price
        assert results[0].price != results[1].price

    def test_model_parameters_split_groups(self):
        other = _mc_problem(100.0)
        other.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.3)
        assert simulation_signature(other) != simulation_signature(_mc_problem(100.0))

    def test_non_mc_methods_have_no_signature(self):
        assert simulation_signature(_cf_problem()) is None

    def test_incomplete_problem_has_no_signature(self):
        assert simulation_signature(PricingProblem()) is None


class TestPlanBatches:
    def test_groups_and_singles(self):
        problems = [
            _mc_problem(90.0),
            _cf_problem(),
            _mc_problem(100.0),
            None,
            _mc_problem(110.0, seed=5),  # different stream: not groupable
            _mc_problem(120.0),
        ]
        plan = plan_batches(problems)
        assert [group.indices for group in plan.groups] == [(0, 2, 5)]
        assert plan.singles == (1, 3, 4)
        assert plan.n_grouped == 3
        assert plan.n_simulations_saved == 2

    def test_max_group_size_splits_families(self):
        problems = [_mc_problem(80.0 + i) for i in range(7)]
        plan = plan_batches(problems, max_group_size=3)
        assert [len(group) for group in plan.groups] == [3, 3]
        # the leftover single falls back to per-problem pricing
        assert len(plan.singles) == 1

    def test_validation(self):
        with pytest.raises(PricingError):
            plan_batches([], min_group_size=0)
        with pytest.raises(PricingError):
            plan_batches([], min_group_size=3, max_group_size=2)

    def test_min_group_size_one_keeps_singletons_as_groups(self):
        # the scenario-grid configuration: every problem a distinct signature,
        # yet all of them belong in the plan (the stacked kernel still merges
        # their draw cohorts)
        problems = [_mc_problem(100.0, n_paths=4096), _mc_problem(100.0, n_paths=8192)]
        plan = plan_batches(problems, min_group_size=1)
        assert len(plan.groups) == 2
        assert all(len(group.indices) == 1 for group in plan.groups)
        assert plan.singles == ()


class TestSharedPathPricing:
    def test_batched_prices_bit_identical(self):
        strikes = [85.0, 95.0, 100.0, 105.0, 115.0]
        solo = [_mc_problem(k).compute() for k in strikes]
        batched = price_problems([_mc_problem(k) for k in strikes])
        for alone, shared in zip(solo, batched):
            assert shared.price == alone.price
            assert shared.std_error == alone.std_error
            assert shared.confidence_interval == alone.confidence_interval
            assert shared.n_evaluations == alone.n_evaluations

    def test_batched_path_mode_bit_identical(self):
        strikes = [90.0, 100.0, 110.0]
        solo = [_mc_problem(k, n_steps=6, n_paths=1_000).compute() for k in strikes]
        batched = price_problems(
            [_mc_problem(k, n_steps=6, n_paths=1_000) for k in strikes]
        )
        for alone, shared in zip(solo, batched):
            assert shared.price == alone.price
            assert shared.std_error == alone.std_error

    def test_mixed_payoffs_share_one_simulation(self):
        call = _mc_problem(100.0, option="CallEuro")
        put = _mc_problem(100.0, option="PutEuro")
        plan = plan_batches([call, put])
        assert len(plan.groups) == 1
        results = price_problems([call, put])
        assert results[0].price == _mc_problem(100.0, option="CallEuro").compute().price
        assert results[1].price == _mc_problem(100.0, option="PutEuro").compute().price

    def test_fallback_for_ungroupable_problems(self):
        problems = [_mc_problem(95.0), _cf_problem(), _mc_problem(105.0)]
        results = price_problems(problems)
        assert len(results) == 3
        assert results[1].method_name == "CF_Call"
        for problem, result in zip(problems, results):
            assert problem.get_method_results() is result

    def test_price_many_rejects_mixed_grids(self):
        method = MonteCarloEuropean(n_paths=1_000)
        model = _mc_problem(100.0).model
        short = _mc_problem(100.0, maturity=0.5).product
        long = _mc_problem(100.0, maturity=1.0).product
        with pytest.raises(PricingError):
            method.price_many(model, [short, long])

    def test_price_many_empty(self):
        method = MonteCarloEuropean(n_paths=1_000)
        assert method.price_many(_mc_problem(100.0).model, []) == []


class TestProblemBatch:
    def test_requires_shared_signature(self):
        with pytest.raises(PricingError):
            ProblemBatch([_mc_problem(90.0), _mc_problem(100.0, seed=9)])
        with pytest.raises(PricingError):
            ProblemBatch([_cf_problem()])
        with pytest.raises(PricingError):
            ProblemBatch([])

    def test_serialization_round_trip(self):
        batch = ProblemBatch([_mc_problem(90.0), _mc_problem(110.0)], keys=[41, 42])
        rebuilt = serialize(batch).unserialize()
        assert isinstance(rebuilt, ProblemBatch)
        assert rebuilt.keys == [41, 42]
        assert rebuilt.signature == batch.signature
        original = batch.compute()
        restored = rebuilt.compute()
        assert {k: v["price"] for k, v in original.items()} == {
            k: v["price"] for k, v in restored.items()
        }

    def test_compute_with_cache_skips_members(self):
        cache = ResultCache()
        batch = ProblemBatch([_mc_problem(90.0), _mc_problem(110.0)])
        cold = batch.compute(cache=cache)
        assert not any(entry.get("cache_hit") for entry in cold.values())

        # warm pass: one member cached, one new -- the shared simulation
        # shrinks but the fresh member's price must not move
        warm_batch = ProblemBatch(
            [_mc_problem(90.0), _mc_problem(100.0)], keys=[0, 1]
        )
        warm = warm_batch.compute(cache=cache)
        assert warm[0]["cache_hit"] is True
        assert warm[0]["price"] == cold[0]["price"]
        assert warm[1]["price"] == _mc_problem(100.0).compute().price


class TestMemberFailureIsolation:
    def _exploding_problem(self) -> PricingProblem:
        from repro.pricing.engine import register_product
        from repro.pricing.products.vanilla import EuropeanCall

        class ExplodingCall(EuropeanCall):
            option_name = "ExplodingCallTest"

            def terminal_payoff(self, spot):
                return np.full(np.shape(spot)[0], np.inf)

        register_product(ExplodingCall)
        problem = _mc_problem(100.0)
        problem.set_option(ExplodingCall(strike=100.0, maturity=1.0))
        return problem

    def test_one_bad_member_does_not_fail_the_family(self):
        good_a, bad, good_b = _mc_problem(95.0), self._exploding_problem(), _mc_problem(105.0)
        batch = ProblemBatch([good_a, bad, good_b], keys=[0, 1, 2])
        out = batch.compute()
        assert "error" in out[1] and "price" not in out[1]
        assert out[0]["price"] == _mc_problem(95.0).compute().price
        assert out[2]["price"] == _mc_problem(105.0).compute().price

    def test_price_problems_raises_for_the_bad_member(self):
        with pytest.raises(PricingError, match="shared-path batch"):
            price_problems([_mc_problem(95.0), self._exploding_problem()])


class TestAntitheticSampleAccounting:
    """Satellite fix: reported counts equal samples actually used."""

    def test_odd_n_paths_reports_even_effective_count(self, bs_model, atm_call):
        method = MonteCarloEuropean(n_paths=1_001, seed=3)
        result = method.price(bs_model, atm_call)
        assert result.extra["n_paths"] == 1_002  # one pair completes the odd request
        assert result.extra["n_paths_requested"] == 1_001
        assert result.n_evaluations == result.extra["n_paths"]

    def test_even_n_paths_reports_exact_count(self, bs_model, atm_call):
        result = MonteCarloEuropean(n_paths=1_000, seed=3).price(bs_model, atm_call)
        assert result.extra["n_paths"] == 1_000
        assert result.n_evaluations == 1_000

    def test_odd_batch_size_never_exceeds_the_memory_bound(self, bs_model, atm_call):
        captured: list[int] = []
        original = type(bs_model).sample_terminal

        def spy(model, rng, n_paths, maturity):
            captured.append(n_paths)
            return original(model, rng, n_paths, maturity)

        method = MonteCarloEuropean(n_paths=1_000, batch_size=333, seed=1)
        model = bs_model
        type(model).sample_terminal = spy
        try:
            result = method.price(model, atm_call)
        finally:
            type(model).sample_terminal = original
        assert all(batch <= 333 for batch in captured)
        assert all(batch % 2 == 0 for batch in captured)
        assert sum(captured) == 1_000
        assert result.extra["n_paths"] == 1_000

    def test_non_antithetic_counts(self, bs_model, atm_call):
        method = MonteCarloEuropean(n_paths=1_001, antithetic=False, seed=2)
        result = method.price(bs_model, atm_call)
        assert result.extra["n_paths"] == 1_001
        assert result.n_evaluations == 1_001


class TestLargeFamilyAgreement:
    def test_portfolio_slice_agreement_with_control_variate(self):
        # a miniature version of the paper's basket family: shared 5-d model,
        # varying strikes, antithetic + control variate
        from repro.pricing import flat_correlation

        strikes = np.linspace(90.0, 110.0, 6)

        def make(strike: float) -> PricingProblem:
            problem = PricingProblem(label=f"basket_{strike:.0f}")
            problem.set_asset("equity")
            problem.set_model(
                "BlackScholesND",
                spot=[100.0] * 5,
                rate=0.045,
                volatilities=[0.2, 0.22, 0.18, 0.25, 0.21],
                correlation=flat_correlation(5, 0.3).tolist(),
                dividends=0.0,
            )
            problem.set_option(
                "BasketPutEuro", strike=float(strike), maturity=1.0,
                weights=[0.2] * 5,
            )
            problem.set_method(
                "MC_European", n_paths=4_000, n_steps=1, antithetic=True,
                control_variate=True, seed=11,
            )
            return problem

        solo = [make(k).compute() for k in strikes]
        batched = price_problems([make(k) for k in strikes])
        for alone, shared in zip(solo, batched):
            assert shared.price == alone.price
            assert shared.std_error == alone.std_error
            assert shared.extra["control_variate_beta"] == alone.extra["control_variate_beta"]
