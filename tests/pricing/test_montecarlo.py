"""Tests of the Monte-Carlo European pricer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    AmericanPut,
    AsianCall,
    BasketPut,
    ClosedFormBarrier,
    ClosedFormBasketApprox,
    ClosedFormCall,
    ClosedFormPut,
    DigitalCall,
    DownOutCall,
    EuropeanCall,
    EuropeanPut,
    FourierCOS,
    MonteCarloEuropean,
    analytics,
)


def _within_ci(mc_result, reference, n_sigmas=4.0, extra=0.0):
    return abs(mc_result.price - reference) <= n_sigmas * mc_result.std_error + extra


class TestMonteCarloBlackScholes:
    def test_call_matches_closed_form(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        mc = MonteCarloEuropean(n_paths=200_000, seed=1).price(bs_model, atm_call)
        assert _within_ci(mc, exact)
        assert mc.std_error < 0.05
        assert mc.confidence_interval[0] < mc.price < mc.confidence_interval[1]

    def test_put_matches_closed_form(self, bs_model, atm_put):
        exact = ClosedFormPut().price(bs_model, atm_put).price
        mc = MonteCarloEuropean(n_paths=200_000, seed=2).price(bs_model, atm_put)
        assert _within_ci(mc, exact)

    def test_digital_matches_closed_form(self, bs_model):
        product = DigitalCall(strike=100.0, maturity=1.0)
        exact = float(analytics.digital_call_price(100, 100, 0.05, 0.2, 1.0))
        mc = MonteCarloEuropean(n_paths=200_000, seed=3).price(bs_model, product)
        assert _within_ci(mc, exact)

    def test_reproducible_with_seed(self, bs_model, atm_call):
        a = MonteCarloEuropean(n_paths=50_000, seed=7).price(bs_model, atm_call).price
        b = MonteCarloEuropean(n_paths=50_000, seed=7).price(bs_model, atm_call).price
        assert a == b

    def test_different_seeds_differ(self, bs_model, atm_call):
        a = MonteCarloEuropean(n_paths=50_000, seed=7).price(bs_model, atm_call).price
        b = MonteCarloEuropean(n_paths=50_000, seed=8).price(bs_model, atm_call).price
        assert a != b

    def test_std_error_decreases_with_paths(self, bs_model, atm_call):
        small = MonteCarloEuropean(n_paths=10_000, seed=1, control_variate=False).price(
            bs_model, atm_call
        )
        large = MonteCarloEuropean(n_paths=160_000, seed=1, control_variate=False).price(
            bs_model, atm_call
        )
        assert large.std_error < small.std_error
        # roughly 1/sqrt(n): a factor 16 in paths gives ~4x smaller error
        assert large.std_error == pytest.approx(small.std_error / 4.0, rel=0.5)

    def test_control_variate_reduces_variance(self, bs_model, atm_call):
        plain = MonteCarloEuropean(
            n_paths=100_000, seed=5, antithetic=False, control_variate=False
        ).price(bs_model, atm_call)
        with_cv = MonteCarloEuropean(
            n_paths=100_000, seed=5, antithetic=False, control_variate=True
        ).price(bs_model, atm_call)
        assert with_cv.std_error < plain.std_error
        assert with_cv.extra["control_variate_beta"] != 0.0

    def test_antithetic_reduces_variance(self, bs_model, atm_put):
        plain = MonteCarloEuropean(
            n_paths=100_000, seed=6, antithetic=False, control_variate=False
        ).price(bs_model, atm_put)
        anti = MonteCarloEuropean(
            n_paths=100_000, seed=6, antithetic=True, control_variate=False
        ).price(bs_model, atm_put)
        assert anti.std_error < plain.std_error

    def test_sobol_quasi_monte_carlo(self, bs_model, atm_call):
        exact = ClosedFormCall().price(bs_model, atm_call).price
        qmc = MonteCarloEuropean(
            n_paths=65_536, rng_kind="sobol", antithetic=False, seed=0
        ).price(bs_model, atm_call)
        assert qmc.price == pytest.approx(exact, abs=0.02)

    def test_batched_run_matches_single_batch(self, bs_model, atm_call):
        single = MonteCarloEuropean(n_paths=40_000, seed=9, batch_size=40_000).price(
            bs_model, atm_call
        )
        batched = MonteCarloEuropean(n_paths=40_000, seed=9, batch_size=8_000).price(
            bs_model, atm_call
        )
        # same total paths, same generator type, statistically indistinguishable
        assert batched.price == pytest.approx(single.price, abs=4 * single.std_error)

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            MonteCarloEuropean(n_paths=1)
        with pytest.raises(PricingError):
            MonteCarloEuropean(n_steps=0)
        with pytest.raises(PricingError):
            MonteCarloEuropean(batch_size=1)

    def test_american_product_rejected(self, bs_model):
        assert not MonteCarloEuropean().supports(bs_model, AmericanPut(100.0, 1.0))


class TestMonteCarloPathDependent:
    def test_down_out_call_with_continuity_correction(self, bs_model):
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=85.0)
        exact = ClosedFormBarrier().price(bs_model, product).price
        mc = MonteCarloEuropean(n_paths=200_000, seed=4).price(bs_model, product)
        assert mc.price == pytest.approx(exact, rel=0.02)

    def test_correction_improves_accuracy(self, bs_model):
        product = DownOutCall(strike=100.0, maturity=1.0, barrier=90.0)
        exact = ClosedFormBarrier().price(bs_model, product).price
        corrected = MonteCarloEuropean(
            n_paths=200_000, seed=4, barrier_correction=True
        ).price(bs_model, product)
        raw = MonteCarloEuropean(
            n_paths=200_000, seed=4, barrier_correction=False
        ).price(bs_model, product)
        assert abs(corrected.price - exact) < abs(raw.price - exact)
        # without correction the discretely monitored option is worth more
        assert raw.price > exact

    def test_asian_call_below_vanilla(self, bs_model):
        vanilla = ClosedFormCall().price(bs_model, EuropeanCall(100.0, 1.0)).price
        asian = MonteCarloEuropean(n_paths=100_000, seed=5).price(
            bs_model, AsianCall(strike=100.0, maturity=1.0, n_fixings=12)
        )
        assert asian.price < vanilla
        assert asian.price > 0

    def test_asian_with_single_fixing_close_to_vanilla(self, bs_model):
        """With one fixing at maturity, the Asian option IS the vanilla."""
        vanilla = ClosedFormCall().price(bs_model, EuropeanCall(100.0, 1.0)).price
        asian = MonteCarloEuropean(n_paths=200_000, seed=6).price(
            bs_model, AsianCall(strike=100.0, maturity=1.0, n_fixings=1)
        )
        assert _within_ci(asian, vanilla, extra=0.01)


class TestMonteCarloOtherModels:
    def test_heston_matches_cos(self, heston_model, atm_call):
        exact = FourierCOS(n_terms=512).price(heston_model, atm_call).price
        mc = MonteCarloEuropean(n_paths=100_000, n_steps=100, seed=10).price(
            heston_model, atm_call
        )
        # discretisation bias of the Euler scheme allows a small extra margin
        assert _within_ci(mc, exact, extra=0.05)

    def test_merton_matches_cos(self, merton_model, atm_call):
        exact = FourierCOS(n_terms=512).price(merton_model, atm_call).price
        mc = MonteCarloEuropean(n_paths=200_000, seed=11).price(merton_model, atm_call)
        assert _within_ci(mc, exact, extra=0.02)

    def test_basket_put_matches_moment_matching(self, basket_model):
        product = BasketPut(strike=100.0, maturity=1.0, weights=[0.2] * 5)
        approx = ClosedFormBasketApprox().price(basket_model, product).price
        mc = MonteCarloEuropean(n_paths=200_000, seed=12).price(basket_model, product)
        assert mc.price == pytest.approx(approx, rel=0.03)
        assert mc.std_error < 0.05

    def test_forty_dimensional_basket_runs(self):
        """The paper's 40-dimensional product class (scaled-down paths)."""
        from repro.pricing import MultiAssetBlackScholesModel, flat_correlation

        d = 40
        model = MultiAssetBlackScholesModel(
            spot=[100.0] * d, rate=0.045, volatilities=[0.2] * d,
            correlation=flat_correlation(d, 0.3),
        )
        product = BasketPut(strike=100.0, maturity=1.0, weights=[1.0 / d] * d)
        mc = MonteCarloEuropean(n_paths=20_000, seed=13, batch_size=5_000).price(model, product)
        assert 0.0 < mc.price < 100.0
        assert np.isfinite(mc.std_error)

    def test_dimension_mismatch_rejected(self, bs_model, basket_model):
        basket_product = BasketPut(strike=100.0, maturity=1.0, weights=[0.5, 0.5])
        assert not MonteCarloEuropean().supports(bs_model, basket_product)
        assert not MonteCarloEuropean().supports(basket_model, basket_product)
