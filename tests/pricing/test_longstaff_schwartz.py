"""Tests of the Longstaff-Schwartz American Monte-Carlo pricer."""

from __future__ import annotations

import pytest

from repro.errors import PricingError
from repro.pricing import (
    AmericanBasketPut,
    AmericanCall,
    AmericanPut,
    BasketPut,
    BinomialTree,
    ClosedFormCall,
    ClosedFormPut,
    EuropeanCall,
    EuropeanPut,
    LongstaffSchwartz,
    MonteCarloEuropean,
    PricingProblem,
)


class TestLongstaffSchwartzBlackScholes:
    def test_american_put_close_to_binomial(self, bs_model):
        product = AmericanPut(strike=100.0, maturity=1.0)
        reference = BinomialTree(n_steps=2000).price(bs_model, product).price
        ls = LongstaffSchwartz(n_paths=100_000, n_steps=50, seed=1).price(bs_model, product)
        # Longstaff-Schwartz is slightly low biased (sub-optimal policy) and
        # Bermudan-in-time; 1% relative accuracy is the expected regime
        assert ls.price == pytest.approx(reference, rel=0.015)

    def test_american_put_above_european(self, bs_model):
        european = ClosedFormPut().price(bs_model, EuropeanPut(100.0, 1.0)).price
        ls = LongstaffSchwartz(n_paths=50_000, n_steps=50, seed=2).price(
            bs_model, AmericanPut(strike=100.0, maturity=1.0)
        )
        assert ls.price > european

    def test_american_put_not_above_strike(self, bs_model):
        ls = LongstaffSchwartz(n_paths=20_000, n_steps=25, seed=3).price(
            bs_model, AmericanPut(strike=100.0, maturity=1.0)
        )
        assert ls.price < 100.0

    def test_deep_itm_put_at_least_intrinsic(self, bs_model):
        product = AmericanPut(strike=160.0, maturity=0.5)
        ls = LongstaffSchwartz(n_paths=20_000, n_steps=25, seed=4).price(bs_model, product)
        assert ls.price >= 60.0 - 1e-9
        assert ls.extra["immediate_exercise"] == pytest.approx(60.0)

    def test_american_call_no_dividend_close_to_european(self, bs_model):
        european = ClosedFormCall().price(bs_model, EuropeanCall(100.0, 1.0)).price
        ls = LongstaffSchwartz(n_paths=100_000, n_steps=50, seed=5).price(
            bs_model, AmericanCall(strike=100.0, maturity=1.0)
        )
        assert ls.price == pytest.approx(european, rel=0.02)

    def test_reproducibility(self, bs_model):
        product = AmericanPut(strike=100.0, maturity=1.0)
        a = LongstaffSchwartz(n_paths=20_000, n_steps=20, seed=6).price(bs_model, product).price
        b = LongstaffSchwartz(n_paths=20_000, n_steps=20, seed=6).price(bs_model, product).price
        assert a == b

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            LongstaffSchwartz(n_paths=5)
        with pytest.raises(PricingError):
            LongstaffSchwartz(n_steps=1)
        with pytest.raises(PricingError):
            LongstaffSchwartz(basis_degree=0)
        with pytest.raises(PricingError):
            LongstaffSchwartz(heston_scheme="milstein")

    def test_rejects_european_products(self, bs_model, atm_call):
        assert not LongstaffSchwartz().supports(bs_model, atm_call)


class TestLongstaffSchwartzHeston:
    @pytest.mark.parametrize("scheme", ["alfonsi", "full_truncation"])
    def test_heston_american_put_above_european(self, heston_model, scheme):
        from repro.pricing import FourierCOS

        european = FourierCOS(n_terms=512).price(
            heston_model, EuropeanPut(strike=100.0, maturity=1.0)
        ).price
        ls = LongstaffSchwartz(
            n_paths=50_000, n_steps=50, seed=7, heston_scheme=scheme
        ).price(heston_model, AmericanPut(strike=100.0, maturity=1.0))
        assert ls.price > european - 2 * ls.std_error
        assert ls.price < 100.0

    def test_paper_example_method_alias(self, heston_model):
        """The paper's example: Heston + PutAmer + MC_AM_Alfonsi_LongstaffSchwartz."""
        problem = PricingProblem()
        problem.set_asset("equity")
        problem.set_model(heston_model)
        problem.set_option("PutAmer", strike=100.0, maturity=1.0)
        problem.set_method("MC_AM_Alfonsi_LongstaffSchwartz", n_paths=20_000, n_steps=25, seed=8)
        result = problem.compute()
        assert 0.0 < result.price < 100.0
        assert problem.method.heston_scheme == "alfonsi"


class TestLongstaffSchwartzBasket:
    def test_american_basket_put_above_european_basket(self, basket_model):
        weights = [0.2] * 5
        european = MonteCarloEuropean(n_paths=100_000, seed=9).price(
            basket_model, BasketPut(strike=100.0, maturity=1.0, weights=weights)
        )
        american = LongstaffSchwartz(n_paths=50_000, n_steps=25, seed=9).price(
            basket_model, AmericanBasketPut(strike=100.0, maturity=1.0, weights=weights)
        )
        assert american.price > european.price - 2 * european.std_error
        assert american.price < 100.0

    def test_seven_dimensional_basket_runs(self):
        """The paper's 7-dimensional American basket class (scaled down)."""
        from repro.pricing import MultiAssetBlackScholesModel, flat_correlation

        d = 7
        model = MultiAssetBlackScholesModel(
            spot=[100.0] * d, rate=0.045, volatilities=[0.22] * d,
            correlation=flat_correlation(d, 0.3),
        )
        product = AmericanBasketPut(strike=100.0, maturity=1.0, weights=[1.0 / d] * d)
        result = LongstaffSchwartz(n_paths=10_000, n_steps=20, seed=10).price(model, product)
        assert 0.0 < result.price < 100.0
        assert result.n_evaluations == 10_000 * 20

    def test_dimension_mismatch_rejected(self, basket_model):
        product = AmericanBasketPut(strike=100.0, maturity=1.0, weights=[0.5, 0.5])
        assert not LongstaffSchwartz().supports(basket_model, product)
