"""Tests of the asset-dynamics models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    BlackScholesModel,
    CEVModel,
    HestonModel,
    MertonJumpModel,
    MultiAssetBlackScholesModel,
    SmileLocalVolModel,
    flat_correlation,
)
from repro.pricing.models import MODEL_CLASSES
from repro.pricing.rng import PseudoRandomGenerator


class TestBlackScholesModel:
    def test_validation(self):
        with pytest.raises(PricingError):
            BlackScholesModel(spot=-1.0, rate=0.05, volatility=0.2)
        with pytest.raises(PricingError):
            BlackScholesModel(spot=100.0, rate=0.05, volatility=0.0)

    def test_forward_and_discount(self, bs_model):
        assert bs_model.discount_factor(1.0) == pytest.approx(np.exp(-0.05))
        assert bs_model.forward(2.0) == pytest.approx(100.0 * np.exp(0.05 * 2.0))

    def test_terminal_martingale_property(self, bs_model):
        """Discounted terminal value has expectation spot (risk-neutral)."""
        rng = PseudoRandomGenerator(seed=0)
        terminal = bs_model.sample_terminal(rng, 400_000, maturity=1.0)
        discounted = np.exp(-bs_model.rate) * terminal.mean()
        assert discounted == pytest.approx(bs_model.spot, rel=2e-3)

    def test_terminal_lognormal_moments(self, bs_model):
        rng = PseudoRandomGenerator(seed=1)
        maturity = 2.0
        terminal = bs_model.sample_terminal(rng, 400_000, maturity)
        log_returns = np.log(terminal / bs_model.spot)
        expected_mean = (bs_model.rate - 0.5 * bs_model.volatility**2) * maturity
        expected_std = bs_model.volatility * np.sqrt(maturity)
        assert log_returns.mean() == pytest.approx(expected_mean, abs=3e-3)
        assert log_returns.std() == pytest.approx(expected_std, rel=1e-2)

    def test_paths_start_at_spot_and_stay_positive(self, bs_model):
        rng = PseudoRandomGenerator(seed=2)
        times = np.linspace(0.0, 1.0, 13)
        paths = bs_model.simulate_paths(rng, 500, times)
        assert paths.shape == (500, 13)
        np.testing.assert_allclose(paths[:, 0], bs_model.spot)
        assert np.all(paths > 0)

    def test_path_terminal_matches_exact_sampling_distribution(self, bs_model):
        rng = PseudoRandomGenerator(seed=3)
        times = np.linspace(0.0, 1.0, 5)
        paths = bs_model.simulate_paths(rng, 200_000, times)
        terminal_from_paths = paths[:, -1]
        expected_mean = bs_model.spot * np.exp(bs_model.rate)
        assert terminal_from_paths.mean() == pytest.approx(expected_mean, rel=3e-3)

    def test_invalid_time_grid(self, bs_model):
        rng = PseudoRandomGenerator(seed=0)
        with pytest.raises(PricingError):
            bs_model.simulate_paths(rng, 10, np.array([0.5, 1.0]))
        with pytest.raises(PricingError):
            bs_model.simulate_paths(rng, 10, np.array([0.0, 1.0, 0.5]))

    def test_char_function_at_zero_is_one(self, bs_model):
        assert bs_model.log_char_function(np.array([0.0]), 1.0)[0] == pytest.approx(1.0)

    def test_params_roundtrip(self, bs_model):
        clone = BlackScholesModel.from_params(bs_model.to_params())
        assert clone == bs_model
        assert hash(clone) == hash(bs_model)

    def test_bump_helpers(self, bs_model):
        assert bs_model.with_spot(110.0).spot == 110.0
        assert bs_model.with_volatility(0.3).volatility == 0.3


class TestLocalVolModels:
    def test_cev_validation(self):
        with pytest.raises(PricingError):
            CEVModel(spot=100, rate=0.05, volatility=0.2, beta=2.5)
        with pytest.raises(PricingError):
            CEVModel(spot=100, rate=0.05, volatility=-0.1, beta=0.5)

    def test_cev_beta_one_is_black_scholes(self):
        cev = CEVModel(spot=100, rate=0.05, volatility=0.2, beta=1.0)
        s = np.array([50.0, 100.0, 200.0])
        np.testing.assert_allclose(cev.local_volatility(0.0, s), 0.2)

    def test_cev_skew_direction(self):
        cev = CEVModel(spot=100, rate=0.05, volatility=0.2, beta=0.5)
        low = cev.local_volatility(0.0, np.array([50.0]))[0]
        high = cev.local_volatility(0.0, np.array([200.0]))[0]
        assert low > 0.2 > high

    def test_smile_model_reduces_to_constant_vol(self):
        smile = SmileLocalVolModel(spot=100, rate=0.05, base_volatility=0.2, skew=0.0, term=0.0)
        s = np.array([60.0, 100.0, 180.0])
        np.testing.assert_allclose(smile.local_volatility(0.7, s), 0.2)

    def test_smile_model_bounds_respected(self):
        smile = SmileLocalVolModel(
            spot=100, rate=0.05, base_volatility=0.2, skew=5.0, term=0.0,
            vol_floor=0.05, vol_cap=0.6,
        )
        s = np.array([1.0, 100.0, 10_000.0])
        vols = smile.local_volatility(0.0, s)
        assert np.all(vols >= 0.05)
        assert np.all(vols <= 0.6)

    def test_local_vol_martingale(self):
        model = SmileLocalVolModel(spot=100, rate=0.03, base_volatility=0.2, skew=0.3, term=0.1)
        rng = PseudoRandomGenerator(seed=4)
        times = np.linspace(0.0, 1.0, 51)
        paths = model.simulate_paths(rng, 100_000, times)
        discounted = np.exp(-model.rate) * paths[:, -1].mean()
        assert discounted == pytest.approx(model.spot, rel=5e-3)


class TestHestonModel:
    def test_validation(self):
        with pytest.raises(PricingError):
            HestonModel(spot=100, rate=0.03, v0=-0.1, kappa=2, theta=0.04, sigma_v=0.4, rho=0.0)
        with pytest.raises(PricingError):
            HestonModel(spot=100, rate=0.03, v0=0.04, kappa=2, theta=0.04, sigma_v=0.4, rho=-1.5)

    def test_feller_condition_flag(self):
        good = HestonModel(spot=100, rate=0.0, v0=0.04, kappa=2, theta=0.04, sigma_v=0.2, rho=0.0)
        bad = HestonModel(spot=100, rate=0.0, v0=0.04, kappa=1, theta=0.04, sigma_v=0.9, rho=0.0)
        assert good.feller_satisfied
        assert not bad.feller_satisfied

    def test_char_function_at_zero(self, heston_model):
        value = heston_model.log_char_function(np.array([0.0]), 1.0)[0]
        assert value == pytest.approx(1.0, abs=1e-12)

    def test_char_function_is_valid_cf(self, heston_model):
        """|phi(u)| <= 1 for real u, a property of characteristic functions."""
        u = np.linspace(-50, 50, 201)
        phi = heston_model.log_char_function(u, 2.0)
        assert np.all(np.abs(phi) <= 1.0 + 1e-12)

    @pytest.mark.parametrize("scheme", ["full_truncation", "alfonsi"])
    def test_martingale_property(self, heston_model, scheme):
        rng = PseudoRandomGenerator(seed=5)
        times = np.linspace(0.0, 1.0, 101)
        paths = heston_model.simulate_paths(rng, 100_000, times, scheme=scheme)
        discounted = np.exp(-heston_model.rate) * paths[:, -1].mean()
        assert discounted == pytest.approx(heston_model.spot, rel=1e-2)

    def test_variance_paths_nonnegative(self, heston_model):
        rng = PseudoRandomGenerator(seed=6)
        times = np.linspace(0.0, 1.0, 51)
        _, variance = heston_model.simulate_paths(
            rng, 2_000, times, return_variance=True
        )
        assert np.all(variance >= 0.0)

    def test_variance_mean_reverts_to_theta(self):
        model = HestonModel(spot=100, rate=0.0, v0=0.09, kappa=3.0, theta=0.04,
                            sigma_v=0.3, rho=0.0)
        rng = PseudoRandomGenerator(seed=7)
        times = np.linspace(0.0, 5.0, 251)
        _, variance = model.simulate_paths(rng, 20_000, times, return_variance=True)
        assert variance[:, -1].mean() == pytest.approx(model.theta, rel=0.1)

    def test_unknown_scheme_rejected(self, heston_model):
        rng = PseudoRandomGenerator(seed=0)
        with pytest.raises(PricingError):
            heston_model.simulate_paths(rng, 10, np.linspace(0, 1, 3), scheme="euler_exact")


class TestMertonModel:
    def test_validation(self):
        with pytest.raises(PricingError):
            MertonJumpModel(spot=100, rate=0.05, volatility=0.2,
                            jump_intensity=-1.0, jump_mean=0.0, jump_std=0.1)

    def test_zero_intensity_matches_black_scholes_cf(self, bs_model):
        merton = MertonJumpModel(spot=100, rate=0.05, volatility=0.2,
                                 jump_intensity=0.0, jump_mean=0.0, jump_std=0.1)
        u = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(
            merton.log_char_function(u, 1.0), bs_model.log_char_function(u, 1.0), rtol=1e-12
        )

    def test_martingale_property(self, merton_model):
        rng = PseudoRandomGenerator(seed=8)
        terminal = merton_model.sample_terminal(rng, 300_000, maturity=1.0)
        discounted = np.exp(-merton_model.rate) * terminal.mean()
        assert discounted == pytest.approx(merton_model.spot, rel=5e-3)

    def test_paths_positive(self, merton_model):
        rng = PseudoRandomGenerator(seed=9)
        paths = merton_model.simulate_paths(rng, 1_000, np.linspace(0, 1, 13))
        assert np.all(paths > 0)

    def test_jumps_fatten_the_tails(self, bs_model, merton_model):
        rng_a = PseudoRandomGenerator(seed=10)
        rng_b = PseudoRandomGenerator(seed=10)
        bs_terminal = bs_model.sample_terminal(rng_a, 100_000, 1.0)
        merton_terminal = merton_model.sample_terminal(rng_b, 100_000, 1.0)
        bs_kurt = ((np.log(bs_terminal / 100.0) - np.log(bs_terminal / 100.0).mean()) ** 4).mean()
        m_kurt = ((np.log(merton_terminal / 100.0) - np.log(merton_terminal / 100.0).mean()) ** 4).mean()
        assert m_kurt > bs_kurt


class TestMultiAssetModel:
    def test_validation(self):
        with pytest.raises(PricingError):
            MultiAssetBlackScholesModel(spot=[100, 100], rate=0.05,
                                        volatilities=[0.2, -0.1])
        bad_corr = np.array([[1.0, 0.5], [0.4, 1.0]])  # not symmetric
        with pytest.raises(PricingError):
            MultiAssetBlackScholesModel(spot=[100, 100], rate=0.05,
                                        volatilities=0.2, correlation=bad_corr)

    def test_flat_correlation_bounds(self):
        with pytest.raises(PricingError):
            flat_correlation(5, -0.5)
        corr = flat_correlation(4, 0.3)
        assert np.allclose(np.diag(corr), 1.0)
        eigvals = np.linalg.eigvalsh(corr)
        assert eigvals.min() > 0

    def test_terminal_shape_and_martingale(self, basket_model):
        rng = PseudoRandomGenerator(seed=11)
        terminal = basket_model.sample_terminal(rng, 200_000, maturity=1.0)
        assert terminal.shape == (200_000, 5)
        discounted = np.exp(-basket_model.rate) * terminal.mean(axis=0)
        np.testing.assert_allclose(discounted, np.asarray(basket_model.spot), rtol=5e-3)

    def test_terminal_correlation_structure(self, basket_model):
        rng = PseudoRandomGenerator(seed=12)
        terminal = basket_model.sample_terminal(rng, 300_000, maturity=1.0)
        log_returns = np.log(terminal / np.asarray(basket_model.spot))
        empirical = np.corrcoef(log_returns.T)
        np.testing.assert_allclose(empirical, basket_model.correlation, atol=0.02)

    def test_paths_shape(self, basket_model):
        rng = PseudoRandomGenerator(seed=13)
        times = np.linspace(0, 1, 11)
        paths = basket_model.simulate_paths(rng, 100, times)
        assert paths.shape == (100, 11, 5)
        np.testing.assert_allclose(
            paths[:, 0, :], np.broadcast_to(np.asarray(basket_model.spot), (100, 5))
        )

    def test_basket_lognormal_proxy_moments(self, basket_model):
        weights = np.full(5, 0.2)
        forward, vol = basket_model.basket_lognormal_proxy(weights, 1.0)
        rng = PseudoRandomGenerator(seed=14)
        terminal = basket_model.sample_terminal(rng, 300_000, 1.0)
        basket = terminal @ weights
        assert basket.mean() == pytest.approx(forward, rel=5e-3)
        proxy_second_moment = forward**2 * np.exp(vol**2 * 1.0)
        assert (basket**2).mean() == pytest.approx(proxy_second_moment, rel=2e-2)

    def test_params_roundtrip(self, basket_model):
        clone = MultiAssetBlackScholesModel.from_params(basket_model.to_params())
        assert clone == basket_model


def test_model_registry_contains_all_models():
    expected = {
        "BlackScholes1D",
        "CEV1D",
        "LocalVolSmile1D",
        "Heston1D",
        "MertonJump1D",
        "BlackScholesND",
    }
    assert expected == set(MODEL_CLASSES)
    for name, cls in MODEL_CLASSES.items():
        assert cls.model_name == name


class TestModelHashMemoization:
    def test_hash_is_cached(self, bs_model):
        first = hash(bs_model)
        assert bs_model.__dict__["_hash_cache"] == first
        assert hash(bs_model) == first

    def test_equal_models_hash_equal(self):
        a = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)
        b = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)
        assert a == b
        assert hash(a) == hash(b)

    def test_param_digest_is_stable_and_cached(self, basket_model):
        digest = basket_model.param_digest()
        assert basket_model.param_digest() == digest
        rebuilt = MultiAssetBlackScholesModel.from_params(basket_model.to_params())
        assert rebuilt.param_digest() == digest

    def test_param_digest_differs_across_params(self):
        a = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)
        b = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.21)
        assert a.param_digest() != b.param_digest()


class TestStreamedTerminalFallback:
    """The generic DiffusionModel1D.sample_terminal Euler fallback."""

    def _model(self, skew=0.0, term=0.0):
        return SmileLocalVolModel(
            spot=100.0, rate=0.05, base_volatility=0.2, skew=skew, term=term
        )

    def test_shape_and_determinism(self):
        model = self._model(skew=0.3, term=0.1)
        a = model.sample_terminal(PseudoRandomGenerator(3), 2_000, 1.0)
        b = model.sample_terminal(PseudoRandomGenerator(3), 2_000, 1.0)
        assert a.shape == (2_000,)
        assert np.array_equal(a, b)
        assert np.all(a > 0)

    def test_martingale_property(self):
        # skew = term = 0 reduces to Black-Scholes: discounted terminal mean
        # must match the forward within Monte-Carlo error
        model = self._model()
        terminal = model.sample_terminal(PseudoRandomGenerator(11), 60_000, 1.0)
        forward = float(model.forward(1.0))
        assert np.mean(terminal) == pytest.approx(forward, rel=0.01)
