"""Tests of the product payoffs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.pricing import (
    AmericanBasketPut,
    AmericanCall,
    AmericanPut,
    AsianCall,
    AsianPut,
    BarrierOption,
    BasketCall,
    BasketPut,
    DigitalCall,
    DigitalPut,
    DownOutCall,
    EuropeanCall,
    EuropeanPut,
    UpOutPut,
)
from repro.pricing.products import PRODUCT_CLASSES


class TestVanilla:
    def test_call_payoff(self):
        call = EuropeanCall(strike=100.0, maturity=1.0)
        spots = np.array([80.0, 100.0, 130.0])
        np.testing.assert_allclose(call.terminal_payoff(spots), [0.0, 0.0, 30.0])

    def test_put_payoff(self):
        put = EuropeanPut(strike=100.0, maturity=1.0)
        spots = np.array([80.0, 100.0, 130.0])
        np.testing.assert_allclose(put.terminal_payoff(spots), [20.0, 0.0, 0.0])

    def test_digital_payoffs(self):
        spots = np.array([99.0, 101.0])
        np.testing.assert_allclose(
            DigitalCall(strike=100.0, maturity=1.0).terminal_payoff(spots), [0.0, 1.0]
        )
        np.testing.assert_allclose(
            DigitalPut(strike=100.0, maturity=1.0).terminal_payoff(spots), [1.0, 0.0]
        )

    def test_validation(self):
        with pytest.raises(PricingError):
            EuropeanCall(strike=-5.0, maturity=1.0)
        with pytest.raises(PricingError):
            EuropeanCall(strike=100.0, maturity=0.0)

    def test_equality_and_hash(self):
        a = EuropeanCall(strike=100.0, maturity=1.0)
        b = EuropeanCall(strike=100.0, maturity=1.0)
        c = EuropeanCall(strike=110.0, maturity=1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != EuropeanPut(strike=100.0, maturity=1.0)

    def test_params_roundtrip(self):
        call = EuropeanCall(strike=95.0, maturity=0.75)
        assert EuropeanCall.from_params(call.to_params()) == call


class TestBarrier:
    def test_down_out_path_payoff(self):
        option = DownOutCall(strike=100.0, maturity=1.0, barrier=90.0)
        paths = np.array(
            [
                [100.0, 95.0, 120.0],   # never touches the barrier -> vanilla
                [100.0, 89.0, 120.0],   # touches -> knocked out
                [100.0, 95.0, 80.0],    # ends below barrier -> knocked out
            ]
        )
        times = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(option.path_payoff(paths, times), [20.0, 0.0, 0.0])

    def test_down_in_is_complement_of_down_out(self):
        out = BarrierOption(strike=100, maturity=1.0, barrier=90, barrier_type="down-out")
        inn = BarrierOption(strike=100, maturity=1.0, barrier=90, barrier_type="down-in")
        paths = 100.0 * np.exp(np.cumsum(
            np.random.default_rng(0).normal(0, 0.05, size=(500, 12)), axis=1))
        paths = np.concatenate([np.full((500, 1), 100.0), paths], axis=1)
        times = np.linspace(0, 1, 13)
        total = out.path_payoff(paths, times) + inn.path_payoff(paths, times)
        vanilla = np.maximum(paths[:, -1] - 100.0, 0.0)
        np.testing.assert_allclose(total, vanilla)

    def test_rebate_paid_on_knock_out(self):
        option = BarrierOption(strike=100, maturity=1.0, barrier=90,
                               barrier_type="down-out", rebate=5.0)
        paths = np.array([[100.0, 85.0, 130.0]])
        assert option.path_payoff(paths, np.array([0.0, 0.5, 1.0]))[0] == 5.0

    def test_up_out_put(self):
        option = UpOutPut(strike=100.0, maturity=1.0, barrier=120.0)
        paths = np.array([[100.0, 110.0, 90.0], [100.0, 125.0, 90.0]])
        times = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(option.path_payoff(paths, times), [10.0, 0.0])

    def test_validation(self):
        with pytest.raises(PricingError):
            BarrierOption(strike=100, maturity=1.0, barrier=90, barrier_type="sideways-out")
        with pytest.raises(PricingError):
            BarrierOption(strike=100, maturity=1.0, barrier=90, payoff_type="straddle")
        with pytest.raises(PricingError):
            BarrierOption(strike=100, maturity=1.0, barrier=-2.0)
        with pytest.raises(PricingError):
            BarrierOption(strike=100, maturity=1.0, barrier=90, rebate=-1.0)

    def test_multi_asset_paths_rejected(self):
        option = DownOutCall(strike=100, maturity=1.0, barrier=90)
        with pytest.raises(PricingError):
            option.path_payoff(np.ones((10, 5, 3)), np.linspace(0, 1, 5))


class TestBasket:
    def test_basket_put_payoff(self):
        option = BasketPut(strike=100.0, maturity=1.0, weights=[0.5, 0.5])
        spots = np.array([[90.0, 90.0], [120.0, 100.0]])
        np.testing.assert_allclose(option.terminal_payoff(spots), [10.0, 0.0])

    def test_basket_call_payoff(self):
        option = BasketCall(strike=100.0, maturity=1.0, weights=[0.25] * 4)
        spots = np.array([[120.0, 120.0, 120.0, 120.0]])
        np.testing.assert_allclose(option.terminal_payoff(spots), [20.0])

    def test_dimension_mismatch(self):
        option = BasketPut(strike=100.0, maturity=1.0, weights=[0.5, 0.5])
        with pytest.raises(PricingError):
            option.terminal_payoff(np.ones((10, 3)))

    def test_weights_validation(self):
        with pytest.raises(PricingError):
            BasketPut(strike=100.0, maturity=1.0, weights=[])


class TestAsian:
    def test_average_excludes_valuation_date(self):
        option = AsianCall(strike=100.0, maturity=1.0, n_fixings=2)
        paths = np.array([[100.0, 110.0, 130.0]])
        times = np.array([0.0, 0.5, 1.0])
        # average of 110 and 130 = 120 -> payoff 20
        np.testing.assert_allclose(option.path_payoff(paths, times), [20.0])

    def test_put_variant(self):
        option = AsianPut(strike=100.0, maturity=1.0, n_fixings=2)
        paths = np.array([[100.0, 80.0, 90.0]])
        times = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(option.path_payoff(paths, times), [15.0])

    def test_validation(self):
        with pytest.raises(PricingError):
            AsianCall(strike=100.0, maturity=1.0, n_fixings=0)


class TestAmerican:
    def test_intrinsic_values(self):
        put = AmericanPut(strike=100.0, maturity=1.0)
        call = AmericanCall(strike=100.0, maturity=1.0)
        spots = np.array([80.0, 120.0])
        np.testing.assert_allclose(put.intrinsic_value(spots), [20.0, 0.0])
        np.testing.assert_allclose(call.intrinsic_value(spots), [0.0, 20.0])

    def test_exercise_style(self):
        assert AmericanPut(strike=100.0, maturity=1.0).exercise == "american"
        assert EuropeanPut(strike=100.0, maturity=1.0).exercise == "european"

    def test_basket_american(self):
        option = AmericanBasketPut(strike=100.0, maturity=1.0, weights=[1 / 3] * 3)
        spots = np.array([[60.0, 90.0, 90.0]])
        np.testing.assert_allclose(option.terminal_payoff(spots), [20.0])
        assert option.dimension == 3


def test_product_registry_names_are_consistent():
    for name, cls in PRODUCT_CLASSES.items():
        assert cls.option_name == name
    # the products named in the paper's example and portfolio are registered
    for required in ("PutAmer", "CallEuro", "CallDownOutEuro", "BasketPutEuro", "BasketPutAmer"):
        assert required in PRODUCT_CLASSES


# ---------------------------------------------------------------------------
# property-based payoff invariants
# ---------------------------------------------------------------------------

_spot_arrays = st.lists(
    st.floats(min_value=0.01, max_value=10_000.0), min_size=1, max_size=50
).map(lambda xs: np.asarray(xs))


@settings(max_examples=100, deadline=None)
@given(spots=_spot_arrays, strike=st.floats(min_value=1.0, max_value=500.0))
def test_payoffs_are_nonnegative(spots, strike):
    for product in (
        EuropeanCall(strike=strike, maturity=1.0),
        EuropeanPut(strike=strike, maturity=1.0),
        DigitalCall(strike=strike, maturity=1.0),
        AmericanPut(strike=strike, maturity=1.0),
    ):
        assert np.all(product.terminal_payoff(spots) >= 0.0)


@settings(max_examples=100, deadline=None)
@given(spots=_spot_arrays, strike=st.floats(min_value=1.0, max_value=500.0))
def test_call_put_payoff_identity(spots, strike):
    call = EuropeanCall(strike=strike, maturity=1.0).terminal_payoff(spots)
    put = EuropeanPut(strike=strike, maturity=1.0).terminal_payoff(spots)
    np.testing.assert_allclose(call - put, spots - strike, rtol=1e-12, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(
    strike=st.floats(min_value=50.0, max_value=150.0),
    barrier=st.floats(min_value=10.0, max_value=99.0),
    n_steps=st.integers(min_value=2, max_value=20),
)
def test_barrier_knock_out_never_exceeds_vanilla_payoff(strike, barrier, n_steps):
    rng = np.random.default_rng(0)
    paths = 100.0 * np.exp(
        np.concatenate(
            [np.zeros((20, 1)), np.cumsum(rng.normal(0, 0.1, size=(20, n_steps)), axis=1)],
            axis=1,
        )
    )
    times = np.linspace(0, 1, n_steps + 1)
    option = DownOutCall(strike=strike, maturity=1.0, barrier=barrier)
    vanilla = np.maximum(paths[:, -1] - strike, 0.0)
    assert np.all(option.path_payoff(paths, times) <= vanilla + 1e-12)
