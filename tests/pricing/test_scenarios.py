"""Tests of the CRN scenario-grid engine (:mod:`repro.pricing.scenarios`).

Two families:

* **differential** -- the batched grid must reproduce the serial
  bump-and-revalue oracle *bit for bit* on base prices, and the assembled
  finite-difference Greeks must match across the antithetic and Sobol
  axes (the CRN cohorts replay the very same seeded draws, so there is no
  tolerance to hide behind);
* **properties** -- scenario expansion is a row-major partition of the
  (problems x scenarios) grid, and cell coordinates round-trip from the
  flat list back to (problem, scenario).

Uses ``hypothesis`` when installed; otherwise a seeded random sweep
exercises the same properties.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import PricingError
from repro.pricing import PricingProblem, compute_greeks
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.scenarios import (
    VOL_PARAM,
    Scenario,
    ScenarioCell,
    apply_scenario,
    collect_cell_prices,
    expand_scenarios,
    greek_ladder,
    greeks_from_prices,
    historical_scenarios,
    price_scenarios,
    shock_scenarios,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False


def _mc_problem(
    strike: float = 100.0,
    *,
    seed: int = 0,
    n_paths: int = 20_000,
    antithetic: bool = True,
    rng_kind: str = "pcg64",
    maturity: float = 1.0,
    label: str | None = None,
) -> PricingProblem:
    problem = PricingProblem(label=label or f"call_K{strike:g}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.045, volatility=0.22)
    problem.set_option("CallEuro", strike=strike, maturity=maturity)
    problem.set_method(
        "MC_European",
        n_paths=n_paths,
        seed=seed,
        antithetic=antithetic,
        rng_kind=rng_kind,
    )
    return problem


def _cf_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"cf_K{strike:g}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.045, volatility=0.22)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


class TestDifferentialGreeks:
    """Batched CRN ladder == serial bump-and-revalue oracle, bit for bit."""

    @pytest.mark.parametrize("antithetic", [True, False])
    @pytest.mark.parametrize("rng_kind", ["pcg64", "sobol"])
    def test_batched_matches_serial_oracle(self, antithetic, rng_kind):
        problem = _mc_problem(
            105.0, seed=11, n_paths=16_000, antithetic=antithetic, rng_kind=rng_kind
        )
        serial = compute_greeks(
            problem.model, problem.product, problem.method, engine="serial"
        )
        batched = compute_greeks(
            problem.model, problem.product, problem.method, engine="batched"
        )
        assert batched.price == serial.price  # base draws are literally shared
        assert batched.delta == serial.delta
        assert batched.gamma == serial.gamma
        assert batched.vega == serial.vega
        assert batched.rho == serial.rho
        assert batched.theta == serial.theta

    def test_ladder_prices_match_solo_pricing(self):
        problem = _mc_problem(95.0, seed=3)
        grid = price_scenarios([problem], greek_ladder())[0]
        # every cell equals pricing its bumped problem on its own: CRN comes
        # from shared draw cohorts, not from changing the estimates
        for scenario in greek_ladder():
            solo = apply_scenario(problem, scenario).compute().price
            assert grid[scenario.name] == solo

    def test_closed_form_grid_safe(self):
        grid = price_scenarios([_cf_problem()], greek_ladder())[0]
        report = greeks_from_prices(
            _cf_problem().model, _cf_problem().product, grid
        )
        serial = compute_greeks(
            _cf_problem().model, _cf_problem().product,
            _cf_problem().method, engine="serial",
        )
        assert report.price == serial.price
        assert report.delta == serial.delta
        assert report.theta == serial.theta

    def test_multi_position_grid_matches_per_position(self):
        problems = [_mc_problem(k, seed=5, n_paths=8_000) for k in (90.0, 100.0, 110.0)]
        grids = price_scenarios(problems, greek_ladder())
        for problem, grid in zip(problems, grids):
            solo = price_scenarios([problem], greek_ladder())[0]
            assert grid == solo


class TestThetaRegression:
    """GreekReport.theta: maturity-bump theta in both engines."""

    @pytest.mark.parametrize("engine", ["serial", "batched"])
    def test_long_call_theta_negative(self, engine):
        problem = _mc_problem(100.0, seed=7)
        report = compute_greeks(
            problem.model, problem.product, problem.method, engine=engine
        )
        assert report.theta is not None
        assert report.theta < 0.0  # a long vanilla call loses value with time

    def test_theta_close_to_closed_form(self):
        from repro.pricing import ClosedFormCall, EuropeanCall, analytics

        model = BlackScholesModel(spot=100.0, rate=0.045, volatility=0.22)
        report = compute_greeks(
            model, EuropeanCall(strike=100.0, maturity=1.0), ClosedFormCall(),
            theta_bump=1e-5,
        )
        s, k, r, sigma, t = 100.0, 100.0, 0.045, 0.22, 1.0
        exact = float(analytics.bs_call_theta(s, k, r, sigma, t))
        assert report.theta == pytest.approx(exact, rel=1e-3)

    def test_theta_step_clamped_near_expiry(self):
        # a product one hour from expiry cannot be rolled a whole day down
        problem = _mc_problem(100.0, maturity=1.0 / (365.0 * 24.0))
        report = compute_greeks(
            problem.model, problem.product, problem.method, engine="batched"
        )
        assert report.theta is not None  # clamped step keeps maturity positive

    def test_theta_can_be_skipped(self):
        problem = _cf_problem()
        report = compute_greeks(
            problem.model, problem.product, problem.method, compute_theta=False
        )
        assert report.theta is None
        assert report.as_dict()["theta"] is None


class TestScenarioValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(PricingError):
            Scenario(name="")

    def test_unknown_target_rejected(self):
        with pytest.raises(PricingError):
            Scenario(name="x", target="quantum")

    def test_model_scenario_needs_param(self):
        with pytest.raises(PricingError):
            Scenario(name="x", target="model")

    def test_maturity_scenario_needs_positive_step(self):
        with pytest.raises(PricingError):
            Scenario(name="x", target="maturity", bump=0.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(PricingError):
            expand_scenarios(
                [_cf_problem()], [Scenario(name="a"), Scenario(name="a")]
            )

    def test_unknown_on_missing_rejected(self):
        with pytest.raises(PricingError):
            expand_scenarios([_cf_problem()], [Scenario(name="base")], on_missing="drop")

    def test_unresolvable_vol_param_raises(self):
        scenario = Scenario(name="v", target="model", param=VOL_PARAM, bump=0.01)
        problem = _cf_problem()
        bumped = apply_scenario(problem, scenario)  # BS model resolves fine
        assert bumped is not problem

    def test_base_scenario_returns_original_instance(self):
        problem = _cf_problem()
        assert apply_scenario(problem, Scenario(name="base")) is problem


class TestStandardSets:
    def test_greek_ladder_names(self):
        names = [s.name for s in greek_ladder()]
        assert names == ["base", "spot_up", "spot_down", "vol_up", "vol_down",
                         "rate_up", "rate_down", "theta_down"]

    def test_greek_ladder_trims(self):
        names = [s.name for s in greek_ladder(compute_vega=False, compute_rho=False,
                                              compute_theta=False)]
        assert names == ["base", "spot_up", "spot_down"]

    def test_shock_scenarios_keep_duplicate_bumps_distinct(self):
        scenarios = shock_scenarios([-0.1, 0.0, 0.1, 0.1])
        assert len({s.name for s in scenarios}) == 4

    def test_historical_scenarios_lead_with_base(self):
        scenarios = historical_scenarios([0.01, -0.02])
        assert scenarios[0].name == "base"
        assert len(scenarios) == 3


# -- expansion properties ---------------------------------------------------------

_SCENARIO_POOL = (
    Scenario(name="base"),
    Scenario(name="su", target="model", param="spot", bump=0.01, relative=True),
    Scenario(name="sd", target="model", param="spot", bump=-0.01, relative=True),
    Scenario(name="vu", target="model", param=VOL_PARAM, bump=0.01),
    Scenario(name="ru", target="model", param="rate", bump=1e-4),
    Scenario(name="td", target="maturity", bump=1.0 / 365.0),
    Scenario(name="bad", target="model", param="skewness", bump=0.1),
)


def _check_expansion(n_problems: int, scenario_picks: list[int], on_missing: str):
    problems = [_cf_problem(90.0 + i) for i in range(n_problems)]
    scenarios = [_SCENARIO_POOL[p] for p in sorted(set(scenario_picks))]
    has_bad = any(s.name == "bad" for s in scenarios)
    if has_bad and on_missing == "raise" and n_problems:  # no problems, no cells
        with pytest.raises(PricingError):
            expand_scenarios(problems, scenarios, on_missing=on_missing)
        return
    expanded, cells = expand_scenarios(problems, scenarios, on_missing=on_missing)
    assert len(expanded) == len(cells)

    # partition: every realisable (problem, scenario) cell appears exactly once
    seen = {(cell.problem_index, cell.scenario_index) for cell in cells}
    assert len(seen) == len(cells)
    expected = {
        (i, j)
        for i in range(n_problems)
        for j, scenario in enumerate(scenarios)
        if not (scenario.name == "bad" and on_missing == "skip")
    }
    assert seen == expected

    # row-major: cells sort identically to their flat emission order
    assert cells == sorted(cells, key=lambda c: (c.problem_index, c.scenario_index))

    # round-trip: each flat problem is its coordinates' scenario applied to
    # its coordinates' input (modulo the on_missing="base" fallback)
    for flat, cell in zip(expanded, cells):
        scenario = scenarios[cell.scenario_index]
        source = problems[cell.problem_index]
        if scenario.name == "bad":
            assert flat is source  # on_missing="base" priced the unbumped problem
        elif scenario.target == "base":
            assert flat is source
        else:
            assert flat.label == f"{source.label}|{scenario.name}"

    # collect_cell_prices inverts the flattening
    grid = collect_cell_prices(
        [float(i) for i in range(len(cells))], cells, scenarios, n_problems
    )
    for flat_index, cell in enumerate(cells):
        name = scenarios[cell.scenario_index].name
        assert grid[cell.problem_index][name] == float(flat_index)


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        n_problems=st.integers(min_value=0, max_value=5),
        scenario_picks=st.lists(
            st.integers(min_value=0, max_value=len(_SCENARIO_POOL) - 1),
            min_size=1, max_size=len(_SCENARIO_POOL),
        ),
        on_missing=st.sampled_from(["raise", "skip", "base"]),
    )
    def test_expansion_properties(n_problems, scenario_picks, on_missing):
        _check_expansion(n_problems, scenario_picks, on_missing)

else:  # pragma: no cover - exercised only without hypothesis

    def test_expansion_properties():
        rng = random.Random(2026)
        for _ in range(60):
            _check_expansion(
                rng.randrange(6),
                [rng.randrange(len(_SCENARIO_POOL)) for _ in range(rng.randrange(1, 8))],
                rng.choice(["raise", "skip", "base"]),
            )


class TestCollectValidation:
    def test_price_count_must_match_cells(self):
        with pytest.raises(PricingError):
            collect_cell_prices([1.0], [], [Scenario(name="base")], 1)

    def test_missing_scenarios_assemble_to_none(self):
        model = BlackScholesModel(spot=100.0, rate=0.045, volatility=0.22)
        from repro.pricing import EuropeanCall

        product = EuropeanCall(strike=100.0, maturity=1.0)
        report = greeks_from_prices(
            model, product, {"base": 10.0, "spot_up": 10.6, "spot_down": 9.4}
        )
        assert report.vega is None
        assert report.rho is None
        assert report.theta is None
        assert report.delta == pytest.approx((10.6 - 9.4) / 2.0)
