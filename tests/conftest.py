"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pricing import (
    BlackScholesModel,
    EuropeanCall,
    EuropeanPut,
    HestonModel,
    MertonJumpModel,
    MultiAssetBlackScholesModel,
    PricingProblem,
    flat_correlation,
)


@pytest.fixture
def bs_model() -> BlackScholesModel:
    """The canonical Black-Scholes test model (S=100, r=5%, sigma=20%)."""
    return BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)


@pytest.fixture
def bs_model_dividend() -> BlackScholesModel:
    return BlackScholesModel(spot=100.0, rate=0.05, volatility=0.25, dividend=0.03)


@pytest.fixture
def heston_model() -> HestonModel:
    return HestonModel(
        spot=100.0, rate=0.03, v0=0.04, kappa=2.0, theta=0.04, sigma_v=0.4, rho=-0.7
    )


@pytest.fixture
def merton_model() -> MertonJumpModel:
    return MertonJumpModel(
        spot=100.0, rate=0.05, volatility=0.2,
        jump_intensity=0.5, jump_mean=-0.1, jump_std=0.2,
    )


@pytest.fixture
def basket_model() -> MultiAssetBlackScholesModel:
    return MultiAssetBlackScholesModel(
        spot=[100.0] * 5,
        rate=0.05,
        volatilities=[0.2, 0.22, 0.18, 0.25, 0.21],
        correlation=flat_correlation(5, 0.4),
    )


@pytest.fixture
def atm_call() -> EuropeanCall:
    return EuropeanCall(strike=100.0, maturity=1.0)


@pytest.fixture
def atm_put() -> EuropeanPut:
    return EuropeanPut(strike=100.0, maturity=1.0)


@pytest.fixture
def simple_problem() -> PricingProblem:
    """A fully specified closed-form Black-Scholes call problem."""
    problem = PricingProblem(label="fixture_call")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=100.0, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
