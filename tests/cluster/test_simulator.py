"""Tests of the discrete-event simulated cluster backend."""

from __future__ import annotations

import pytest

from repro.cluster.backends.base import Job
from repro.cluster.simcluster import ClusterSpec, CommunicationModel, SimulatedClusterBackend
from repro.errors import ClusterError
from repro.pricing import PricingProblem


def _jobs(costs, size=500):
    return [
        Job(job_id=i, path=f"/virtual/p{i}.pb", file_size=size, compute_cost=c,
            category="test")
        for i, c in enumerate(costs)
    ]


def _run_robin_hood(backend, jobs):
    """Minimal Robin-Hood loop used to drive the backend directly."""
    queue = list(jobs)
    in_flight = 0
    for worker in range(min(backend.n_workers, len(queue))):
        backend.dispatch(worker, queue.pop(0))
        in_flight += 1
    completed = []
    while queue:
        done = backend.collect()
        completed.append(done)
        backend.dispatch(done.worker_id, queue.pop(0))
    for _ in range(in_flight):
        completed.append(backend.collect())
    return completed


class TestSimulatedBackendBasics:
    def test_every_job_runs_exactly_once(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(3))
        jobs = _jobs([0.1] * 20)
        completed = _run_robin_hood(backend, jobs)
        stats = backend.finalize()
        assert sorted(c.job_id for c in completed) == list(range(20))
        assert stats.n_jobs == 20
        assert stats.total_time > 0

    def test_does_not_require_payload(self):
        assert SimulatedClusterBackend(ClusterSpec.homogeneous(1)).requires_payload is False

    def test_virtual_time_is_machine_independent(self):
        """Two identical simulations give bit-identical makespans."""
        times = []
        for _ in range(2):
            backend = SimulatedClusterBackend(ClusterSpec.homogeneous(4))
            _run_robin_hood(backend, _jobs([0.05, 0.2, 0.01, 0.4] * 10))
            times.append(backend.finalize().total_time)
        assert times[0] == times[1]

    def test_collect_without_dispatch(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(1))
        with pytest.raises(ClusterError):
            backend.collect()

    def test_invalid_worker(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(2))
        with pytest.raises(ClusterError):
            backend.dispatch(5, _jobs([0.1])[0])

    def test_finalize_with_inflight_jobs_rejected(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(1))
        backend.dispatch(0, _jobs([0.1])[0])
        with pytest.raises(ClusterError):
            backend.finalize()

    def test_traces_are_consistent(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(2))
        _run_robin_hood(backend, _jobs([0.1, 0.2, 0.3, 0.4]))
        backend.finalize()
        for trace in backend.traces:
            assert trace.dispatched_at <= trace.worker_start < trace.worker_done
            assert trace.worker_done <= trace.collected_at

    def test_send_stop_advances_master_clock(self):
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(2))
        before = backend.virtual_time
        backend.send_stop(0)
        assert backend.virtual_time > before
        with pytest.raises(ClusterError):
            backend.send_stop(9)


class TestSimulatedTiming:
    def test_single_worker_time_is_sum_of_costs_plus_overheads(self):
        costs = [0.5, 0.25, 1.0]
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(1))
        _run_robin_hood(backend, _jobs(costs))
        total = backend.finalize().total_time
        assert total >= sum(costs)
        assert total == pytest.approx(sum(costs), rel=0.05)

    def test_compute_bound_workload_scales_linearly(self):
        jobs = _jobs([0.5] * 64)
        times = {}
        for n_workers in (1, 2, 4, 8):
            backend = SimulatedClusterBackend(ClusterSpec.homogeneous(n_workers))
            _run_robin_hood(backend, jobs)
            times[n_workers] = backend.finalize().total_time
        assert times[2] == pytest.approx(times[1] / 2, rel=0.05)
        assert times[8] == pytest.approx(times[1] / 8, rel=0.10)

    def test_cheap_jobs_saturate_at_the_master(self):
        """When jobs are almost free, adding workers stops helping (Table II)."""
        jobs = _jobs([1e-4] * 2000)
        times = {}
        for n_workers in (1, 4, 16, 64):
            backend = SimulatedClusterBackend(ClusterSpec.homogeneous(n_workers),
                                              strategy="full_load")
            _run_robin_hood(backend, jobs)
            times[n_workers] = backend.finalize().total_time
        assert times[4] < times[1]
        # beyond a few workers the master-bound floor dominates
        assert times[64] == pytest.approx(times[16], rel=0.10)

    def test_makespan_bounded_below_by_longest_job(self):
        jobs = _jobs([0.01] * 50 + [5.0])
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(32))
        _run_robin_hood(backend, jobs)
        total = backend.finalize().total_time
        assert total >= 5.0
        assert total < 5.5

    def test_slower_workers_take_longer(self):
        jobs = _jobs([0.2] * 20)
        fast = SimulatedClusterBackend(ClusterSpec.homogeneous(4, speed=2.0))
        slow = SimulatedClusterBackend(ClusterSpec.homogeneous(4, speed=0.5))
        _run_robin_hood(fast, jobs)
        _run_robin_hood(slow, jobs)
        assert slow.finalize().total_time > fast.finalize().total_time

    def test_strategy_costs_visible_for_cheap_jobs(self):
        """serialized load beats full load, as in every row of Table II."""
        jobs = _jobs([1e-4] * 1000)
        results = {}
        for strategy in ("full_load", "serialized_load"):
            backend = SimulatedClusterBackend(
                ClusterSpec.homogeneous(8), strategy=strategy
            )
            _run_robin_hood(backend, jobs)
            results[strategy] = backend.finalize().total_time
        assert results["serialized_load"] < results["full_load"]

    def test_nfs_cache_effect_between_runs(self):
        """Re-running the same portfolio against the same NFS server is faster
        (the Table II artefact the paper discusses)."""
        jobs = _jobs([1e-4] * 500)
        comm = CommunicationModel()
        first = SimulatedClusterBackend(ClusterSpec.homogeneous(2), strategy="nfs", comm=comm)
        _run_robin_hood(first, jobs)
        cold_time = first.finalize().total_time
        second = SimulatedClusterBackend(ClusterSpec.homogeneous(2), strategy="nfs", comm=comm)
        _run_robin_hood(second, jobs)
        warm_time = second.finalize().total_time
        assert warm_time < cold_time

    def test_dispatch_batch_reduces_latency_cost(self):
        jobs = _jobs([1e-3] * 200)
        single = SimulatedClusterBackend(ClusterSpec.homogeneous(2))
        _run_robin_hood(single, jobs)
        single_time = single.finalize().total_time

        batched = SimulatedClusterBackend(ClusterSpec.homogeneous(2))
        # send chunks of 20 jobs per worker alternately
        chunk = 20
        pending = 0
        for start in range(0, len(jobs), chunk):
            batched.dispatch_batch((start // chunk) % 2, jobs[start : start + chunk])
            pending += min(chunk, len(jobs) - start)
        for _ in range(pending):
            batched.collect()
        batched_time = batched.finalize().total_time
        assert batched_time < single_time


class TestSimulatedExecution:
    def test_execute_mode_produces_real_prices(self):
        problem = PricingProblem(label="exec")
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        problem.set_option("CallEuro", strike=100.0, maturity=1.0)
        problem.set_method("CF_Call")
        job = Job(job_id=0, path="", file_size=400, compute_cost=1e-3, problem=problem)
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(1), execute=True)
        backend.dispatch(0, job)
        done = backend.collect()
        backend.finalize()
        assert done.error is None
        assert done.result["price"] == pytest.approx(10.450584, abs=1e-6)

    def test_execute_mode_without_problem_or_file_fails(self):
        from repro.errors import SimulationError

        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(1), execute=True)
        with pytest.raises(SimulationError):
            backend.dispatch(0, Job(job_id=0, path="", file_size=10, compute_cost=1e-3))
