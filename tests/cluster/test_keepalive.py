"""Tests of the v3 PING/PONG keepalive (worker probes, backend pings).

Satellite of the serving work: a long-lived daemon sits idle between
campaigns, so dead TCP workers must be detectable *between* runs -- either
with a throwaway probe connection (:func:`probe_worker`, what the daemon's
monitor uses) or on a live backend's existing connections
(:meth:`RemoteBackend.ping_workers`).
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cluster.backends import create_backend
from repro.cluster.worker import probe_worker, spawn_local_workers
from repro.errors import ClusterError
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_PING,
    FRAME_PONG,
    FrameAssembler,
    encode_frame,
)
from repro.serial import xdr


class TestProbeWorker:
    def test_live_worker_answers(self):
        with spawn_local_workers(1) as pool:
            assert probe_worker(pool.hosts[0], timeout=10.0) is True
            # the probe's STOP returns the worker to accept(); it still serves
            assert probe_worker(pool.hosts[0], timeout=10.0) is True

    def test_dead_worker_fails_fast(self):
        with spawn_local_workers(1) as pool:
            host = pool.hosts[0]
            pool.kill(0)
        assert probe_worker(host, timeout=2.0) is False

    def test_nothing_listening_is_false_not_raise(self):
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            port = placeholder.getsockname()[1]
        assert probe_worker(f"127.0.0.1:{port}", timeout=1.0) is False

    def test_wrong_greeting_is_false(self):
        # a listener that greets with garbage instead of a worker HELLO
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def imposter():
            conn, _ = server.accept()
            conn.sendall(encode_frame(FRAME_PONG, b"not-a-greeting"))
            conn.close()

        thread = threading.Thread(target=imposter, daemon=True)
        thread.start()
        try:
            assert probe_worker(f"127.0.0.1:{port}", timeout=2.0) is False
        finally:
            thread.join(timeout=5.0)
            server.close()

    def test_worker_echoes_ping_payload_verbatim(self):
        # drive the PING frame by hand to pin the echo contract
        with spawn_local_workers(1) as pool:
            host, port = pool.hosts[0].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10.0) as sock:
                assembler = FrameAssembler()

                def next_frame():
                    while True:
                        frame = assembler.pop()
                        if frame is not None:
                            return frame
                        assembler.feed(sock.recv(4096))

                kind, payload = next_frame()
                assert kind == FRAME_HELLO
                assert xdr.decode(payload)["role"] == "repro-worker"

                token = b"\x00\xffkeepalive-token"
                sock.sendall(encode_frame(FRAME_PING, token))
                kind, payload = next_frame()
                assert kind == FRAME_PONG
                assert payload == token


class TestBackendPingWorkers:
    def test_all_live(self):
        with spawn_local_workers(2) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            try:
                liveness = backend.ping_workers(timeout=10.0)
                assert liveness == {host: True for host in pool.hosts}
            finally:
                backend.finalize()

    def test_dead_worker_detected_and_marked(self):
        with spawn_local_workers(2) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            try:
                pool.kill(1)
                liveness = backend.ping_workers(timeout=5.0)
                assert liveness[pool.hosts[0]] is True
                assert liveness[pool.hosts[1]] is False
                # a second ping round only talks to the survivor
                assert backend.ping_workers(timeout=5.0)[pool.hosts[0]] is True
            finally:
                backend.finalize()

    def test_finalized_backend_refuses(self):
        with spawn_local_workers(1) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            backend.finalize()
            with pytest.raises(ClusterError):
                backend.ping_workers()
