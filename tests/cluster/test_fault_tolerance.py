"""Elastic-cluster fault tolerance: reconnects, liveness burials, the
authenticated handshake, attach/detach, and the session retry layer.

The acceptance shape throughout: a campaign that loses workers mid-run must
either finish bit-identical to an undisturbed run (when the elasticity
machinery can save it) or fail loudly with a resubmittable
:class:`~repro.errors.WorkerLostError` (when it cannot).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.api import BackendSpec, ValuationSession
from repro.api.config import RetryPolicy, RunConfig
from repro.cluster.backends import Job, PAYLOAD_SERIAL, PreparedMessage
from repro.cluster.backends.execution import execute_payload
from repro.cluster.backends.remote import ReconnectPolicy, RemoteBackend
from repro.cluster.worker import spawn_local_workers
from repro.core.portfolio import Portfolio, Position
from repro.errors import (
    ClusterError,
    CollectTimeoutError,
    ValuationError,
    WorkerLostError,
)
from repro.pricing import PricingProblem
from repro.serial import serialize, xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_STOP,
    FrameAssembler,
    encode_frame,
)


def _make_problem(strike: float = 100.0, method: str = "CF_Call", **params) -> PricingProblem:
    problem = PricingProblem(label=f"fault_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method(method, **params)
    return problem


def _dispatch(backend: RemoteBackend, worker_id: int, job_id: int, problem) -> None:
    data = serialize(problem).to_bytes()
    backend.dispatch(
        worker_id,
        Job(job_id=job_id, path="", file_size=len(data), compute_cost=1e-3),
        PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data)),
    )


def _collect_sorted(backend: RemoteBackend, n: int, timeout: float = 60.0):
    return sorted(
        (backend.collect(timeout=timeout) for _ in range(n)),
        key=lambda done: done.job_id,
    )


class _MuteWorker:
    """Greets like a repro-worker, then swallows every frame in silence.

    The deterministic way to keep jobs *in flight*: real workers answer
    closed-form jobs faster than a test can kill them.
    """

    def __init__(self):
        self._server = socket.create_server(("127.0.0.1", 0))
        self.address = f"127.0.0.1:{self._server.getsockname()[1]}"
        self._release = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._server.accept()
        except OSError:
            return
        with conn:
            conn.sendall(
                encode_frame(FRAME_HELLO, xdr.encode({"role": "repro-worker"}))
            )
            self._release.wait(60.0)

    def drop(self) -> None:
        """Close the connection, jobs still unanswered (a crash, seen from
        the master)."""
        self._release.set()

    def close(self) -> None:
        self._release.set()
        self._server.close()
        self._thread.join(timeout=5.0)


class _FakeV3Worker:
    """A single-connection worker frozen at protocol v3: no nonce in its
    hello, no challenge/response support -- but it prices jobs correctly."""

    def __init__(self):
        self._server = socket.create_server(("127.0.0.1", 0))
        self.address = f"127.0.0.1:{self._server.getsockname()[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        try:
            conn, _ = self._server.accept()
        except OSError:
            return
        with conn:
            conn.sendall(
                encode_frame(
                    FRAME_HELLO,
                    xdr.encode({"role": "repro-worker", "pid": 0, "version": 3}),
                    version=3,
                )
            )
            assembler = FrameAssembler()
            while True:
                try:
                    data = conn.recv(65536)
                except OSError:
                    return
                if not data:
                    return
                assembler.feed(data)
                for kind, payload in assembler:
                    if kind == FRAME_STOP:
                        return
                    if kind == FRAME_PING:
                        conn.sendall(encode_frame(FRAME_PONG, payload, version=3))
                    elif kind == FRAME_JOB:
                        entry = xdr.decode(payload)
                        result, elapsed, error = execute_payload(
                            entry["kind"], entry["payload"]
                        )
                        conn.sendall(
                            encode_frame(
                                FRAME_RESULT,
                                xdr.encode(
                                    {
                                        "job_id": entry["job_id"],
                                        "result": result,
                                        "elapsed": elapsed,
                                        "error": error,
                                    }
                                ),
                                version=3,
                            )
                        )

    def close(self) -> None:
        self._server.close()
        self._thread.join(timeout=5.0)


class TestReconnectPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = ReconnectPolicy(
            max_attempts=6, initial_backoff=0.1, backoff_factor=2.0, max_backoff=0.5
        )
        assert policy.backoff(1) == 0.1
        assert policy.backoff(2) == 0.2
        assert policy.backoff(3) == 0.4
        assert policy.backoff(4) == 0.5  # capped
        assert policy.backoff(10) == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(initial_backoff=-0.1),
            dict(backoff_factor=0.9),
            dict(initial_backoff=1.0, max_backoff=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ClusterError):
            ReconnectPolicy(**kwargs)


class TestKillAndRestart:
    def test_campaign_survives_a_worker_restart(self):
        """The acceptance e2e: the only worker is hard-killed mid-campaign
        and restarted on the same port; the reconnect policy finishes the
        run bit-identical, with no WorkerLostError and >= 1 reconnect."""
        problems = [_make_problem(80.0 + 5 * k) for k in range(6)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            backend = RemoteBackend(
                pool.hosts,
                reconnect=ReconnectPolicy(
                    max_attempts=30, initial_backoff=0.1, max_backoff=0.5
                ),
            )
            for index in range(2):
                _dispatch(backend, 0, index, problems[index])
            first = _collect_sorted(backend, 2)
            assert [done.error for done in first] == [None, None]

            pool.kill(0)
            reviver = threading.Thread(
                target=lambda: (time.sleep(0.6), pool.restart(0)), daemon=True
            )
            reviver.start()
            # dispatched into the dead pool: the backend parks/redials and
            # completes once the worker is back on its original port
            for index in range(2, 6):
                _dispatch(backend, 0, index, problems[index])
            rest = _collect_sorted(backend, 4)
            stats = backend.finalize()
            reviver.join(timeout=10.0)

            collected = first + rest
            assert [done.job_id for done in collected] == list(range(6))
            assert [done.error for done in collected] == [None] * 6
            assert [done.result["price"] for done in collected] == reference
            assert stats.extra["reconnects"] >= 1
            assert backend.reconnects >= 1


class TestCascadingFailures:
    def test_survivors_absorb_orphans_until_the_pool_is_gone(self):
        """Kill workers one at a time: orphans redispatch to survivors; only
        the last death surfaces WorkerLostError, whose job_ids resubmit
        bit-identical on a fresh pool."""
        problems = [_make_problem(80.0 + 5 * k) for k in range(6)]
        reference = [p.compute().price for p in problems]
        mutes = [_MuteWorker() for _ in range(3)]
        try:
            backend = RemoteBackend([m.address for m in mutes], connect_timeout=5.0)
            for index, problem in enumerate(problems):
                _dispatch(backend, index % 3, index, problem)

            mutes[0].drop()  # first death: orphans move to the survivors...
            with pytest.raises(CollectTimeoutError):
                backend.collect(timeout=0.5)
            assert backend.redispatches >= 2  # ...which hold them, silently

            mutes[1].drop()
            mutes[2].drop()  # last survivor gone: now the run is lost
            with pytest.raises(WorkerLostError) as excinfo:
                backend.collect(timeout=10.0)
            backend.finalize()
            assert set(excinfo.value.job_ids) == set(range(6))
        finally:
            for mute in mutes:
                mute.close()

        # the error is retryable by construction: resubmit exactly job_ids
        with spawn_local_workers(2) as pool:
            fresh = RemoteBackend(pool.hosts)
            for job_id in sorted(excinfo.value.job_ids):
                _dispatch(fresh, job_id % 2, job_id, problems[job_id])
            collected = _collect_sorted(fresh, len(excinfo.value.job_ids))
            fresh.finalize()
            assert [done.error for done in collected] == [None] * 6
            assert [done.result["price"] for done in collected] == reference

    def test_ping_buries_a_busy_silent_worker_and_redispatches(self):
        """ping_workers() must treat a silent worker *with jobs in flight*
        as dead: its orphans redispatch and the campaign completes."""
        mute = _MuteWorker()
        try:
            with spawn_local_workers(1) as pool:
                backend = RemoteBackend([mute.address, pool.hosts[0]])
                problems = [_make_problem(90.0 + 10 * k) for k in range(3)]
                _dispatch(backend, 0, 0, problems[0])  # into the silent worker
                _dispatch(backend, 0, 1, problems[1])
                _dispatch(backend, 1, 2, problems[2])  # into the live worker
                first = backend.collect(timeout=30.0)
                assert first.job_id == 2

                alive = backend.ping_workers(timeout=0.5)
                assert alive == {mute.address: False, pool.hosts[0]: True}

                rescued = _collect_sorted(backend, 2, timeout=30.0)
                stats = backend.finalize()
                assert [done.job_id for done in rescued] == [0, 1]
                assert [done.error for done in rescued] == [None, None]
                assert [done.result["price"] for done in rescued] == [
                    problems[0].compute().price,
                    problems[1].compute().price,
                ]
                assert stats.extra["redispatches"] >= 2
        finally:
            mute.close()

    def test_liveness_timeout_buries_mid_campaign(self):
        """With liveness_timeout set, collect() itself notices the wedged
        worker -- no explicit ping call anywhere."""
        mute = _MuteWorker()
        try:
            with spawn_local_workers(1) as pool:
                backend = RemoteBackend(
                    [mute.address, pool.hosts[0]], liveness_timeout=0.4
                )
                problems = [_make_problem(95.0), _make_problem(105.0)]
                _dispatch(backend, 0, 0, problems[0])  # wedged worker
                _dispatch(backend, 1, 1, problems[1])
                collected = _collect_sorted(backend, 2, timeout=30.0)
                stats = backend.finalize()
                assert [done.job_id for done in collected] == [0, 1]
                assert [done.error for done in collected] == [None, None]
                assert stats.extra["liveness_buried"] >= 1
        finally:
            mute.close()


class TestAttachDetach:
    def test_pool_grows_and_shrinks_mid_run(self):
        problems = [_make_problem(85.0 + 10 * k) for k in range(3)]
        with spawn_local_workers(2) as pool:
            backend = RemoteBackend([pool.hosts[0]])
            assert backend.n_workers == 1

            new_id = backend.attach_host(pool.hosts[1])
            assert (new_id, backend.n_workers) == (1, 2)
            _dispatch(backend, new_id, 0, problems[0])
            done = backend.collect(timeout=30.0)
            assert done.error is None

            assert backend.detach_host(pool.hosts[1]) is True
            assert backend.detach_host(pool.hosts[1]) is False  # already gone
            # the logical slot stays valid, remapped onto the survivor
            _dispatch(backend, new_id, 1, problems[1])
            _dispatch(backend, 0, 2, problems[2])
            rest = _collect_sorted(backend, 2, timeout=30.0)
            backend.finalize()
            assert [done.error for done in rest] == [None, None]
            assert [done.result["price"] for done in rest] == [
                problems[1].compute().price,
                problems[2].compute().price,
            ]


class TestAuthenticatedHandshake:
    def test_matching_secrets_price_jobs(self):
        problem = _make_problem()
        with spawn_local_workers(1, secret="tok-123") as pool:
            backend = RemoteBackend(pool.hosts, secret="tok-123")
            _dispatch(backend, 0, 0, problem)
            done = backend.collect(timeout=30.0)
            backend.finalize()
            assert done.error is None
            assert done.result["price"] == problem.compute().price

    def test_secret_master_refuses_secretless_worker(self):
        # loud, at connect time -- before a single job frame is sent
        with spawn_local_workers(1) as pool:
            with pytest.raises(ClusterError, match="refused the shared-secret"):
                RemoteBackend(pool.hosts, secret="tok-123", connect_timeout=5.0)

    def test_wrong_secret_refused(self):
        with spawn_local_workers(1, secret="right-secret") as pool:
            with pytest.raises(ClusterError, match="refused the shared-secret"):
                RemoteBackend(pool.hosts, secret="wrong-secret", connect_timeout=5.0)

    def test_secretless_master_refused_by_secret_worker(self):
        with spawn_local_workers(1, secret="right-secret") as pool:
            with pytest.raises(ClusterError, match="requires a shared secret"):
                RemoteBackend(pool.hosts, connect_timeout=5.0)

    def test_v3_worker_interoperates_without_secrets(self):
        worker = _FakeV3Worker()
        try:
            problem = _make_problem()
            backend = RemoteBackend([worker.address], connect_timeout=5.0)
            _dispatch(backend, 0, 0, problem)
            done = backend.collect(timeout=30.0)
            backend.finalize()
            assert done.error is None
            assert done.result["price"] == problem.compute().price
        finally:
            worker.close()

    def test_v3_worker_cannot_join_a_secret_pool(self):
        worker = _FakeV3Worker()
        try:
            with pytest.raises(ClusterError, match="without handshake support"):
                RemoteBackend([worker.address], secret="tok", connect_timeout=5.0)
        finally:
            worker.close()


class TestRetryPolicy:
    def test_delay_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5, backoff_factor=2.0)
        assert policy.delay(0) == 0.0
        assert [policy.delay(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_attempts=0), dict(backoff=-1.0), dict(backoff_factor=0.5)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValuationError):
            RetryPolicy(**kwargs)

    def test_runconfig_rejects_non_policy(self):
        with pytest.raises(ValuationError, match="retry"):
            RunConfig(retry=3)


class TestSessionRetry:
    def _portfolio_and_reference(self, n: int = 10):
        problems = [
            _make_problem(80.0 + 3 * k, method="MC_European", n_paths=20_000, seed=7)
            for k in range(n)
        ]
        portfolio = Portfolio(
            positions=[Position(p, label=f"p{k}") for k, p in enumerate(problems)]
        )
        return portfolio, [p.compute().price for p in problems]

    def test_pool_loss_is_retried_transparently(self):
        portfolio, reference = self._portfolio_and_reference()
        with spawn_local_workers(1) as pool:
            spec = BackendSpec(
                "remote",
                options={"hosts": pool.hosts, "connect_timeout": 5.0,
                         "send_timeout": 30.0},
            )
            session = ValuationSession(backend=spec, strategy="serialized_load")
            killed = threading.Event()

            def on_progress(event):
                if not killed.is_set():
                    killed.set()
                    pool.kill(0)
                    threading.Thread(
                        target=lambda: (time.sleep(0.8), pool.restart(0)),
                        daemon=True,
                    ).start()

            config = RunConfig(
                retry=RetryPolicy(max_attempts=5, backoff=0.6, backoff_factor=1.5),
                progress=on_progress,
            )
            result = session.run(portfolio, config=config)
            report = result.report
            assert not report.errors
            assert report.extra.get("retries", 0) >= 1
            assert [entry["price"] for entry in report.results.values()] == reference

    def test_pool_loss_without_retry_raises(self):
        portfolio, _reference = self._portfolio_and_reference()
        with spawn_local_workers(1) as pool:
            spec = BackendSpec(
                "remote",
                options={"hosts": pool.hosts, "connect_timeout": 5.0,
                         "send_timeout": 30.0},
            )
            session = ValuationSession(backend=spec, strategy="serialized_load")
            killed = threading.Event()

            def on_progress(event):
                if not killed.is_set():
                    killed.set()
                    pool.kill(0)

            with pytest.raises(WorkerLostError):
                session.run(portfolio, config=RunConfig(progress=on_progress))
