"""Tests of the compute-cost model."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel, estimate_work_units, measured_cost, paper_cost_model
from repro.pricing import PricingProblem


def _problem(method: str, **method_params) -> PricingProblem:
    problem = PricingProblem()
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=100.0, maturity=1.0)
    problem.set_method(method, **method_params)
    return problem


class TestWorkUnits:
    def test_closed_form(self):
        work, family = estimate_work_units(_problem("CF_Call"))
        assert family == "closed_form"
        assert work == 1.0

    def test_pde(self):
        work, family = estimate_work_units(_problem("FD_European", n_space=200, n_time=100))
        assert family == "pde"
        assert work == 200 * 100

    def test_pde_american(self):
        problem = PricingProblem()
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        problem.set_option("PutAmer", strike=100.0, maturity=1.0)
        problem.set_method("FD_American", n_space=300, n_time=100)
        work, family = estimate_work_units(problem)
        assert family == "pde_american"
        assert work == 300 * 100

    def test_monte_carlo_counts_paths_steps_and_dimension(self):
        work, family = estimate_work_units(
            _problem("MC_European", n_paths=1000, n_steps=10)
        )
        assert family == "monte_carlo"
        assert work == 1000 * 10

    def test_tree(self):
        work, family = estimate_work_units(_problem("TR_CoxRossRubinstein", n_steps=200))
        assert family == "tree"
        assert work == 200 * 200


class TestCostModel:
    def test_estimate_positive_and_ordered(self):
        model = paper_cost_model()
        cheap = model.estimate(_problem("CF_Call"))
        mc = model.estimate(_problem("MC_European", n_paths=1_000_000, n_steps=10))
        assert 0 < cheap < mc

    def test_paper_cost_classes(self):
        """Vanilla ~instantaneous, European MC/PDE intermediate, American slowest."""
        model = paper_cost_model()
        vanilla = model.estimate(_problem("CF_Call"))
        pde = model.estimate(_problem("FD_European", n_space=500, n_time=500))
        problem_american = PricingProblem()
        problem_american.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        problem_american.set_option("PutAmer", strike=100.0, maturity=1.0)
        problem_american.set_method("FD_American", n_space=500, n_time=500)
        american = model.estimate(problem_american)
        assert vanilla < 0.01
        assert vanilla < pde < american

    def test_scale_factor(self):
        base = paper_cost_model()
        slower = base.with_scale(2.0)
        problem = _problem("FD_European", n_space=100, n_time=100)
        assert slower.estimate(problem) == pytest.approx(2.0 * base.estimate(problem))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            CostModel().rate_for("quantum")

    def test_calibration_refits_rates(self):
        model = CostModel()
        problems = [
            _problem("MC_European", n_paths=10_000, n_steps=10),
            _problem("MC_European", n_paths=20_000, n_steps=10),
        ]
        measured = [2.0, 4.0]  # pretend each path-step costs 2e-5 seconds
        calibrated = model.calibrate(problems, measured)
        expected_rate = (2.0 + 4.0 - 2 * model.overhead) / (100_000 + 200_000)
        assert calibrated.monte_carlo == pytest.approx(expected_rate, rel=1e-6)
        # untouched families keep their defaults
        assert calibrated.pde == model.pde

    def test_calibration_validates_lengths(self):
        with pytest.raises(ValueError):
            CostModel().calibrate([_problem("CF_Call")], [1.0, 2.0])

    def test_calibration_against_real_measurements(self):
        """Calibrated estimates should land within a factor ~3 of reality."""
        problems = [
            _problem("MC_European", n_paths=20_000, n_steps=5, seed=0),
            _problem("FD_European", n_space=150, n_time=80),
            _problem("TR_CoxRossRubinstein", n_steps=300),
        ]
        measured = [measured_cost(p) for p in problems]
        calibrated = CostModel().calibrate(problems, measured)
        for problem, actual in zip(problems, measured):
            estimate = calibrated.estimate(problem)
            assert estimate == pytest.approx(actual, rel=3.0, abs=0.05)

    def test_as_dict(self):
        data = paper_cost_model().as_dict()
        assert set(data) >= {"overhead", "scale", "monte_carlo", "pde"}
