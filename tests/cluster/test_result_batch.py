"""Tests of the v5 coalesced result frames (``FRAME_RESULT_BATCH``).

One dispatched :data:`FRAME_JOB_BATCH` answers as **one** coalesced result
message when the master speaks protocol v5, and degrades to the classic
per-member :data:`FRAME_RESULT` frames for older masters -- the worker
learns the negotiated version from the master's own frame headers, never
from configuration.  The end-to-end case is the ablation workload: a
1600-cheap-job portfolio shipped in chunks over real TCP workers.
"""

from __future__ import annotations

import socket
import threading

from repro.api import ValuationSession
from repro.cluster.backends import PAYLOAD_SERIAL
from repro.cluster.worker import spawn_local_workers
from repro.core import build_toy_portfolio
from repro.core.scheduler import ChunkedRobinHoodScheduler
from repro.pricing import PricingProblem
from repro.serial import serialize, xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB_BATCH,
    FRAME_RESULT,
    FRAME_RESULT_BATCH,
    FRAME_STOP,
    encode_frame,
    read_frame_versioned,
)


def _make_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"rb_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _batch_frame(problems, version: int) -> bytes:
    entries = [
        {
            "job_id": index,
            "kind": PAYLOAD_SERIAL,
            "payload": serialize(problem).to_bytes(),
        }
        for index, problem in enumerate(problems)
    ]
    return encode_frame(FRAME_JOB_BATCH, xdr.encode({"jobs": entries}), version=version)


class TestCoalescedReply:
    def test_v5_master_gets_one_result_batch_frame(self):
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            host, port = pool.hosts[0].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10.0) as conn:
                kind, _, hello_version = read_frame_versioned(conn.recv)
                assert kind == FRAME_HELLO
                assert hello_version >= 5
                conn.sendall(_batch_frame(problems, version=5))
                kind, payload, version = read_frame_versioned(conn.recv)
                assert kind == FRAME_RESULT_BATCH
                assert version == 5
                answers = xdr.decode(payload)["results"]
                assert [a["job_id"] for a in answers] == [0, 1, 2]
                assert [a["result"]["price"] for a in answers] == reference
                assert all(a["error"] is None for a in answers)
                conn.sendall(encode_frame(FRAME_STOP, version=5))

    def test_v4_master_gets_per_member_result_frames(self):
        problems = [_make_problem(k) for k in (95.0, 105.0)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            host, port = pool.hosts[0].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10.0) as conn:
                kind, _, _ = read_frame_versioned(conn.recv)
                assert kind == FRAME_HELLO
                # an older master stamps its frames at v4; the worker must
                # answer with frames that master can parse -- one per member
                conn.sendall(_batch_frame(problems, version=4))
                seen = {}
                for _ in problems:
                    kind, payload, version = read_frame_versioned(conn.recv)
                    assert kind == FRAME_RESULT
                    assert version == 4
                    answer = xdr.decode(payload)
                    seen[answer["job_id"]] = answer["result"]["price"]
                assert seen == {0: reference[0], 1: reference[1]}
                conn.sendall(encode_frame(FRAME_STOP, version=4))

    def test_untransmissible_member_degrades_to_per_member_frames(self, monkeypatch):
        # one member whose result the codec cannot ship poisons the whole
        # coalesced message; the lane must fall back to per-member frames,
        # where only the poisoned member degrades to an error answer
        import repro.cluster.backends.execution as execution
        from repro.cluster.worker import serve

        real_execute = execution.execute_payload
        calls = []

        def poisoned(kind, payload, cache=None):
            calls.append(kind)
            if len(calls) == 2:
                return {"price": object()}, 0.0, None
            return real_execute(kind, payload, cache=cache)

        monkeypatch.setattr(execution, "execute_payload", poisoned)
        ports: list[int] = []
        listening = threading.Event()

        def _ready(port):
            ports.append(port)
            listening.set()

        thread = threading.Thread(
            target=serve,
            kwargs={"host": "127.0.0.1", "port": 0, "once": True, "ready": _ready},
            daemon=True,
        )
        thread.start()
        assert listening.wait(10.0)
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        with socket.create_connection(("127.0.0.1", ports[0]), timeout=10.0) as conn:
            assert read_frame_versioned(conn.recv)[0] == FRAME_HELLO
            conn.sendall(_batch_frame(problems, version=5))
            answers = {}
            for _ in problems:
                kind, payload, _ = read_frame_versioned(conn.recv)
                assert kind == FRAME_RESULT  # coalescing was abandoned
                answer = xdr.decode(payload)
                answers[answer["job_id"]] = answer
            conn.sendall(encode_frame(FRAME_STOP, version=5))
        assert answers[0]["error"] is None
        assert "not transmissible" in answers[1]["error"]
        assert answers[1]["result"] is None
        assert answers[2]["error"] is None
        thread.join(timeout=10.0)


class TestEndToEndChunkedPortfolio:
    def test_ablation_portfolio_over_coalescing_workers(self):
        # the ablation workload: 1600 cheap closed-form jobs, chunk-dispatched
        # so every wave is one FRAME_JOB_BATCH and (since v5) one coalesced
        # FRAME_RESULT_BATCH answer per chunk
        portfolio = build_toy_portfolio(n_options=1600)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(2) as pool:
            session = ValuationSession(
                backend="remote",
                backend_options={"hosts": pool.hosts},
                scheduler=ChunkedRobinHoodScheduler(chunk_size=100),
            )
            remote = session.run(portfolio)
        assert remote.prices() == reference.prices()
        assert not remote.report.errors
