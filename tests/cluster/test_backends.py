"""Tests of the sequential and multiprocessing execution backends."""

from __future__ import annotations

import pytest

from repro.cluster.backends import (
    PAYLOAD_PATH,
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    Job,
    MultiprocessingBackend,
    PreparedMessage,
    SequentialBackend,
    execute_payload,
    materialize_problem,
)
from repro.errors import ClusterError
from repro.pricing import PricingProblem
from repro.serial import save, serialize


def _make_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"test_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _job(job_id: int, problem: PricingProblem) -> Job:
    return Job(job_id=job_id, path="", file_size=512, compute_cost=1e-3,
               category="vanilla", problem=problem)


def _message(problem: PricingProblem) -> PreparedMessage:
    data = serialize(problem).to_bytes()
    return PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data))


class TestExecution:
    def test_materialize_from_problem(self):
        problem = _make_problem()
        assert materialize_problem(PAYLOAD_PROBLEM, problem) is problem

    def test_materialize_from_serial_bytes(self):
        problem = _make_problem()
        rebuilt = materialize_problem(PAYLOAD_SERIAL, serialize(problem).to_bytes())
        assert rebuilt == problem

    def test_materialize_from_path(self, tmp_path):
        problem = _make_problem()
        path = tmp_path / "p.pb"
        save(path, problem)
        assert materialize_problem(PAYLOAD_PATH, str(path)) == problem

    def test_materialize_rejects_non_problems(self):
        with pytest.raises(ClusterError):
            materialize_problem(PAYLOAD_SERIAL, serialize([1, 2, 3]).to_bytes())
        with pytest.raises(ClusterError):
            materialize_problem("telepathy", None)

    def test_execute_payload_success(self):
        result, elapsed, error = execute_payload(PAYLOAD_PROBLEM, _make_problem())
        assert error is None
        assert result["price"] == pytest.approx(10.450584, abs=1e-6)
        assert elapsed >= 0

    def test_execute_payload_captures_errors(self):
        result, _elapsed, error = execute_payload(PAYLOAD_SERIAL, b"garbage")
        assert result is None
        assert error is not None


class TestSequentialBackend:
    def test_dispatch_collect_cycle(self):
        backend = SequentialBackend(n_workers=2)
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        for index, problem in enumerate(problems):
            backend.dispatch(index % 2, _job(index, problem), _message(problem))
        collected = [backend.collect() for _ in range(3)]
        assert [c.job_id for c in collected] == [0, 1, 2]
        assert all(c.error is None for c in collected)
        assert collected[1].result["price"] == pytest.approx(10.450584, abs=1e-6)
        stats = backend.finalize()
        assert stats.n_jobs == 3
        assert stats.n_workers == 2
        assert stats.bytes_sent > 0

    def test_collect_without_dispatch_raises(self):
        backend = SequentialBackend()
        with pytest.raises(ClusterError):
            backend.collect()

    def test_invalid_worker_id(self):
        backend = SequentialBackend(n_workers=1)
        problem = _make_problem()
        with pytest.raises(ClusterError):
            backend.dispatch(3, _job(0, problem), _message(problem))

    def test_invalid_worker_count(self):
        with pytest.raises(ClusterError):
            SequentialBackend(n_workers=0)

    def test_requires_payload_flag(self):
        assert SequentialBackend().requires_payload is True


class TestMultiprocessingBackend:
    def test_parallel_execution_matches_sequential(self):
        problems = [_make_problem(k) for k in (80.0, 90.0, 100.0, 110.0, 120.0, 130.0)]
        sequential_prices = {i: p.compute().price for i, p in enumerate(problems)}

        backend = MultiprocessingBackend(n_workers=3)
        try:
            for index, problem in enumerate(problems):
                backend.dispatch(index % 3, _job(index, problem), _message(problem))
            collected = {c.job_id: c for c in (backend.collect() for _ in range(len(problems)))}
        finally:
            stats = backend.finalize()

        assert len(collected) == len(problems)
        for index, price in sequential_prices.items():
            assert collected[index].result["price"] == pytest.approx(price, abs=1e-12)
        assert stats.n_jobs == len(problems)
        assert sum(stats.worker_busy.values()) > 0

    def test_path_payload(self, tmp_path):
        problem = _make_problem()
        path = tmp_path / "p.pb"
        save(path, problem)
        backend = MultiprocessingBackend(n_workers=1)
        try:
            message = PreparedMessage(kind=PAYLOAD_PATH, payload=str(path), nbytes=64)
            backend.dispatch(0, _job(0, problem), message)
            done = backend.collect()
        finally:
            backend.finalize()
        assert done.error is None
        assert done.result["price"] == pytest.approx(10.450584, abs=1e-6)

    def test_worker_survives_bad_job(self):
        backend = MultiprocessingBackend(n_workers=1)
        try:
            bad = PreparedMessage(kind=PAYLOAD_SERIAL, payload=b"junk", nbytes=4)
            backend.dispatch(0, _job(0, None), bad)
            first = backend.collect()
            # the worker must still process a valid follow-up job
            problem = _make_problem()
            backend.dispatch(0, _job(1, problem), _message(problem))
            second = backend.collect()
        finally:
            backend.finalize()
        assert first.error is not None
        assert second.error is None
        assert second.result["price"] > 0

    def test_collect_without_dispatch_raises(self):
        backend = MultiprocessingBackend(n_workers=1)
        try:
            with pytest.raises(ClusterError):
                backend.collect()
        finally:
            backend.finalize()

    def test_dispatch_after_finalize_rejected(self):
        backend = MultiprocessingBackend(n_workers=1)
        backend.finalize()
        problem = _make_problem()
        with pytest.raises(ClusterError):
            backend.dispatch(0, _job(0, problem), _message(problem))

    def test_invalid_worker_count(self):
        with pytest.raises(ClusterError):
            MultiprocessingBackend(n_workers=0)

    def test_finalize_idempotent(self):
        backend = MultiprocessingBackend(n_workers=1)
        backend.finalize()
        stats = backend.finalize()
        assert stats.n_jobs == 0


class TestDispatchBatch:
    """The chunked dispatch contract: one logical message per chunk."""

    def test_sequential_uses_the_default_per_job_loop(self):
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        backend = SequentialBackend(n_workers=1)
        backend.dispatch_batch(
            0, [_job(i, p) for i, p in enumerate(problems)],
            [_message(p) for p in problems],
        )
        collected = [backend.collect() for _ in range(3)]
        backend.finalize()
        assert [c.job_id for c in collected] == [0, 1, 2]
        assert all(c.error is None for c in collected)

    def test_multiprocessing_ships_one_queue_message_per_chunk(self):
        problems = [_make_problem(k) for k in (85.0, 95.0, 105.0, 115.0)]
        reference = [p.compute().price for p in problems]
        backend = MultiprocessingBackend(n_workers=2)
        try:
            backend.dispatch_batch(
                0, [_job(i, p) for i, p in enumerate(problems[:2])],
                [_message(p) for p in problems[:2]],
            )
            backend.dispatch_batch(
                1, [_job(2 + i, p) for i, p in enumerate(problems[2:])],
                [_message(p) for p in problems[2:]],
            )
            collected = {c.job_id: c for c in (backend.collect() for _ in range(4))}
        finally:
            stats = backend.finalize()
        assert stats.n_jobs == 4
        for index, price in enumerate(reference):
            assert collected[index].result["price"] == price

    def test_multiprocessing_batch_needs_aligned_payloads(self):
        backend = MultiprocessingBackend(n_workers=1)
        try:
            problem = _make_problem()
            with pytest.raises(ClusterError, match="payload per job"):
                backend.dispatch_batch(0, [_job(0, problem)], None)
        finally:
            backend.finalize()
