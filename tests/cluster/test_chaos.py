"""Tests of the chaos harness: ChurnSchedule (virtual time) and ChaosProxy
(real sockets).

The proxy lifecycle test doubles as the CI chaos smoke: a campaign whose
only link is killed mid-run by the proxy must finish bit-identical through
the reconnect policy.
"""

from __future__ import annotations

import pytest

from repro.cluster.backends import Job, PAYLOAD_SERIAL, PreparedMessage
from repro.cluster.backends.remote import RemoteBackend, ReconnectPolicy
from repro.cluster.chaos import (
    ChaosProxy,
    ChaosRule,
    ChurnEvent,
    ChurnSchedule,
    delay_frame,
    kill_after,
    truncate_frame,
)
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.cluster.worker import spawn_local_workers
from repro.errors import ClusterError, SimulationError, WorkerLostError
from repro.pricing import PricingProblem
from repro.serial import serialize


def _make_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"chaos_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _dispatch(backend: RemoteBackend, worker_id: int, job_id: int, problem) -> None:
    data = serialize(problem).to_bytes()
    backend.dispatch(
        worker_id,
        Job(job_id=job_id, path="", file_size=len(data), compute_cost=1e-3),
        PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data)),
    )


def _sim_jobs(costs):
    return [
        Job(job_id=i, path=f"/virtual/p{i}.pb", file_size=500, compute_cost=c,
            category="chaos")
        for i, c in enumerate(costs)
    ]


def _run_robin_hood(backend, jobs):
    queue = list(jobs)
    in_flight = 0
    for worker in range(min(backend.n_workers, len(queue))):
        backend.dispatch(worker, queue.pop(0))
        in_flight += 1
    completed = []
    while queue:
        done = backend.collect()
        completed.append(done)
        backend.dispatch(done.worker_id, queue.pop(0))
    for _ in range(in_flight):
        completed.append(backend.collect())
    return completed


class TestChurnSchedule:
    def test_fluent_build_and_properties(self):
        churn = ChurnSchedule().kill(0, at=5.0).kill(0, at=3.0).kill(2, at=9.0)
        churn.join(at=12.0, speed=2.0).join(at=4.0)
        assert churn.kills == {0: 3.0, 2: 9.0}  # earliest kill wins
        assert churn.joins == [(4.0, 1.0), (12.0, 2.0)]  # sorted by birth

    @pytest.mark.parametrize(
        "event_kwargs",
        [
            dict(time=1.0, action="explode"),
            dict(time=-1.0, action="kill", worker_id=0),
            dict(time=1.0, action="kill"),  # kill needs a worker_id
            dict(time=1.0, action="kill", worker_id=-2),
            dict(time=1.0, action="join", speed=0.0),
        ],
    )
    def test_event_validation(self, event_kwargs):
        with pytest.raises(ClusterError):
            ChurnEvent(**event_kwargs)

    def test_kill_of_unknown_worker_rejected_by_simulator(self):
        churn = ChurnSchedule().kill(7, at=1.0)
        with pytest.raises(SimulationError, match="unknown worker"):
            SimulatedClusterBackend(ClusterSpec.homogeneous(2), churn=churn)


class TestSimulatedChurn:
    def test_churn_is_deterministic_and_counted(self):
        costs = [0.05, 0.2, 0.01, 0.4] * 8
        churn = ChurnSchedule().kill(1, at=0.3).join(at=0.8)
        runs = []
        for _ in range(2):
            backend = SimulatedClusterBackend(
                ClusterSpec.homogeneous(4), churn=churn
            )
            completed = _run_robin_hood(backend, _sim_jobs(costs))
            stats = backend.finalize()
            runs.append((stats.total_time, dict(stats.extra)))
            assert sorted(c.job_id for c in completed) == list(range(len(costs)))
        assert runs[0] == runs[1]  # bit-identical virtual time
        extra = runs[0][1]
        assert extra["churn_kills"] == 1
        assert extra["churn_joins"] == 1
        assert extra["churn_redirects"] + extra["churn_restarts"] >= 1

    def test_churn_never_speeds_up_the_campaign(self):
        costs = [0.1] * 24
        baseline = SimulatedClusterBackend(ClusterSpec.homogeneous(3))
        _run_robin_hood(baseline, _sim_jobs(costs))
        churned = SimulatedClusterBackend(
            ClusterSpec.homogeneous(3), churn=ChurnSchedule().kill(0, at=0.15)
        )
        _run_robin_hood(churned, _sim_jobs(costs))
        assert churned.finalize().total_time >= baseline.finalize().total_time

    def test_plain_simulation_unchanged_by_churn_plumbing(self):
        costs = [0.05, 0.2, 0.01, 0.4] * 10
        plain = SimulatedClusterBackend(ClusterSpec.homogeneous(4))
        _run_robin_hood(plain, _sim_jobs(costs))
        empty = SimulatedClusterBackend(
            ClusterSpec.homogeneous(4), churn=ChurnSchedule()
        )
        _run_robin_hood(empty, _sim_jobs(costs))
        assert plain.finalize().total_time == empty.finalize().total_time

    def test_total_loss_raises_worker_lost(self):
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(1), churn=ChurnSchedule().kill(0, at=0.05)
        )
        with pytest.raises(WorkerLostError, match="whole simulated cluster"):
            _run_robin_hood(backend, _sim_jobs([0.2, 0.2]))

    def test_join_rescues_a_dying_cluster(self):
        churn = (
            ChurnSchedule().kill(0, at=1.0).kill(1, at=1.0).join(at=0.5, speed=2.0)
        )
        backend = SimulatedClusterBackend(ClusterSpec.homogeneous(2), churn=churn)
        completed = _run_robin_hood(backend, _sim_jobs([0.4] * 9))
        stats = backend.finalize()
        assert sorted(c.job_id for c in completed) == list(range(9))
        assert stats.extra["churn_restarts"] + stats.extra["churn_redirects"] >= 1


class TestChaosRuleValidation:
    @pytest.mark.parametrize(
        "rule_kwargs",
        [
            dict(action="nuke"),
            dict(action="kill", direction="sideways"),
            dict(action="kill", after_frames=-1),
            dict(action="delay", delay=0.0),
        ],
    )
    def test_bad_rules_rejected(self, rule_kwargs):
        with pytest.raises(ClusterError):
            ChaosRule(**rule_kwargs)

    def test_bad_upstream_address_rejected(self):
        with pytest.raises(ClusterError, match="bad upstream address"):
            ChaosProxy("no-port-here")


class TestChaosProxy:
    def test_transparent_passthrough(self):
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            with ChaosProxy(pool.hosts[0]) as proxy:
                backend = RemoteBackend([proxy.address])
                for index, problem in enumerate(problems):
                    _dispatch(backend, 0, index, problem)
                collected = sorted(
                    (backend.collect(timeout=60.0) for _ in problems),
                    key=lambda done: done.job_id,
                )
                backend.finalize()
                assert [c.error for c in collected] == [None, None, None]
                assert [c.result["price"] for c in collected] == reference
                assert proxy.stats["connections"] == 1
                assert proxy.stats["frames_forwarded"] > 0
                assert proxy.stats["kills"] == 0

    def test_scheduled_kill_survived_through_reconnect(self):
        """The CI chaos lifecycle: link killed mid-campaign, master re-dials
        through the proxy and the campaign finishes bit-identical."""
        problems = [_make_problem(k) for k in (85.0, 95.0, 105.0, 115.0, 125.0, 135.0)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            with ChaosProxy(pool.hosts[0], rules=[kill_after(6)]) as proxy:
                backend = RemoteBackend(
                    [proxy.address],
                    reconnect=ReconnectPolicy(max_attempts=10, initial_backoff=0.05),
                )
                for index, problem in enumerate(problems):
                    _dispatch(backend, 0, index, problem)
                collected = sorted(
                    (backend.collect(timeout=60.0) for _ in problems),
                    key=lambda done: done.job_id,
                )
                stats = backend.finalize()
                assert [c.error for c in collected] == [None] * len(problems)
                assert [c.result["price"] for c in collected] == reference
                assert stats.extra["reconnects"] >= 1
                assert proxy.stats["kills"] >= 1
                assert proxy.stats["connections"] >= 2  # the re-dial went through

    def test_truncated_frame_without_reconnect_loses_the_pool(self):
        with spawn_local_workers(1) as pool:
            with ChaosProxy(
                pool.hosts[0], rules=[truncate_frame(1, direction="s2c")]
            ) as proxy:
                backend = RemoteBackend([proxy.address])
                for index in range(4):
                    _dispatch(backend, 0, index, _make_problem(90.0 + index))
                with pytest.raises(WorkerLostError) as excinfo:
                    for _ in range(4):
                        backend.collect(timeout=30.0)
                assert excinfo.value.job_ids  # the orphans are resubmittable
                backend.finalize()
                assert proxy.stats["truncations"] == 1

    def test_delay_rule_holds_a_frame_without_corruption(self):
        problem = _make_problem()
        with spawn_local_workers(1) as pool:
            with ChaosProxy(
                pool.hosts[0], rules=[delay_frame(0, 0.3, direction="c2s")]
            ) as proxy:
                backend = RemoteBackend([proxy.address])
                _dispatch(backend, 0, 0, problem)
                done = backend.collect(timeout=60.0)
                backend.finalize()
                assert done.error is None
                assert done.result["price"] == problem.compute().price
                assert proxy.stats["delays"] == 1
