"""Tests of the MPI-like message passing facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import mpi
from repro.errors import CommunicatorError
from repro.serial import Serial, serialize


def test_spawn_basic_roundtrip():
    def slave(comm):
        value = comm.recv_obj(source=0, tag=1)
        comm.send_obj(value * 2, dest=0, tag=2)

    with mpi.spawn(2, slave) as comm:
        assert comm.rank == 0
        assert comm.size == 3
        comm.send_obj(21, dest=1, tag=1)
        comm.send_obj(100, dest=2, tag=1)
        results = sorted(comm.recv_obj(source=mpi.ANY_SOURCE, tag=2) for _ in range(2))
    assert results == [42, 200]


def test_send_obj_serializes_arbitrary_objects():
    """The paper's example: a list holding a string, a boolean and a matrix."""
    payload = ["string", True, np.random.default_rng(0).random((4, 4))]

    def slave(comm):
        received = comm.recv_obj(source=0, tag=5)
        comm.send_obj(
            bool(
                received[0] == "string"
                and received[1] is True
                and np.allclose(received[2], payload[2])
            ),
            dest=0,
            tag=6,
        )

    with mpi.spawn(1, slave) as comm:
        comm.send_obj(payload, dest=1, tag=5)
        assert comm.recv_obj(source=1, tag=6) is True


def test_probe_reports_source_tag_and_count():
    def slave(comm):
        comm.send_obj("ready", dest=0, tag=9)

    with mpi.spawn(2, slave) as comm:
        status = comm.probe(source=mpi.ANY_SOURCE, tag=9)
        assert status.source in (1, 2)
        assert status.tag == 9
        assert status.count > 0
        # probing does not consume: the message is still receivable
        value = comm.recv_obj(source=status.source, tag=9)
        assert value == "ready"
        comm.recv_obj(source=mpi.ANY_SOURCE, tag=9)


def test_pack_unpack_round_trip():
    packed = mpi.pack({"A": [True, False], "B": list(range(4))})
    assert isinstance(packed, Serial)
    assert mpi.unpack(packed) == {"A": [True, False], "B": [0, 1, 2, 3]}
    assert mpi.unpack(packed.to_bytes()) == {"A": [True, False], "B": [0, 1, 2, 3]}


def test_send_packed_buffers():
    """MPI_Pack / MPI_Send / MPI_Probe / MPI_Recv / MPI_Unpack sequence."""

    def slave(comm):
        status = comm.probe(source=0)
        assert status.count > 0
        buffer = comm.recv(source=0, tag=status.tag)
        value = mpi.unpack(buffer)
        comm.send_obj(value["B"], dest=0, tag=3)

    with mpi.spawn(1, slave) as comm:
        packed = mpi.pack({"A": 1, "B": [4, 5, 6]})
        comm.send(packed, dest=1, tag=7)
        assert comm.recv_obj(source=1, tag=3) == [4, 5, 6]


def test_serialized_objects_pass_through_unserialized_on_recv_obj():
    def slave(comm):
        value = comm.recv_obj(source=0, tag=1)
        comm.send_obj(value, dest=0, tag=2)

    with mpi.spawn(1, slave) as comm:
        comm.send_obj(serialize([1, 2, 3]), dest=1, tag=1)
        assert comm.recv_obj(source=1, tag=2) == [1, 2, 3]


def test_tag_filtering():
    def slave(comm):
        comm.send_obj("low", dest=0, tag=1)
        comm.send_obj("high", dest=0, tag=2)

    with mpi.spawn(1, slave) as comm:
        # receive out of order by tag
        assert comm.recv_obj(source=1, tag=2) == "high"
        assert comm.recv_obj(source=1, tag=1) == "low"


def test_barrier_synchronises_all_ranks():
    hits: list[int] = []

    def slave(comm):
        comm.barrier()
        hits.append(comm.rank)

    group = mpi.spawn(3, slave)
    assert hits == []  # slaves are blocked on the barrier
    group.master.barrier()
    group.join()
    assert sorted(hits) == [1, 2, 3]


def test_invalid_rank_rejected():
    def slave(comm):
        comm.recv_obj(source=0, tag=1)

    group = mpi.spawn(1, slave)
    with pytest.raises(CommunicatorError):
        group.master.send_obj(1, dest=5, tag=1)
    group.master.send_obj(None, dest=1, tag=1)
    group.join()


def test_recv_timeout():
    def slave(comm):
        comm.recv_obj(source=0, tag=1)

    group = mpi.spawn(1, slave)
    with pytest.raises(CommunicatorError):
        group.master.recv_obj(source=1, tag=1, timeout=0.05)
    group.master.send_obj(None, dest=1, tag=1)
    group.join()


def test_slave_exception_surfaces_at_join():
    def bad_slave(comm):
        raise RuntimeError("boom")

    group = mpi.spawn(1, bad_slave)
    with pytest.raises(CommunicatorError, match="boom"):
        group.join()


def test_spawn_requires_at_least_one_slave():
    with pytest.raises(CommunicatorError):
        mpi.spawn(0, lambda comm: None)


def test_extra_spawn_arguments_forwarded():
    def slave(comm, factor):
        value = comm.recv_obj(source=0, tag=1)
        comm.send_obj(value * factor, dest=0, tag=2)

    with mpi.spawn(1, slave, 10) as comm:
        comm.send_obj(7, dest=1, tag=1)
        assert comm.recv_obj(source=1, tag=2) == 70


def test_robin_hood_master_worker_pattern():
    """The Fig. 4 pattern: feed whoever answers first, then send stop."""

    def slave(comm):
        while True:
            job = comm.recv_obj(source=0, tag=1)
            if job == "":
                break
            comm.send_obj((comm.rank, job * job), dest=0, tag=2)

    jobs = list(range(1, 21))
    results = []
    n_slaves = 4
    with mpi.spawn(n_slaves, slave) as comm:
        queue = list(jobs)
        for rank in range(1, n_slaves + 1):
            comm.send_obj(queue.pop(0), dest=rank, tag=1)
        while queue:
            status = comm.probe(source=mpi.ANY_SOURCE, tag=2)
            results.append(comm.recv_obj(source=status.source, tag=2))
            comm.send_obj(queue.pop(0), dest=status.source, tag=1)
        for _ in range(n_slaves):
            results.append(comm.recv_obj(source=mpi.ANY_SOURCE, tag=2))
        for rank in range(1, n_slaves + 1):
            comm.send_obj("", dest=rank, tag=1)

    assert sorted(value for _, value in results) == sorted(j * j for j in jobs)
    # more than one slave actually contributed
    assert len({rank for rank, _ in results}) > 1
