"""Lifecycle tests for the shared-memory transport (:mod:`repro.cluster.shm`).

The transport must never leak: every published segment is either consumed
(attach + copy + unlink) or reclaimed by the finalize sweep, including when
a worker dies between publish and consume.  And when shared memory is not
available at all, everything must degrade to plain inline payloads.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.cluster.shm as shm_module
from repro.cluster.backends import (
    PAYLOAD_SERIAL,
    Job,
    MultiprocessingBackend,
    PreparedMessage,
    SequentialBackend,
)
from repro.cluster.shm import (
    SHM_MIN_BYTES,
    SegmentRegistry,
    decode_result,
    encode_result,
    shm_available,
)
from repro.errors import ClusterError
from repro.pricing import PricingProblem
from repro.serial import serialize

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

_SHM_DIR = "/dev/shm"


def _segments_with_prefix(prefix: str) -> list[str]:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-tmpfs platforms
        return []
    return sorted(entry for entry in os.listdir(_SHM_DIR) if entry.startswith(prefix))


def _make_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"shm_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _job(job_id: int, problem: PricingProblem) -> Job:
    return Job(job_id=job_id, path="", file_size=512, compute_cost=1e-3,
               category="vanilla", problem=problem)


def _message(problem: PricingProblem) -> PreparedMessage:
    data = serialize(problem).to_bytes()
    return PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data))


class TestSegmentRegistry:
    def test_bytes_round_trip_unlinks(self):
        registry = SegmentRegistry("tshmbytes")
        payload = os.urandom(4096)
        handle = registry.publish_bytes(payload)
        registry.release(handle["name"])  # transfer to the consumer
        assert _segments_with_prefix("tshmbytes") == [handle["name"]]
        assert registry.consume_bytes(handle) == payload
        assert _segments_with_prefix("tshmbytes") == []
        registry.close()

    def test_array_round_trip_preserves_shape_and_dtype(self):
        registry = SegmentRegistry("tshmarray")
        array = np.arange(600, dtype=np.float64).reshape(3, 200) * 0.25
        handle = registry.publish_array(array)
        registry.release(handle["name"])
        out = registry.consume_array(handle)
        assert out.dtype == array.dtype and out.shape == array.shape
        assert np.array_equal(out, array)
        out[0, 0] = -1.0  # the copy is independent of the (unlinked) segment
        assert _segments_with_prefix("tshmarray") == []
        registry.close()

    def test_refcounting_unlink_on_close(self):
        registry = SegmentRegistry("tshmref")
        handle = registry.publish_bytes(b"x" * 128)
        name = handle["name"]
        assert registry.refcount(name) == 1
        registry.retain(name)
        assert registry.refcount(name) == 2
        registry.release(name, unlink=True)
        assert registry.refcount(name) == 1
        assert _segments_with_prefix("tshmref") == [name]
        registry.release(name, unlink=True)
        assert registry.refcount(name) == 0
        assert registry.n_tracked == 0
        assert _segments_with_prefix("tshmref") == []
        registry.close()

    def test_unknown_names_rejected(self):
        registry = SegmentRegistry("tshmunknown")
        assert registry.refcount("tshmunknownp1n1") == 0
        with pytest.raises(KeyError):
            registry.retain("tshmunknownp1n1")
        with pytest.raises(KeyError):
            registry.release("tshmunknownp1n1")
        registry.close()

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            SegmentRegistry("")
        with pytest.raises(ValueError):
            SegmentRegistry("a/b")

    def test_sweep_reclaims_unconsumed_publish(self):
        registry = SegmentRegistry("tshmsweep1")
        handle = registry.publish_bytes(b"y" * 256)
        registry.release(handle["name"])  # handed off, but nobody consumes
        assert _segments_with_prefix("tshmsweep1") == [handle["name"]]
        assert registry.sweep() == [handle["name"]]
        assert _segments_with_prefix("tshmsweep1") == []

    def test_sweep_reclaims_foreign_segment_with_run_prefix(self):
        """A segment published by a (dead) worker is found via /dev/shm."""
        registry = SegmentRegistry("tshmsweep2")
        foreign = shm_module._shared_memory.SharedMemory(
            create=True, size=64, name="tshmsweep2p99999n1"
        )
        foreign.buf[:3] = b"abc"
        foreign.close()
        assert registry.sweep() == ["tshmsweep2p99999n1"]
        assert _segments_with_prefix("tshmsweep2") == []

    def test_sweep_skips_locally_referenced_segments(self):
        registry = SegmentRegistry("tshmsweep3")
        handle = registry.publish_bytes(b"z" * 64)
        assert registry.sweep() == []  # refcount 1: not a leak
        assert registry.refcount(handle["name"]) == 1
        registry.close()
        assert _segments_with_prefix("tshmsweep3") == []


class TestEncodeDecode:
    def test_nested_round_trip(self):
        registry = SegmentRegistry("tshmcodec")
        big = np.linspace(0.0, 1.0, 5000)
        blob = os.urandom(2048)
        tree = {"a": [big, {"b": blob}], "price": 1.25, "small": np.ones(3)}
        encoded = encode_result(tree, registry, min_bytes=1024)
        assert set(encoded["a"][0]) == {"__shm_array__"}
        assert set(encoded["a"][1]["b"]) == {"__shm_bytes__"}
        assert isinstance(encoded["small"], np.ndarray)  # below threshold
        decoded = decode_result(encoded, registry)
        assert np.array_equal(decoded["a"][0], big)
        assert decoded["a"][1]["b"] == blob
        assert decoded["price"] == 1.25
        assert registry.n_tracked == 0
        assert _segments_with_prefix("tshmcodec") == []

    def test_threshold_keeps_small_buffers_inline(self):
        registry = SegmentRegistry("tshmthresh")
        small = np.ones(4)
        encoded = encode_result({"x": small, "y": b"tiny"}, registry, SHM_MIN_BYTES)
        assert encoded["x"] is small
        assert encoded["y"] == b"tiny"
        assert registry.n_tracked == 0
        registry.close()


class TestPickleFallback:
    def test_encode_is_passthrough_without_shm(self, monkeypatch):
        registry = SegmentRegistry("tshmfall")
        registry.close()
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        assert not shm_module.shm_available()
        tree = {"a": np.arange(10_000, dtype=float)}
        assert encode_result(tree, registry, min_bytes=1) is tree
        assert decode_result(tree, registry) == tree

    def test_backends_reject_forced_shm_without_support(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        with pytest.raises(ClusterError):
            SequentialBackend(use_shm=True)
        with pytest.raises(ClusterError):
            MultiprocessingBackend(n_workers=1, use_shm=True)

    def test_sequential_backend_falls_back_to_inline(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        backend = SequentialBackend(n_workers=1)  # auto-detect: no shm
        assert backend._registry is None
        problem = _make_problem()
        backend.dispatch(0, _job(0, problem), _message(problem))
        done = backend.collect()
        backend.finalize()
        assert done.error is None
        assert done.result["price"] == pytest.approx(10.450584, abs=1e-6)


class TestBackendLifecycle:
    def test_sequential_shm_cycle_is_clean(self):
        backend = SequentialBackend(n_workers=1, use_shm=True, shm_min_bytes=1)
        prefix = backend._registry.prefix
        problem = _make_problem()
        backend.dispatch(0, _job(0, problem), _message(problem))
        done = backend.collect()
        backend.finalize()
        assert done.error is None
        assert done.result["price"] == pytest.approx(10.450584, abs=1e-6)
        assert _segments_with_prefix(prefix) == []

    def test_multiproc_segments_unlinked_after_collection(self):
        backend = MultiprocessingBackend(n_workers=2, use_shm=True, shm_min_bytes=1)
        assert backend.uses_shm
        prefix = backend._registry.prefix
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0, 120.0)]
        try:
            for index, problem in enumerate(problems):
                backend.dispatch(index % 2, _job(index, problem), _message(problem))
            collected = {c.job_id: c for c in (backend.collect() for _ in problems)}
        finally:
            backend.finalize()
        assert all(c.error is None for c in collected.values())
        baseline = {i: p.compute().price for i, p in enumerate(problems)}
        for index, price in baseline.items():
            assert collected[index].result["price"] == price
        # every payload segment was consumed by its worker, every result
        # segment by the master -- nothing should survive the run
        assert _segments_with_prefix(prefix) == []

    def test_no_leak_after_worker_death(self):
        backend = MultiprocessingBackend(n_workers=1, use_shm=True, shm_min_bytes=1)
        prefix = backend._registry.prefix
        process = backend._processes[0]
        process.terminate()
        process.join(timeout=10)
        problem = _make_problem()
        # the dispatch publishes a payload segment that no worker will ever
        # attach -- exactly the leak shape the finalize sweep must reclaim
        backend.dispatch(0, _job(0, problem), _message(problem))
        assert _segments_with_prefix(prefix) != []
        backend.finalize()
        assert _segments_with_prefix(prefix) == []
