"""Tests of the simulated-cluster building blocks (events, nodes, network, NFS)."""

from __future__ import annotations

import pytest

from repro.cluster.simcluster import (
    ClusterSpec,
    CommunicationModel,
    EventQueue,
    NetworkModel,
    NFSModel,
    NodeSpec,
    gigabit_ethernet,
)
from repro.cluster.backends.base import Job
from repro.errors import SimulationError


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_simultaneous_events_keep_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, "first")
        queue.push(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, "only")
        assert queue.peek().kind == "only"
        assert len(queue) == 1

    def test_empty_queue_errors(self):
        queue = EventQueue()
        assert not queue
        with pytest.raises(SimulationError):
            queue.pop()
        with pytest.raises(SimulationError):
            queue.peek()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, "bad")


class TestClusterSpec:
    def test_homogeneous(self):
        spec = ClusterSpec.homogeneous(4, speed=2.0)
        assert spec.n_workers == 4
        assert all(spec.speed_of(i) == 2.0 for i in range(4))

    def test_heterogeneous(self):
        spec = ClusterSpec.heterogeneous([1.0, 0.5, 2.0])
        assert spec.n_workers == 3
        assert spec.speed_of(1) == 0.5

    def test_from_cpu_count_reserves_the_master(self):
        spec = ClusterSpec.from_cpu_count(16)
        assert spec.n_workers == 15
        with pytest.raises(SimulationError):
            ClusterSpec.from_cpu_count(1)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSpec(n_workers=0)
        with pytest.raises(SimulationError):
            NodeSpec(speed=0.0)
        with pytest.raises(SimulationError):
            ClusterSpec(n_workers=2, nodes=(NodeSpec(),))
        with pytest.raises(SimulationError):
            ClusterSpec.homogeneous(2).speed_of(5)


class TestNetworkModel:
    def test_transfer_time_is_latency_plus_bandwidth_term(self):
        network = NetworkModel(latency=1e-4, bandwidth=1e8)
        assert network.transfer_time(0) == pytest.approx(1e-4)
        assert network.transfer_time(10**6) == pytest.approx(1e-4 + 0.01)

    def test_monotone_in_size(self):
        network = gigabit_ethernet()
        assert network.transfer_time(10_000) > network.transfer_time(100)

    def test_validation(self):
        with pytest.raises(SimulationError):
            NetworkModel(latency=-1.0)
        with pytest.raises(SimulationError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(SimulationError):
            gigabit_ethernet().transfer_time(-5)


class TestNFSModel:
    def test_first_read_cold_then_warm(self):
        nfs = NFSModel(cold_latency=1e-3, warm_latency=1e-4, bandwidth=1e8)
        first = nfs.read_time("/portfolio/p1.pb", 1000)
        second = nfs.read_time("/portfolio/p1.pb", 1000)
        assert first > second
        assert first == pytest.approx(1e-3 + 1e-5)
        assert second == pytest.approx(1e-4 + 1e-5)
        assert nfs.is_cached("/portfolio/p1.pb")

    def test_distinct_paths_are_independent(self):
        nfs = NFSModel()
        nfs.read_time("/a", 100)
        assert not nfs.is_cached("/b")
        assert nfs.cached_count == 1

    def test_cache_can_be_disabled(self):
        nfs = NFSModel(cache_enabled=False)
        first = nfs.read_time("/a", 100)
        second = nfs.read_time("/a", 100)
        assert first == second
        assert nfs.cached_count == 0

    def test_warm_up_and_flush(self):
        nfs = NFSModel()
        nfs.warm_up(["/a", "/b"])
        assert nfs.cached_count == 2
        nfs.flush()
        assert nfs.cached_count == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            NFSModel(cold_latency=1e-4, warm_latency=1e-3)
        with pytest.raises(SimulationError):
            NFSModel(bandwidth=-1.0)
        with pytest.raises(SimulationError):
            NFSModel().read_time("/a", -1)


class TestCommunicationModel:
    def _job(self, size=1000):
        return Job(job_id=0, path="/portfolio/p.pb", file_size=size, compute_cost=0.1)

    def test_master_cost_ordering_matches_the_paper(self):
        """full load > serialized load > NFS on the master side."""
        comm = CommunicationModel()
        job = self._job()
        full = comm.master_prep_time("full_load", job)
        sload = comm.master_prep_time("serialized_load", job)
        nfs = comm.master_prep_time("nfs", job)
        assert full > sload > nfs

    def test_message_sizes(self):
        comm = CommunicationModel()
        job = self._job(size=5000)
        assert comm.message_nbytes("full_load", job) == 5000 + comm.message_header_bytes
        assert comm.message_nbytes("serialized_load", job) == 5000 + comm.message_header_bytes
        assert comm.message_nbytes("nfs", job) == comm.name_message_bytes

    def test_worker_cost_includes_nfs_read_only_for_nfs(self):
        comm = CommunicationModel()
        job = self._job()
        serialized = comm.worker_prep_time("serialized_load", job)
        nfs_cold = comm.worker_prep_time("nfs", job)
        assert nfs_cold > serialized
        # second read of the same file is cheaper (warm cache)
        nfs_warm = comm.worker_prep_time("nfs", job)
        assert nfs_warm < nfs_cold

    def test_unknown_strategy_rejected(self):
        comm = CommunicationModel()
        with pytest.raises(SimulationError):
            comm.master_prep_time("carrier_pigeon", self._job())
