"""Tests of the remote TCP backend and its loopback worker harness."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.api import BackendSpec, ValuationSession
from repro.cluster.backends import Job, PreparedMessage, PAYLOAD_SERIAL, create_backend
from repro.cluster.backends.remote import RemoteBackend, normalize_hosts
from repro.cluster.worker import spawn_local_workers
from repro.core import build_toy_portfolio
from repro.errors import (
    ClusterError,
    CollectTimeoutError,
    ValuationError,
    WorkerLostError,
)
from repro.pricing import PricingProblem
from repro.serial import serialize, xdr
from repro.serial.frames import FRAME_HELLO, encode_frame


def _make_problem(strike: float = 100.0) -> PricingProblem:
    problem = PricingProblem(label=f"remote_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _dispatch(backend: RemoteBackend, worker_id: int, job_id: int, problem) -> None:
    data = serialize(problem).to_bytes()
    backend.dispatch(
        worker_id,
        Job(job_id=job_id, path="", file_size=len(data), compute_cost=1e-3),
        PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data)),
    )


def _prices(run_result) -> list[float]:
    return [entry["price"] for entry in run_result.report.results.values()]


class TestNormalizeHosts:
    def test_strings_and_pairs(self):
        assert normalize_hosts(["h1:9631", ("h2", 9632)]) == ("h1:9631", "h2:9632")

    def test_single_string(self):
        assert normalize_hosts("localhost:9631") == ("localhost:9631",)

    @pytest.mark.parametrize(
        "bad",
        [[], ["no-port"], [":9631"], ["h:not-a-port"], ["h:0"], ["h:70000"], [1234], 42],
    )
    def test_rejects_bad_addresses(self, bad):
        with pytest.raises(ClusterError):
            normalize_hosts(bad)


class TestBackendSpecValidation:
    def test_remote_spec_needs_hosts(self):
        with pytest.raises(ValuationError, match="hosts"):
            BackendSpec(name="remote")
        with pytest.raises(ValuationError, match="hosts"):
            BackendSpec(name="remote", options={"hosts": []})

    def test_remote_spec_normalizes_and_stays_hashable(self):
        spec = BackendSpec(name="remote", options={"hosts": [("10.0.0.4", 9631)]})
        assert dict(spec.options)["hosts"] == ("10.0.0.4:9631",)
        hash(spec)  # a raw list value would make the frozen spec unhashable

    def test_remote_spec_bad_address_fails_at_spec_time(self):
        with pytest.raises(ValuationError, match="not 'host:port'"):
            BackendSpec(name="remote", options={"hosts": ["noport"]})

    def test_factory_without_hosts(self):
        with pytest.raises(ClusterError, match="hosts"):
            create_backend("remote")

    def test_connect_refused(self):
        # grab a port that is certainly not listening
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ClusterError, match="cannot connect"):
            RemoteBackend([f"127.0.0.1:{port}"], connect_timeout=2.0)


class TestLoopbackPool:
    def test_dispatch_collect_cycle(self):
        with spawn_local_workers(2) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            assert backend.n_workers == 2
            problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
            for index, problem in enumerate(problems):
                _dispatch(backend, index % 2, index, problem)
            collected = sorted(
                (backend.collect(timeout=60.0) for _ in range(3)),
                key=lambda done: done.job_id,
            )
            assert [done.error for done in collected] == [None, None, None]
            reference = [p.compute().price for p in problems]
            assert [done.result["price"] for done in collected] == reference
            stats = backend.finalize()
            assert stats.n_jobs == 3
            assert stats.bytes_sent > 0

    def test_collect_without_dispatch_raises(self):
        with spawn_local_workers(1) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            with pytest.raises(ClusterError, match="no job in flight"):
                backend.collect(timeout=1.0)
            backend.finalize()

    def test_poll_and_try_collect(self):
        with spawn_local_workers(1) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            assert backend.poll() is False
            assert backend.try_collect() is None
            _dispatch(backend, 0, 0, _make_problem())
            done = backend.collect(timeout=60.0)
            assert done.job_id == 0 and done.error is None
            assert backend.poll() is False
            backend.finalize()

    def test_untransmissible_result_degrades_to_error_answer(self, monkeypatch):
        # a result the XDR codec cannot encode must come back as an error
        # frame, not kill the worker (the master would redispatch the poison
        # job through every survivor)
        import repro.cluster.backends.execution as execution
        from repro.cluster.worker import serve
        from repro.serial.frames import FRAME_JOB, FRAME_RESULT, read_frame

        monkeypatch.setattr(
            execution, "execute_payload",
            lambda kind, payload, cache=None: ({"price": object()}, 0.0, None),
        )
        ports: list[int] = []
        listening = threading.Event()

        def _ready(port):
            ports.append(port)
            listening.set()

        thread = threading.Thread(
            target=serve,
            kwargs={"host": "127.0.0.1", "port": 0, "once": True, "ready": _ready},
            daemon=True,
        )
        thread.start()
        assert listening.wait(10.0)
        with socket.create_connection(("127.0.0.1", ports[0]), timeout=10.0) as conn:
            assert read_frame(conn.recv)[0] == FRAME_HELLO
            payload = serialize(_make_problem()).to_bytes()
            conn.sendall(encode_frame(
                FRAME_JOB,
                xdr.encode({"job_id": 5, "kind": PAYLOAD_SERIAL, "payload": payload}),
            ))
            kind, answer = read_frame(conn.recv)
            assert kind == FRAME_RESULT
            decoded = xdr.decode(answer)
            assert decoded["job_id"] == 5
            assert decoded["result"] is None
            assert "not transmissible" in decoded["error"]
        thread.join(timeout=10.0)

    def test_worker_errors_are_captured_not_fatal(self):
        with spawn_local_workers(1) as pool:
            backend = create_backend("remote", hosts=pool.hosts)
            payload = serialize([1, 2, 3]).to_bytes()  # decodes, but not a problem
            backend.dispatch(
                0,
                Job(job_id=0, path="", file_size=8, compute_cost=1e-3),
                PreparedMessage(kind=PAYLOAD_SERIAL, payload=payload, nbytes=8),
            )
            done = backend.collect(timeout=60.0)
            assert done.result is None
            assert "ClusterError" in done.error
            # the worker survived the bad job and prices the next one
            _dispatch(backend, 0, 1, _make_problem())
            assert backend.collect(timeout=60.0).error is None
            backend.finalize()


class TestSessionOverRemote:
    def test_run_bit_identical_to_sequential(self):
        portfolio = build_toy_portfolio(n_options=10)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(2) as pool:
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts}
            )
            remote = session.run(portfolio)
        assert not remote.report.errors
        assert _prices(remote) == _prices(reference)

    def test_stream_and_batch_over_remote(self):
        portfolio = build_toy_portfolio(n_options=10)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(2) as pool:
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts}
            )
            streamed = session.stream(portfolio, batch=True)
            collected = [price.price for price in streamed]
            assert len(collected) == len(portfolio)
            assert _prices(streamed.result()) == _prices(reference)

    def test_submit_many_futures_over_remote(self):
        problems = [_make_problem(k) for k in (90.0, 95.0, 100.0, 105.0)]
        reference = [p.compute().price for p in [_make_problem(k) for k in (90.0, 95.0, 100.0, 105.0)]]
        with spawn_local_workers(2) as pool:
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts}
            )
            futures = session.submit_many(problems)
            assert futures[2].result(timeout=60.0)["price"] == pytest.approx(reference[2])
            by_completion = [future.price() for future in futures.as_completed()]
            assert sorted(by_completion) == sorted(reference)
            session.gather()

    def test_multiple_runs_reuse_the_worker_pool(self):
        # a name/spec session builds a fresh backend per run; the workers
        # must keep accepting connections after a clean stop frame
        portfolio = build_toy_portfolio(n_options=4)
        with spawn_local_workers(2) as pool:
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts}
            )
            first = session.run(portfolio)
            second = session.run(portfolio)
        assert _prices(first) == _prices(second)


class TestWorkerDeath:
    def test_run_survives_one_worker_death(self):
        portfolio = build_toy_portfolio(n_options=24)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(3) as pool:
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts}
            )
            streamed = session.stream(portfolio)
            iterator = iter(streamed)
            next(iterator)  # the run is underway
            pool.kill(2)  # hard node failure
            for _ in iterator:
                pass
            result = streamed.result()
        assert not result.report.errors
        assert _prices(result) == _prices(reference)

    def test_losing_every_worker_raises_retryable_error(self):
        # deterministic total-pool loss: both "workers" greet correctly and
        # then drop the connection without ever answering a job
        hello = encode_frame(FRAME_HELLO, xdr.encode({"role": "repro-worker"}))
        servers, threads, ports = [], [], []
        hold = threading.Event()

        def _dying_worker(server):
            conn, _ = server.accept()
            conn.sendall(hello)
            hold.wait(30.0)  # let both connections establish first
            conn.close()

        for _ in range(2):
            server = socket.socket()
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            servers.append(server)
            ports.append(server.getsockname()[1])
            thread = threading.Thread(target=_dying_worker, args=(server,), daemon=True)
            thread.start()
            threads.append(thread)
        try:
            backend = RemoteBackend(
                [f"127.0.0.1:{port}" for port in ports], connect_timeout=5.0
            )
            problem = _make_problem()
            with pytest.raises(WorkerLostError) as excinfo:
                _dispatch(backend, 0, 0, problem)
                _dispatch(backend, 1, 1, problem)
                hold.set()  # both workers now die with the jobs in flight
                for _ in range(2):
                    backend.collect(timeout=30.0)
            assert isinstance(excinfo.value, ClusterError)  # retryable family
            assert set(excinfo.value.job_ids) <= {0, 1}
        finally:
            hold.set()
            for server in servers:
                server.close()
            for thread in threads:
                thread.join(timeout=5.0)

    def test_undecodable_result_payload_buries_the_connection(self):
        # a peer that frames correctly but answers garbage is a lost worker,
        # not a crashed run; with no survivors that surfaces as WorkerLostError
        from repro.serial.frames import FRAME_RESULT

        hello = encode_frame(FRAME_HELLO, xdr.encode({"role": "repro-worker"}))
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def _confused_worker():
            conn, _ = server.accept()
            conn.sendall(hello)
            conn.recv(1 << 20)  # swallow the job
            conn.sendall(encode_frame(FRAME_RESULT, b"this is not xdr"))
            conn.close()

        thread = threading.Thread(target=_confused_worker, daemon=True)
        thread.start()
        try:
            backend = RemoteBackend([f"127.0.0.1:{port}"], connect_timeout=5.0)
            _dispatch(backend, 0, 0, _make_problem())
            with pytest.raises(WorkerLostError):
                backend.collect(timeout=30.0)
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_collect_timeout_on_silent_worker(self):
        # a "worker" that greets correctly and then never answers
        hello = encode_frame(FRAME_HELLO, xdr.encode({"role": "repro-worker"}))
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        stop = threading.Event()

        def _mute_worker():
            conn, _ = server.accept()
            conn.sendall(hello)
            stop.wait(30.0)
            conn.close()

        thread = threading.Thread(target=_mute_worker, daemon=True)
        thread.start()
        try:
            backend = RemoteBackend([f"127.0.0.1:{port}"], connect_timeout=5.0)
            _dispatch(backend, 0, 0, _make_problem())
            with pytest.raises(CollectTimeoutError):
                backend.collect(timeout=0.2)
        finally:
            stop.set()
            server.close()
            thread.join(timeout=5.0)

    def test_handshake_rejects_non_worker(self):
        # a listener that speaks anything but the frame protocol
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def _imposter():
            conn, _ = server.accept()
            conn.sendall(b"HTTP/1.1 200 OK\r\n\r\n")
            conn.close()

        thread = threading.Thread(target=_imposter, daemon=True)
        thread.start()
        try:
            with pytest.raises(ClusterError, match="handshake|hello"):
                RemoteBackend([f"127.0.0.1:{port}"], connect_timeout=5.0)
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestMultiProcessServer:
    """repro-worker --workers N: several pricing processes, one socket."""

    def test_one_server_serves_two_parallel_slaves(self):
        portfolio = build_toy_portfolio(n_options=8)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(1, workers_per_server=2) as pool:
            # the master lists the single address twice: the kernel load-
            # balances the two connections across the forked children
            session = ValuationSession(
                backend="remote", backend_options={"hosts": pool.hosts * 2}
            )
            remote = session.run(portfolio)
            assert remote.prices() == reference.prices()
            assert remote.report.n_workers == 2

    def test_chunked_scheduling_over_a_multi_process_server(self):
        from repro.core.scheduler import ChunkedRobinHoodScheduler

        portfolio = build_toy_portfolio(n_options=8)
        reference = ValuationSession(backend="local").run(portfolio)
        with spawn_local_workers(1, workers_per_server=2) as pool:
            session = ValuationSession(
                backend="remote",
                backend_options={"hosts": pool.hosts * 2},
                scheduler=ChunkedRobinHoodScheduler(chunk_size=3),
            )
            assert session.run(portfolio).prices() == reference.prices()

    def test_workers_must_be_positive(self):
        from repro.cluster.worker import serve

        with pytest.raises(ClusterError, match="workers"):
            serve(port=0, workers=0)

    def test_spawn_rejects_bad_workers_per_server(self):
        with pytest.raises(ClusterError, match="workers_per_server"):
            spawn_local_workers(1, workers_per_server=0)


class TestChunkOversizeFallback:
    def test_oversized_chunk_falls_back_to_per_job_frames(self, monkeypatch):
        # a chunk whose combined payload overflows the frame guard must
        # degrade to per-job FRAME_JOB dispatch, not kill the run
        from repro.cluster.backends import remote as remote_mod
        from repro.errors import SerializationError

        real_encode = remote_mod.encode_frame

        def overflowing(kind, payload=b"", **kwargs):
            if kind == remote_mod.FRAME_JOB_BATCH:
                raise SerializationError("frame payload exceeds the limit")
            return real_encode(kind, payload, **kwargs)

        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        reference = [p.compute().price for p in problems]
        with spawn_local_workers(1) as pool:
            backend = RemoteBackend(pool.hosts)
            monkeypatch.setattr(remote_mod, "encode_frame", overflowing)
            jobs, messages = [], []
            for index, problem in enumerate(problems):
                data = serialize(problem).to_bytes()
                jobs.append(Job(job_id=index, path="", file_size=len(data),
                                compute_cost=1e-3))
                messages.append(PreparedMessage(kind=PAYLOAD_SERIAL,
                                                payload=data, nbytes=len(data)))
            backend.dispatch_batch(0, jobs, messages)
            collected = {c.job_id: c for c in (backend.collect() for _ in range(3))}
            backend.finalize()
        assert [collected[i].result["price"] for i in range(3)] == reference
