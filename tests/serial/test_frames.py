"""Tests of the length-prefixed remote-worker frame protocol."""

from __future__ import annotations

import io
import struct

import pytest

from repro.errors import SerializationError
from repro.serial import xdr
from repro.serial.frames import (
    FRAME_HEADER_BYTES,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_RESULT,
    FRAME_STOP,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameAssembler,
    decode_header,
    encode_frame,
    read_frame,
)


def _reader(data: bytes, chunk: int = 65536):
    """A ``read(n)`` callable over a byte string, like ``socket.recv``."""
    stream = io.BytesIO(data)
    return lambda n: stream.read(min(n, chunk))


class TestEncodeDecode:
    def test_header_round_trip(self):
        frame = encode_frame(FRAME_JOB, b"abc")
        kind, length = decode_header(frame[:FRAME_HEADER_BYTES])
        assert (kind, length) == (FRAME_JOB, 3)
        assert frame[FRAME_HEADER_BYTES:] == b"abc"

    def test_empty_payload(self):
        frame = encode_frame(FRAME_STOP)
        assert len(frame) == FRAME_HEADER_BYTES
        assert decode_header(frame) == (FRAME_STOP, 0)

    def test_xdr_payload_round_trip(self):
        payload = xdr.encode({"job_id": 7, "kind": "serial", "payload": b"\x00\x01"})
        frame = encode_frame(FRAME_RESULT, payload)
        kind, length = decode_header(frame[:FRAME_HEADER_BYTES])
        assert kind == FRAME_RESULT
        assert xdr.decode(frame[FRAME_HEADER_BYTES:]) == {
            "job_id": 7, "kind": "serial", "payload": b"\x00\x01",
        }

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(SerializationError, match="unknown frame kind"):
            encode_frame(42, b"")

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(SerializationError, match="exceeds"):
            encode_frame(FRAME_JOB, b"x" * 17, max_bytes=16)
        assert encode_frame(FRAME_JOB, b"x" * 16, max_bytes=16)

    def test_default_limit_is_generous(self):
        assert MAX_FRAME_BYTES >= 8 * 1024 * 1024


class TestHeaderValidation:
    def test_truncated_header(self):
        frame = encode_frame(FRAME_STOP)
        with pytest.raises(SerializationError, match="truncated frame header"):
            decode_header(frame[: FRAME_HEADER_BYTES - 1])

    def test_bad_magic(self):
        frame = bytearray(encode_frame(FRAME_STOP))
        frame[:4] = b"HTTP"
        with pytest.raises(SerializationError, match="bad frame magic"):
            decode_header(bytes(frame))

    def test_version_mismatch(self):
        header = struct.pack(">4sHHI", b"RWF\x01", PROTOCOL_VERSION + 1, FRAME_STOP, 0)
        with pytest.raises(SerializationError, match="version mismatch"):
            decode_header(header)

    def test_unknown_kind(self):
        header = struct.pack(">4sHHI", b"RWF\x01", PROTOCOL_VERSION, 99, 0)
        with pytest.raises(SerializationError, match="unknown frame kind"):
            decode_header(header)

    def test_oversized_announcement_rejected_before_payload(self):
        # the header alone must be enough to refuse: no payload bytes exist
        header = struct.pack(
            ">4sHHI", b"RWF\x01", PROTOCOL_VERSION, FRAME_JOB, MAX_FRAME_BYTES + 1
        )
        with pytest.raises(SerializationError, match="above the"):
            decode_header(header)


class TestFrameAssembler:
    def test_byte_by_byte_feed(self):
        frames = encode_frame(FRAME_HELLO, b"hi") + encode_frame(FRAME_STOP)
        assembler = FrameAssembler()
        out = []
        for index in range(len(frames)):
            assembler.feed(frames[index : index + 1])
            out.extend(assembler)
        assert out == [(FRAME_HELLO, b"hi"), (FRAME_STOP, b"")]
        assert assembler.pending_bytes == 0

    def test_pop_returns_none_when_incomplete(self):
        assembler = FrameAssembler()
        assembler.feed(encode_frame(FRAME_JOB, b"abcdef")[:-2])
        assert assembler.pop() is None
        assert assembler.pending_bytes > 0

    def test_many_frames_in_one_feed(self):
        blob = b"".join(encode_frame(FRAME_RESULT, bytes([i])) for i in range(10))
        assembler = FrameAssembler()
        assembler.feed(blob)
        assert [payload for _, payload in assembler] == [bytes([i]) for i in range(10)]

    def test_corrupted_stream_raises(self):
        assembler = FrameAssembler()
        with pytest.raises(SerializationError):
            assembler.feed(b"garbage-that-is-long-enough-to-be-a-header")

    def test_assembler_honours_max_bytes(self):
        frame = encode_frame(FRAME_JOB, b"x" * 64)
        assembler = FrameAssembler(max_bytes=16)
        with pytest.raises(SerializationError, match="above the"):
            assembler.feed(frame)


class TestReadFrame:
    def test_round_trip(self):
        data = encode_frame(FRAME_JOB, b"payload") + encode_frame(FRAME_STOP)
        read = _reader(data)
        assert read_frame(read) == (FRAME_JOB, b"payload")
        assert read_frame(read) == (FRAME_STOP, b"")

    def test_clean_eof_returns_none(self):
        assert read_frame(_reader(b"")) is None

    def test_eof_mid_header_raises(self):
        data = encode_frame(FRAME_STOP)[: FRAME_HEADER_BYTES - 3]
        with pytest.raises(SerializationError, match="closed mid-frame"):
            read_frame(_reader(data))

    def test_eof_mid_payload_raises(self):
        data = encode_frame(FRAME_JOB, b"x" * 100)[:-1]
        with pytest.raises(SerializationError, match="closed mid-frame"):
            read_frame(_reader(data))

    def test_short_reads_are_retried(self):
        # recv-style reads returning one byte at a time still assemble a frame
        data = encode_frame(FRAME_HELLO, b"abc")
        assert read_frame(_reader(data, chunk=1)) == (FRAME_HELLO, b"abc")


class TestBatchFrames:
    def test_job_batch_is_a_known_kind(self):
        from repro.serial.frames import FRAME_JOB_BATCH

        payload = xdr.encode(
            {"jobs": [{"job_id": 0, "kind": "serial", "payload": b"x"},
                      {"job_id": 1, "kind": "serial", "payload": b"y"}]}
        )
        frame = encode_frame(FRAME_JOB_BATCH, payload)
        kind, length = decode_header(frame[:FRAME_HEADER_BYTES])
        assert kind == FRAME_JOB_BATCH
        decoded = xdr.decode(frame[FRAME_HEADER_BYTES:])
        assert [entry["job_id"] for entry in decoded["jobs"]] == [0, 1]

    def test_protocol_version_gates_batch_frames(self):
        # FRAME_JOB_BATCH arrived with v2: a v1 peer must be refused at the
        # header, before any payload is read
        assert PROTOCOL_VERSION >= 2
        header = struct.pack(">4sHHI", b"RWF\x01", 1, FRAME_JOB, 0)
        with pytest.raises(SerializationError, match="version mismatch"):
            decode_header(header)
