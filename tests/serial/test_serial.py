"""Tests of the Serial object (serialization + compression)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serial import Serial, serialize, unserialize


class TestSerial:
    def test_roundtrip(self):
        value = {"a": [1, 2, 3], "b": "text", "c": np.arange(4.0)}
        serial = serialize(value)
        back = serial.unserialize()
        assert back["a"] == [1, 2, 3]
        np.testing.assert_array_equal(back["c"], np.arange(4.0))

    def test_repr_shows_size(self):
        serial = serialize(list(range(100)))
        assert "bytes" in repr(serial)
        assert serial.nbytes == len(serial)

    def test_compression_roundtrip(self):
        value = list(range(1000))
        serial = serialize(value)
        compressed = serial.compress()
        assert compressed.is_compressed
        assert compressed.nbytes < serial.nbytes
        assert compressed.unserialize() == value
        assert compressed.uncompress().unserialize() == value

    def test_paper_compression_example(self):
        """The Nsp session of the paper: 1:100 compresses well."""
        serial = serialize(list(range(1, 101)))
        compressed = serial.compress()
        assert compressed.nbytes < serial.nbytes / 2

    def test_compress_is_idempotent(self):
        serial = serialize([1.0] * 100).compress()
        assert serial.compress() is serial

    def test_uncompress_on_raw_is_noop(self):
        serial = serialize([1, 2, 3])
        assert serial.uncompress() is serial

    def test_to_bytes_roundtrip(self):
        serial = serialize({"x": 1})
        clone = Serial.from_bytes(serial.to_bytes())
        assert clone == serial
        assert clone.unserialize() == {"x": 1}

    def test_to_bytes_roundtrip_compressed(self):
        serial = serialize(list(range(500))).compress()
        clone = Serial.from_bytes(serial.to_bytes())
        assert clone.is_compressed
        assert clone.unserialize() == list(range(500))

    def test_equality_and_hash(self):
        a = serialize([1, 2, 3])
        b = serialize([1, 2, 3])
        c = serialize([1, 2, 4])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != a.compress()

    def test_invalid_magic(self):
        with pytest.raises(SerializationError):
            Serial.from_bytes(b"XXXXpayload")
        with pytest.raises(SerializationError):
            Serial.from_bytes(b"xy")

    def test_unserialize_free_function(self):
        serial = serialize({"k": 7})
        assert unserialize(serial) == {"k": 7}
        assert unserialize(serial.to_bytes()) == {"k": 7}
        with pytest.raises(SerializationError):
            unserialize(12345)

    def test_problem_serialization(self, simple_problem):
        """Pricing problems (the paper's PremiaModel objects) serialize."""
        serial = serialize(simple_problem)
        clone = serial.unserialize()
        assert clone == simple_problem
        clone.compute()
        assert clone.get_method_results().price == pytest.approx(10.450584, abs=1e-6)

    def test_problem_with_results_serializes(self, simple_problem):
        simple_problem.compute()
        clone = serialize(simple_problem).unserialize()
        assert clone.get_method_results().price == pytest.approx(
            simple_problem.get_method_results().price
        )


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.integers(-1000, 1000), st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=20)),
        max_size=30,
    )
)
def test_serialize_compress_roundtrip_property(values):
    serial = serialize(values)
    assert serial.unserialize() == values
    assert serial.compress().unserialize() == values
    assert Serial.from_bytes(serial.compress().to_bytes()).unserialize() == values
