"""Tests of the XDR-style encoder/decoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serial import xdr


SIMPLE_VALUES = [
    None,
    True,
    False,
    0,
    42,
    -(2**40),
    2**62,
    0.0,
    3.141592653589793,
    -1e-300,
    float("inf"),
    "",
    "hello",
    "accented é à ü and emoji ✓",
    b"",
    b"\x00\x01\x02binary\xff",
    [],
    [1, 2, 3],
    ["mixed", 1, 2.5, None, True],
    [[1, 2], [3, [4, 5]]],
    {},
    {"a": 1, "b": "two", "c": [3.0, None]},
    {"nested": {"x": {"y": [1, 2, 3]}}},
]


@pytest.mark.parametrize("value", SIMPLE_VALUES, ids=[repr(v)[:40] for v in SIMPLE_VALUES])
def test_roundtrip_simple_values(value):
    assert xdr.decode(xdr.encode(value)) == value


def test_tuple_becomes_list():
    assert xdr.decode(xdr.encode((1, 2, 3))) == [1, 2, 3]


@pytest.mark.parametrize(
    "array",
    [
        np.arange(10, dtype=float),
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.array([True, False, True]),
        np.random.default_rng(0).normal(size=(2, 3, 4)),
        np.array([], dtype=float),
        np.arange(5, dtype=np.int32),
        np.arange(5, dtype=np.float32),
    ],
)
def test_roundtrip_arrays(array):
    decoded = xdr.decode(xdr.encode(array))
    np.testing.assert_allclose(decoded, array)
    assert decoded.shape == array.shape


def test_array_inside_containers():
    value = {"matrix": np.eye(3), "list": [np.arange(4.0)]}
    decoded = xdr.decode(xdr.encode(value))
    np.testing.assert_allclose(decoded["matrix"], np.eye(3))
    np.testing.assert_allclose(decoded["list"][0], np.arange(4.0))


def test_encoding_is_deterministic():
    value = {"a": [1, 2.5, "x"], "b": np.arange(6).reshape(2, 3).astype(float)}
    assert xdr.encode(value) == xdr.encode(value)


def test_golden_bytes_stable_across_versions():
    """The byte layout is part of the file-format contract (saved portfolios
    must stay loadable); pin a few encodings."""
    assert xdr.encode(None) == b"N"
    assert xdr.encode(True) == b"T"
    assert xdr.encode(1) == b"I" + (1).to_bytes(8, "big", signed=True)
    assert xdr.encode("ab") == b"S" + (2).to_bytes(4, "big") + b"ab\x00\x00"
    assert xdr.encode([True, False]) == b"L" + (2).to_bytes(4, "big") + b"TF"


def test_unsupported_type_raises():
    with pytest.raises(SerializationError):
        xdr.encode(object())
    with pytest.raises(SerializationError):
        xdr.encode({1: "non-string key"})
    with pytest.raises(SerializationError):
        xdr.encode(np.array(["strings"], dtype=object))
    with pytest.raises(SerializationError):
        xdr.encode(2**80)


def test_truncated_stream_raises():
    data = xdr.encode({"a": [1, 2, 3]})
    with pytest.raises(SerializationError):
        xdr.decode(data[:-3])


def test_trailing_bytes_raise():
    data = xdr.encode(42) + b"extra"
    with pytest.raises(SerializationError):
        xdr.decode(data)


def test_unknown_tag_raises():
    with pytest.raises(SerializationError):
        xdr.decode(b"Zgarbage")


def test_object_codec_registration_roundtrip():
    class Point:
        def __init__(self, x, y):
            self.x, self.y = x, y

        def __eq__(self, other):
            return (self.x, self.y) == (other.x, other.y)

    xdr.register_codec(
        "TestPoint", Point, lambda p: {"x": p.x, "y": p.y}, lambda d: Point(d["x"], d["y"])
    )
    assert "TestPoint" in xdr.registered_type_names()
    assert xdr.decode(xdr.encode(Point(1.5, -2.0))) == Point(1.5, -2.0)


def test_unregistered_object_type_in_stream():
    class Weird:
        pass

    xdr.register_codec("Ephemeral", Weird, lambda w: {}, lambda d: Weird())
    data = xdr.encode(Weird())
    # simulate a reader that does not know the codec
    del xdr._CODECS["Ephemeral"]
    del xdr._CLASS_TO_NAME[Weird]
    with pytest.raises(SerializationError):
        xdr.decode(data)


def test_pricing_problem_codec(simple_problem):
    """Importing repro.serial registers the PricingProblem codec."""
    decoded = xdr.decode(xdr.encode(simple_problem))
    assert decoded == simple_problem


# ---------------------------------------------------------------------------
# property-based roundtrips
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(value=_values)
def test_roundtrip_property(value):
    assert xdr.decode(xdr.encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=0, max_size=64),
    rows=st.integers(min_value=1, max_value=8),
)
def test_array_roundtrip_property(data, rows):
    if len(data) % rows:
        data = data + [0.0] * (rows - len(data) % rows)
    array = np.asarray(data, dtype=float).reshape(rows, -1) if data else np.zeros((rows, 0))
    decoded = xdr.decode(xdr.encode(array))
    np.testing.assert_array_equal(decoded, array)


@settings(max_examples=100, deadline=None)
@given(value=_values)
def test_encoding_deterministic_property(value):
    assert xdr.encode(value) == xdr.encode(value)
