"""Tests of save / load / sload and the ProblemStore."""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.pricing import PricingProblem
from repro.serial import ProblemStore, Serial, load, save, sload


def _make_problem(strike: float) -> PricingProblem:
    problem = PricingProblem(label=f"call_{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


class TestSaveLoadSload:
    def test_save_load_roundtrip(self, tmp_path, simple_problem):
        path = tmp_path / "fic"
        nbytes = save(path, simple_problem)
        assert nbytes == path.stat().st_size
        assert load(path) == simple_problem

    def test_sload_returns_serial_without_building(self, tmp_path, simple_problem):
        """The paper's Fig. 2: sload goes straight from file to Serial."""
        path = tmp_path / "fic"
        save(path, simple_problem)
        serial = sload(path)
        assert isinstance(serial, Serial)
        assert serial.unserialize() == simple_problem

    def test_sload_equals_paper_workflow(self, tmp_path):
        """H1 = sload(f).unserialize() equals load(f) (the Fig. 2 session)."""
        path = tmp_path / "saved.bin"
        value = {"A": [[1.0, 2.0], [3.0, 4.0]], "B": [0.5]}
        save(path, value)
        assert sload(path).unserialize() == load(path)

    def test_compressed_save(self, tmp_path):
        value = {"data": list(range(2000))}
        raw_size = save(tmp_path / "raw", value, compress=False)
        compressed_size = save(tmp_path / "compressed", value, compress=True)
        assert compressed_size < raw_size
        assert load(tmp_path / "compressed") == value
        # sload keeps the compressed payload as-is (decompression happens on
        # the worker, as the paper suggests for off-line prepared problems)
        assert sload(tmp_path / "compressed").is_compressed

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            sload(tmp_path / "does_not_exist")

    def test_corrupted_file(self, tmp_path):
        path = tmp_path / "corrupted"
        path.write_bytes(b"not a serial at all")
        with pytest.raises(SerializationError):
            load(path)

    def test_save_creates_directories(self, tmp_path, simple_problem):
        path = tmp_path / "deep" / "nested" / "fic"
        save(path, simple_problem)
        assert path.exists()


class TestProblemStore:
    def test_write_and_read_back(self, tmp_path):
        store = ProblemStore(tmp_path / "portfolio")
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        paths = store.write_all(problems)
        assert len(paths) == 3
        assert len(store) == 3
        assert store.load(1) == problems[1]
        assert store.sload(2).unserialize() == problems[2]
        assert [p for p in store.load_all()] == problems

    def test_paths_ordered_by_index(self, tmp_path):
        store = ProblemStore(tmp_path / "portfolio")
        store.write_all([_make_problem(k) for k in (90.0, 100.0, 110.0)])
        names = [path.name for path in store.paths()]
        assert names == sorted(names)
        assert names[0].startswith("problem_")

    def test_total_bytes_and_clear(self, tmp_path):
        store = ProblemStore(tmp_path / "portfolio")
        store.write_all([_make_problem(100.0)])
        assert store.total_bytes() > 0
        store.clear()
        assert len(store) == 0
        assert store.total_bytes() == 0

    def test_custom_prefix(self, tmp_path):
        store = ProblemStore(tmp_path / "portfolio", prefix="toy_")
        path = store.write(7, _make_problem(100.0))
        assert path.name == "toy_000007.pb"
        assert store.path_for(7) == path

    def test_iteration(self, tmp_path):
        store = ProblemStore(tmp_path / "portfolio")
        store.write_all([_make_problem(k) for k in (90.0, 95.0)])
        assert len(list(iter(store))) == 2

    def test_compressed_store(self, tmp_path):
        plain = ProblemStore(tmp_path / "plain")
        packed = ProblemStore(tmp_path / "packed")
        problems = [_make_problem(k) for k in (90.0, 100.0, 110.0)]
        plain.write_all(problems, compress=False)
        packed.write_all(problems, compress=True)
        assert packed.total_bytes() < plain.total_bytes()
        assert packed.load_all() == problems
