"""Tests of the lazy top-level ``repro`` namespace (PEP 562 ``__getattr__``)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro


class TestLazyNamespace:
    def test_all_advertised_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_dir_covers_lazy_names(self):
        listing = dir(repro)
        for name in ("ValuationSession", "PricingProblem", "Portfolio", "run_portfolio"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'frobnicate'"):
            repro.frobnicate

    def test_facade_and_engine_are_the_canonical_objects(self):
        from repro.api.session import ValuationSession
        from repro.pricing.engine import PricingProblem

        assert repro.ValuationSession is ValuationSession
        assert repro.PricingProblem is PricingProblem

    def test_errors_subpackage_attribute(self):
        assert repro.errors.ReproError is not None

    def test_import_repro_stays_light(self):
        """``import repro`` must not drag in the heavy subpackages."""
        code = (
            "import sys, repro; "
            "heavy = [m for m in sys.modules "
            " if m.startswith(('repro.pricing', 'repro.cluster', 'repro.core', 'repro.api'))]; "
            "print(','.join(heavy) or 'CLEAN')"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert result.stdout.strip() == "CLEAN"
