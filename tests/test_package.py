"""Package-level tests: version, exception hierarchy, CLI parser, public API."""

from __future__ import annotations

import pytest

import repro
from repro import errors
from repro.cli import build_parser


class TestVersion:
    def test_version_exposed(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])

    def test_pyproject_version_matches(self):
        from pathlib import Path

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        if not pyproject.exists():  # installed from a wheel
            pytest.skip("source tree not available")
        assert f'version = "{repro.__version__}"' in pyproject.read_text()


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.ReproError), name

    def test_catching_the_base_class(self):
        from repro.pricing import PricingProblem

        with pytest.raises(errors.ReproError):
            PricingProblem().set_model("NoSuchModel")

    def test_specific_errors_are_distinct(self):
        assert not issubclass(errors.PricingError, errors.ClusterError)
        assert issubclass(errors.IncompatibleMethodError, errors.PricingError)
        assert issubclass(errors.CommunicatorError, errors.ClusterError)


class TestCLIParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, type(parser._subparsers._group_actions[0]))
        )
        commands = set(subparsers.choices)
        assert {"list", "price", "table1", "table2", "table3", "run"} <= commands

    def test_price_defaults(self):
        args = build_parser().parse_args(["price"])
        assert args.model == "BlackScholes1D"
        assert args.spot == 100.0

    def test_table_accepts_cpu_list(self):
        args = build_parser().parse_args(["table3", "--cpus", "2", "16", "256"])
        assert args.cpus == [2, 16, 256]


class TestPublicAPI:
    def test_core_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_pricing_exports(self):
        import repro.pricing as pricing

        for name in pricing.__all__:
            assert hasattr(pricing, name), name

    def test_cluster_exports(self):
        import repro.cluster as cluster

        for name in cluster.__all__:
            assert hasattr(cluster, name), name

    def test_serial_exports(self):
        import repro.serial as serial

        for name in serial.__all__:
            assert hasattr(serial, name), name
