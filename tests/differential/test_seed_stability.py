"""Seed stability: the stacked kernel's random stream is pinned by digest.

The differential suite proves the stacked kernel agrees with the loop
kernel -- but both could drift *together* (a numpy upgrade changing the
bit-stream, an accidental extra draw) and still agree.  These tests pin the
SHA-256 digest of the raw base-generator draws for three fixed seeds, so
any change to what is drawn -- order, shape, count or content -- fails
loudly even if it is internally consistent.
"""

from __future__ import annotations

from repro.pricing.kernel import draw_digest
from repro.pricing.methods.montecarlo import MonteCarloEuropean
from repro.pricing.models import BlackScholesModel
from repro.pricing.products import AsianCall, DigitalCall, EuropeanCall, EuropeanPut

#: seed -> (terminal-mode digest, paths-mode digest); regenerate ONLY for an
#: intentional, documented change of the sampling scheme
PINNED_DIGESTS = {
    0: (
        "2ec90204e0bff6642584cff42803fbb6561575f80a9f76b230c6ee358ef3c7a3",
        "a6bf7f1a04b78179d7cb9562aaa1d1ad0ccf8489a5405e7d24db14198b0eeb8f",
    ),
    1: (
        "6e8252d8ccfdb7ce0f700a3443e506fc92b4a4214089e47080e89b7aa64c9cae",
        "e2bad8135df48fbcc2ce374d6ef3ae3822870650ad4a965dd10866bfe6e2fd2a",
    ),
    123456789: (
        "eda75dbe45705228663dad7daa71eeb394845378f4b4a4ed93bc2ed06895b859",
        "7797cab36937c84eaaa23457be7dff3918a356bfad8329c7469a206ed2e8be1c",
    ),
}

_MODEL = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)


def _terminal_digest(seed: int) -> str:
    method = MonteCarloEuropean(n_paths=2001, seed=seed, batch_size=1000)
    return draw_digest(method, _MODEL, [EuropeanCall(strike=100.0, maturity=1.0)])


def _paths_digest(seed: int) -> str:
    method = MonteCarloEuropean(n_paths=1001, n_steps=8, seed=seed, batch_size=512)
    return draw_digest(method, _MODEL, [AsianCall(strike=100.0, maturity=1.0, n_fixings=8)])


class TestSeedStability:
    def test_pinned_digests(self):
        for seed, (terminal_expected, paths_expected) in PINNED_DIGESTS.items():
            assert _terminal_digest(seed) == terminal_expected, f"seed {seed} (terminal)"
            assert _paths_digest(seed) == paths_expected, f"seed {seed} (paths)"

    def test_digests_distinct_across_seeds(self):
        digests = [_terminal_digest(seed) for seed in PINNED_DIGESTS]
        assert len(set(digests)) == len(digests)

    def test_digest_independent_of_payoffs(self):
        """The stream depends only on the simulation, never on the payoffs."""
        method = MonteCarloEuropean(n_paths=2001, seed=0, batch_size=1000)
        one = draw_digest(method, _MODEL, [EuropeanCall(strike=100.0, maturity=1.0)])
        other = draw_digest(
            method,
            _MODEL,
            [EuropeanPut(strike=90.0, maturity=1.0),
             DigitalCall(strike=110.0, maturity=1.0)],
        )
        assert one == other
        assert one == PINNED_DIGESTS[0][0]

    def test_digest_reproducible_within_process(self):
        assert _terminal_digest(1) == _terminal_digest(1)
