"""Differential harness: the stacked kernel is bit-exact against the loop.

Every test drives **both** kernels over the same inputs and asserts
``np.array_equal`` (exact IEEE-754 equality, zero ULP of slack) on prices,
standard errors, confidence intervals and -- through ``sample_sink`` -- on
the per-path payoff samples themselves.  ``pytest.approx`` is deliberately
absent from this file: the stacked kernel's contract is bit-exactness by
construction, and any drift, however small, is a bug.

The matrix crosses model x product-family x antithetic x odd/even path
counts x batch sizes x group shapes, so every family branch and every batch
accounting edge in the stacked engine is exercised against its loop twin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pricing.kernel import price_many_stacked, resolve_kernel, run_groups
from repro.pricing.methods.montecarlo import MonteCarloEuropean
from repro.pricing.models import (
    BlackScholesModel,
    CEVModel,
    HestonModel,
    MertonJumpModel,
    MultiAssetBlackScholesModel,
    SmileLocalVolModel,
    flat_correlation,
)
from repro.pricing.products import (
    AsianCall,
    AsianPut,
    BasketCall,
    BasketPut,
    DigitalCall,
    DigitalPut,
    DownOutCall,
    EuropeanCall,
    EuropeanPut,
    UpOutPut,
)


def _collecting_sink():
    """A sample_sink capturing ``member -> [payoff batches]``."""
    store: dict[int, list[np.ndarray]] = {}

    def sink(index: int, payoffs: np.ndarray) -> None:
        store.setdefault(index, []).append(np.array(payoffs, copy=True))

    return store, sink


def _samples(store: dict[int, list[np.ndarray]]) -> dict[int, np.ndarray]:
    return {index: np.concatenate(batches) for index, batches in store.items()}


def assert_results_bit_equal(loop_results, stacked_results):
    assert len(loop_results) == len(stacked_results)
    for loop_result, stacked_result in zip(loop_results, stacked_results):
        assert loop_result.price == stacked_result.price
        assert loop_result.std_error == stacked_result.std_error
        assert loop_result.confidence_interval == stacked_result.confidence_interval
        assert loop_result.n_evaluations == stacked_result.n_evaluations


def run_both(method, model, products):
    """Price through both kernels, asserting results AND samples bit-equal."""
    loop_store, loop_sink = _collecting_sink()
    stacked_store, stacked_sink = _collecting_sink()
    loop_results = method.price_many(
        model, products, kernel="loop", sample_sink=loop_sink
    )
    stacked_results = method.price_many(
        model, products, kernel="stacked", sample_sink=stacked_sink
    )
    assert_results_bit_equal(loop_results, stacked_results)
    loop_samples, stacked_samples = _samples(loop_store), _samples(stacked_store)
    assert loop_samples.keys() == stacked_samples.keys()
    for index in loop_samples:
        assert np.array_equal(loop_samples[index], stacked_samples[index]), (
            f"per-path samples diverge for member {index}"
        )
    return loop_results


MODELS = {
    "bs": lambda: BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
    "bs_div": lambda: BlackScholesModel(
        spot=95.0, rate=0.02, volatility=0.18, dividend=0.015
    ),
    "cev": lambda: CEVModel(spot=100.0, rate=0.03, volatility=0.2, beta=0.8),
    "smile": lambda: SmileLocalVolModel(spot=100.0, rate=0.01, base_volatility=0.22),
    "heston": lambda: HestonModel(
        spot=100.0, rate=0.02, v0=0.04, kappa=1.5, theta=0.05, sigma_v=0.4, rho=-0.6
    ),
    "merton": lambda: MertonJumpModel(
        spot=100.0, rate=0.02, volatility=0.2, jump_intensity=0.4,
        jump_mean=-0.08, jump_std=0.12,
    ),
}

PRODUCT_SETS = {
    "vanilla_mix": lambda: [
        EuropeanCall(strike=k, maturity=1.0) for k in (80.0, 100.0, 120.0)
    ]
    + [EuropeanPut(strike=100.0, maturity=1.0)]
    + [DigitalCall(strike=105.0, maturity=1.0), DigitalPut(strike=95.0, maturity=1.0)],
    "asian": lambda: [
        AsianCall(strike=k, maturity=1.0, n_fixings=12) for k in (90.0, 100.0, 110.0)
    ]
    + [AsianPut(strike=100.0, maturity=1.0, n_fixings=12)],
    "barrier": lambda: [
        DownOutCall(strike=100.0, maturity=1.0, barrier=b) for b in (70.0, 85.0)
    ]
    + [UpOutPut(strike=100.0, maturity=1.0, barrier=130.0, rebate=2.0)],
    "mixed_grid": lambda: [
        EuropeanCall(strike=100.0, maturity=1.0),
        AsianCall(strike=100.0, maturity=1.0, n_fixings=16),
        DownOutCall(strike=95.0, maturity=1.0, barrier=80.0),
    ],
}


class TestModelProductMatrix:
    """model x product-family coordinates, shared time grid where needed."""

    @pytest.mark.parametrize("model_key", sorted(MODELS))
    @pytest.mark.parametrize("products_key", sorted(PRODUCT_SETS))
    def test_coordinate(self, model_key, products_key):
        method = MonteCarloEuropean(n_paths=4001, n_steps=16, seed=42, batch_size=1500)
        run_both(method, MODELS[model_key](), PRODUCT_SETS[products_key]())

    @pytest.mark.parametrize("model_key", ["bs", "cev", "heston"])
    def test_terminal_mode(self, model_key):
        """n_steps=None + terminal products -> exact-law sampling path."""
        method = MonteCarloEuropean(n_paths=4001, seed=7)
        run_both(method, MODELS[model_key](), PRODUCT_SETS["vanilla_mix"]())


class TestAntitheticAndBatchEdges:
    """antithetic on/off x odd/even n_paths x batch-size edge cases."""

    @pytest.mark.parametrize("antithetic", [False, True])
    @pytest.mark.parametrize("n_paths", [2, 3, 999, 1000, 4001])
    @pytest.mark.parametrize("batch_size", [2, 3, 997, 65_536])
    def test_terminal_accounting(self, antithetic, n_paths, batch_size):
        method = MonteCarloEuropean(
            n_paths=n_paths, antithetic=antithetic, seed=5, batch_size=batch_size
        )
        run_both(
            method,
            BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
            [EuropeanCall(strike=100.0, maturity=1.0),
             EuropeanPut(strike=95.0, maturity=1.0)],
        )

    @pytest.mark.parametrize("antithetic", [False, True])
    @pytest.mark.parametrize("n_paths", [3, 999])
    def test_paths_accounting(self, antithetic, n_paths):
        method = MonteCarloEuropean(
            n_paths=n_paths, n_steps=8, antithetic=antithetic, seed=5, batch_size=128
        )
        run_both(
            method,
            BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
            PRODUCT_SETS["mixed_grid"](),
        )

    @pytest.mark.parametrize("control_variate", [False, True])
    def test_control_variate_toggle(self, control_variate):
        method = MonteCarloEuropean(
            n_paths=3001, seed=3, control_variate=control_variate
        )
        run_both(
            method,
            BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
            PRODUCT_SETS["vanilla_mix"](),
        )

    def test_sobol_rng(self):
        method = MonteCarloEuropean(n_paths=4096, seed=9, rng_kind="sobol")
        run_both(
            method,
            BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
            [EuropeanCall(strike=100.0, maturity=1.0),
             DigitalCall(strike=110.0, maturity=1.0)],
        )


class TestBasket:
    @pytest.mark.parametrize("antithetic", [False, True])
    def test_basket_terminal(self, antithetic):
        model = MultiAssetBlackScholesModel(
            spot=np.array([100.0, 95.0, 105.0, 90.0, 110.0]),
            rate=0.02,
            volatilities=np.array([0.2, 0.25, 0.18, 0.3, 0.22]),
            correlation=flat_correlation(5, 0.35),
        )
        weights = np.full(5, 0.2)
        method = MonteCarloEuropean(n_paths=3001 + antithetic, seed=13, antithetic=antithetic)
        run_both(
            method,
            model,
            [BasketPut(strike=k, maturity=1.0, weights=weights) for k in (90.0, 100.0)]
            + [BasketCall(strike=100.0, maturity=1.0, weights=weights)],
        )

    def test_basket_paths(self):
        model = MultiAssetBlackScholesModel(
            spot=np.array([100.0, 95.0]),
            rate=0.02,
            volatilities=np.array([0.2, 0.25]),
            correlation=flat_correlation(2, 0.5),
        )
        weights = np.array([0.6, 0.4])
        method = MonteCarloEuropean(n_paths=2001, n_steps=6, seed=13)
        run_both(
            method, model,
            [BasketPut(strike=100.0, maturity=1.0, weights=weights),
             BasketCall(strike=95.0, maturity=1.0, weights=weights)],
        )


class TestGroupShapes:
    """cohort clustering: several groups through one run_groups plan."""

    def test_cross_group_cohort_equals_solo(self):
        """Same-signature groups (different vols) share one draw cohort."""
        method = MonteCarloEuropean(n_paths=3001, seed=21, batch_size=1000)
        groups = [
            (method, BlackScholesModel(spot=100.0, rate=0.03, volatility=vol),
             [EuropeanCall(strike=100.0, maturity=1.0),
              EuropeanPut(strike=100.0, maturity=1.0)])
            for vol in (0.15, 0.25, 0.35)
        ]
        stacked = run_groups(groups)
        for (m, model, products), group_results in zip(groups, stacked):
            solo = m.price_many(model, products, kernel="loop")
            assert_results_bit_equal(solo, group_results)

    def test_mixed_cohorts_one_plan(self):
        """Groups with different methods/grids cannot share draws -- still exact."""
        groups = [
            (MonteCarloEuropean(n_paths=2001, seed=1),
             BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2),
             [EuropeanCall(strike=100.0, maturity=1.0)] * 2),
            (MonteCarloEuropean(n_paths=2001, seed=2),
             BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2),
             [EuropeanPut(strike=100.0, maturity=1.0)] * 2),
            (MonteCarloEuropean(n_paths=1001, n_steps=4, seed=1),
             CEVModel(spot=100.0, rate=0.03, volatility=0.2, beta=0.8),
             [AsianCall(strike=100.0, maturity=1.0, n_fixings=4)]),
        ]
        stacked = run_groups(groups)
        for (m, model, products), group_results in zip(groups, stacked):
            solo = m.price_many(model, products, kernel="loop")
            assert_results_bit_equal(solo, group_results)

    def test_singleton_group(self):
        method = MonteCarloEuropean(n_paths=1001, seed=4)
        model = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)
        run_both(method, model, [EuropeanCall(strike=100.0, maturity=1.0)])

    def test_chunked_cohort_still_exact(self, monkeypatch):
        """Force the memory-budget chunking path and re-check bit-equality."""
        import repro.pricing.kernel as kernel_module

        monkeypatch.setattr(kernel_module, "_MAX_STACK_ELEMENTS", 1 << 12)
        method = MonteCarloEuropean(n_paths=2001, n_steps=8, seed=17, batch_size=512)
        run_both(
            method,
            BlackScholesModel(spot=100.0, rate=0.03, volatility=0.25),
            PRODUCT_SETS["mixed_grid"](),
        )


class TestKernelSelection:
    def test_resolve_kernel(self):
        from repro.errors import PricingError

        assert resolve_kernel(None) == "loop"
        assert resolve_kernel("loop") == "loop"
        assert resolve_kernel("stacked") == "stacked"
        with pytest.raises(PricingError):
            resolve_kernel("warp")

    def test_price_many_rejects_unknown_kernel(self):
        from repro.errors import PricingError

        method = MonteCarloEuropean(n_paths=100, seed=0)
        model = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)
        with pytest.raises(PricingError, match="unknown kernel"):
            method.price_many(model, [EuropeanCall(strike=100.0, maturity=1.0)],
                              kernel="warp")

    def test_price_many_stacked_entrypoint(self):
        method = MonteCarloEuropean(n_paths=1001, seed=4)
        model = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)
        products = [EuropeanCall(strike=100.0, maturity=1.0)]
        direct = price_many_stacked(method, model, products)
        via_price_many = method.price_many(model, products, kernel="stacked")
        assert_results_bit_equal(direct, via_price_many)

    def test_kernel_never_changes_method_params(self):
        """The kernel is an evaluation strategy, not a method parameter."""
        method = MonteCarloEuropean(n_paths=1001, seed=4)
        params_before = dict(method.to_params())
        model = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)
        method.price_many(model, [EuropeanCall(strike=100.0, maturity=1.0)],
                          kernel="stacked")
        assert method.to_params() == params_before
        assert "kernel" not in params_before
