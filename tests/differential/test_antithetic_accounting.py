"""Exact draw accounting for the antithetic odd-``n_paths`` case.

With antithetic variates an odd path count cannot form complete mirror
pairs, so the simulation rounds ``n_paths`` up to the next even total and
reports exactly what it consumed -- never a phantom path, never a silently
dropped one.  These tests count the *raw base-generator draws* of the
stacked kernel (via the ``record`` hook, which sits below the antithetic
wrapper) and the pair-averaged samples delivered to the payoff estimator,
for ``n_paths`` in {1, 2, 3, 999, 1000}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing.kernel import run_groups
from repro.pricing.methods.montecarlo import MonteCarloEuropean
from repro.pricing.models import BlackScholesModel
from repro.pricing.products import EuropeanCall

_MODEL = BlackScholesModel(spot=100.0, rate=0.03, volatility=0.2)
_PRODUCT = EuropeanCall(strike=100.0, maturity=1.0)
_FLOAT_BYTES = np.dtype(float).itemsize


def _stacked_run(n_paths: int, antithetic: bool, batch_size: int = 256):
    """Run the stacked kernel; return (base draw count, samples, result)."""
    method = MonteCarloEuropean(
        n_paths=n_paths, seed=11, antithetic=antithetic, batch_size=batch_size,
    )
    drawn = []
    samples = []
    sinks = {0: lambda index, batch: samples.append(np.asarray(batch, dtype=float))}
    [[result]] = run_groups(
        [(method, _MODEL, [_PRODUCT])],
        sample_sinks=sinks,
        record=lambda raw: drawn.append(len(raw) // _FLOAT_BYTES),
    )
    return sum(drawn), int(sum(len(batch) for batch in samples)), result


class TestAntitheticDrawCounts:
    def test_n_paths_one_is_rejected(self):
        with pytest.raises(PricingError, match="n_paths must be at least 2"):
            MonteCarloEuropean(n_paths=1, seed=11)

    @pytest.mark.parametrize("n_paths", [2, 3, 999, 1000])
    def test_antithetic_counts(self, n_paths):
        n_total = n_paths + (n_paths % 2)  # odd counts round up to full pairs
        drawn, n_samples, result = _stacked_run(n_paths, antithetic=True)
        assert drawn == n_total // 2  # one base draw seeds each mirror pair
        assert n_samples == n_total // 2  # estimator sees pair averages
        assert result.extra["n_paths"] == n_total
        assert result.n_evaluations == n_total

    @pytest.mark.parametrize("n_paths", [2, 3, 999, 1000])
    def test_plain_counts(self, n_paths):
        drawn, n_samples, result = _stacked_run(n_paths, antithetic=False)
        assert drawn == n_paths
        assert n_samples == n_paths
        assert result.extra["n_paths"] == n_paths
        assert result.n_evaluations == n_paths

    @pytest.mark.parametrize("batch_size", [2, 3, 97, 1024])
    def test_counts_invariant_to_batching(self, batch_size):
        """Chunking changes how draws are split, never how many are made."""
        drawn, n_samples, _ = _stacked_run(999, antithetic=True, batch_size=batch_size)
        assert (drawn, n_samples) == (500, 500)

    def test_loop_kernel_agrees_on_accounting(self):
        method = MonteCarloEuropean(n_paths=999, seed=11, antithetic=True, batch_size=256)
        [loop_result] = method.price_many(_MODEL, [_PRODUCT], kernel="loop")
        _, _, stacked_result = _stacked_run(999, antithetic=True)
        assert loop_result.extra["n_paths"] == stacked_result.extra["n_paths"] == 1000
        assert loop_result.n_evaluations == stacked_result.n_evaluations
        assert loop_result.price == stacked_result.price
