"""Tests of portfolios and the three benchmark workload builders."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import paper_cost_model
from repro.core.portfolio import (
    Portfolio,
    Position,
    build_realistic_portfolio,
    build_regression_portfolio,
    build_toy_portfolio,
)
from repro.errors import PortfolioError
from repro.pricing import PricingProblem


def _problem(strike=100.0, label="p"):
    problem = PricingProblem(label=label)
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


class TestPortfolioContainer:
    def test_add_and_iterate(self):
        portfolio = Portfolio(name="test")
        portfolio.add(Position(problem=_problem(90.0), category="a", label="x"))
        portfolio.extend([Position(problem=_problem(110.0), category="b", label="y")])
        assert len(portfolio) == 2
        assert portfolio[0].label == "x"
        assert portfolio.categories() == ["a", "b"]
        assert portfolio.count_by_category() == {"a": 1, "b": 1}

    def test_incomplete_problem_rejected(self):
        with pytest.raises(PortfolioError):
            Position(problem=PricingProblem(), category="bad")

    def test_summary_with_cost_model(self):
        portfolio = Portfolio(positions=[Position(problem=_problem(), category="cf")])
        summary = portfolio.summary(cost_model=paper_cost_model())
        assert summary["cf"]["count"] == 1
        assert summary["cf"]["estimated_cost"] > 0
        assert portfolio.total_estimated_cost() > 0

    def test_subset(self):
        portfolio = build_toy_portfolio(n_options=10)
        assert len(portfolio.subset(3)) == 3

    def test_store_roundtrip(self, tmp_path):
        portfolio = build_toy_portfolio(n_options=5)
        store = portfolio.to_store(tmp_path / "files")
        assert len(store) == 5
        reloaded = Portfolio.from_store(store)
        assert len(reloaded) == 5
        assert reloaded[0].problem == portfolio[0].problem

    def test_build_jobs_virtual(self):
        portfolio = build_toy_portfolio(n_options=8)
        jobs = portfolio.build_jobs()
        assert len(jobs) == 8
        assert all(job.file_size > 0 for job in jobs)
        assert all(job.compute_cost > 0 for job in jobs)
        assert all(job.problem is None for job in jobs)
        assert len({job.job_id for job in jobs}) == 8

    def test_build_jobs_with_store_and_problems(self, tmp_path):
        portfolio = build_toy_portfolio(n_options=4)
        store = portfolio.to_store(tmp_path / "files")
        jobs = portfolio.build_jobs(store=store, attach_problems=True)
        assert all(job.path.endswith(".pb") for job in jobs)
        assert all(job.problem is not None for job in jobs)
        sizes = [job.file_size for job in jobs]
        assert sizes == [path.stat().st_size for path in store.paths()]

    def test_build_jobs_store_mismatch(self, tmp_path):
        portfolio = build_toy_portfolio(n_options=4)
        store = build_toy_portfolio(n_options=2).to_store(tmp_path / "files")
        with pytest.raises(PortfolioError):
            portfolio.build_jobs(store=store)


class TestToyPortfolio:
    def test_default_size_matches_the_paper(self):
        portfolio = build_toy_portfolio()
        assert len(portfolio) == 10_000

    def test_all_positions_closed_form_vanilla(self):
        portfolio = build_toy_portfolio(n_options=50)
        assert set(portfolio.count_by_category()) == {"vanilla_cf"}
        for position in portfolio:
            assert position.problem.method_name in ("CF_Call", "CF_Put")

    def test_positions_are_distinct_problems(self):
        portfolio = build_toy_portfolio(n_options=200)
        dicts = [str(p.problem.to_dict()) for p in portfolio]
        assert len(set(dicts)) == 200

    def test_costs_are_tiny(self):
        portfolio = build_toy_portfolio(n_options=20)
        model = paper_cost_model()
        assert all(model.estimate(p.problem) < 0.01 for p in portfolio)

    def test_invalid_size(self):
        with pytest.raises(PortfolioError):
            build_toy_portfolio(n_options=0)


class TestRealisticPortfolio:
    def test_full_scale_composition_matches_section_4_3(self):
        portfolio = build_realistic_portfolio(profile="paper")
        counts = portfolio.count_by_category()
        assert counts == {
            "vanilla_cf": 1952,
            "barrier_pde": 1952,
            "basket_mc": 525,
            "localvol_mc": 1025,
            "american_pde": 1952,
            "american_basket_ls": 525,
        }
        assert len(portfolio) == 7931

    def test_total_cost_scale_matches_table_iii(self):
        """Single-worker work should be in the few-thousand-seconds range of
        Table III (T(2 CPUs) = 5770 s)."""
        portfolio = build_realistic_portfolio(profile="paper")
        total = portfolio.total_estimated_cost(paper_cost_model())
        assert 4000 < total < 8000

    def test_cost_ordering_of_the_slices(self):
        portfolio = build_realistic_portfolio(profile="paper", scale=0.05)
        summary = portfolio.summary(paper_cost_model())
        per_item = {k: v["estimated_cost"] / v["count"] for k, v in summary.items()}
        assert per_item["vanilla_cf"] < 0.01
        assert per_item["vanilla_cf"] < per_item["barrier_pde"]
        assert per_item["barrier_pde"] < per_item["american_basket_ls"]
        # American options are the most expensive class, as in the paper
        assert max(per_item, key=per_item.get) in ("american_basket_ls", "american_pde")

    def test_scaled_down_preserves_all_slices(self):
        portfolio = build_realistic_portfolio(profile="fast", scale=0.01)
        counts = portfolio.count_by_category()
        assert set(counts) == {
            "vanilla_cf", "barrier_pde", "basket_mc", "localvol_mc",
            "american_pde", "american_basket_ls",
        }
        assert len(portfolio) < 200

    def test_fast_profile_is_executable(self):
        portfolio = build_realistic_portfolio(profile="fast", scale=0.003)
        for position in portfolio:
            result = position.problem.compute()
            assert result.price >= 0.0

    def test_basket_dimensions(self):
        portfolio = build_realistic_portfolio(profile="fast", scale=0.01)
        by_cat = {c: [p for p in portfolio if p.category == c] for c in portfolio.categories()}
        assert by_cat["basket_mc"][0].problem.model.dimension == 40
        assert by_cat["american_basket_ls"][0].problem.model.dimension == 7

    def test_barrier_slice_uses_two_day_time_steps(self):
        portfolio = build_realistic_portfolio(profile="paper", scale=0.01)
        barrier_positions = [p for p in portfolio if p.category == "barrier_pde"]
        for position in barrier_positions:
            params = position.problem.method.to_params()
            maturity = position.problem.product.maturity
            assert params["n_time"] >= int(126 * maturity)

    def test_invalid_arguments(self):
        with pytest.raises(PortfolioError):
            build_realistic_portfolio(profile="heavy")
        with pytest.raises(PortfolioError):
            build_realistic_portfolio(scale=0.0)
        with pytest.raises(PortfolioError):
            build_realistic_portfolio(scale=1.5)


class TestRegressionPortfolio:
    def test_covers_every_model_family(self):
        portfolio = build_regression_portfolio(profile="paper")
        labels = [p.label for p in portfolio]
        for model_tag in ("bs/", "cev/", "lv/", "heston/", "merton/", "bs5d/"):
            assert any(label.startswith(model_tag) for label in labels)

    def test_problem_count_is_stable(self):
        """The suite size is part of the Table I workload definition."""
        portfolio = build_regression_portfolio(profile="paper")
        assert 80 <= len(portfolio) <= 130

    def test_contains_the_paper_cost_spread(self):
        portfolio = build_regression_portfolio(profile="paper")
        model = paper_cost_model()
        costs = [model.estimate(p.problem) for p in portfolio]
        assert min(costs) < 0.01          # closed forms
        assert max(costs) > 10.0          # the heavy Monte-Carlo tests
        assert sum(costs) > 300.0         # the suite represents minutes of work
