"""Tests of the three problem-transmission strategies."""

from __future__ import annotations

import pytest

from repro.cluster.backends.base import PAYLOAD_PATH, PAYLOAD_PROBLEM, PAYLOAD_SERIAL, Job
from repro.core.strategies import (
    STRATEGIES,
    FullLoadStrategy,
    InMemoryStrategy,
    NFSStrategy,
    SerializedLoadStrategy,
    get_strategy,
)
from repro.errors import SchedulingError
from repro.pricing import PricingProblem
from repro.serial import Serial, save, serialize


@pytest.fixture
def problem() -> PricingProblem:
    problem = PricingProblem(label="strategy_test")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("PutEuro", strike=95.0, maturity=0.5)
    problem.set_method("CF_Put")
    return problem


@pytest.fixture
def file_job(tmp_path, problem) -> Job:
    path = tmp_path / "problem.pb"
    save(path, problem)
    return Job(job_id=1, path=str(path), file_size=path.stat().st_size,
               compute_cost=1e-3, category="vanilla")


@pytest.fixture
def memory_job(problem) -> Job:
    return Job(job_id=2, path="", file_size=serialize(problem).nbytes,
               compute_cost=1e-3, category="vanilla", problem=problem)


class TestFullLoad:
    def test_prepare_from_file(self, file_job, problem):
        message = FullLoadStrategy().prepare(file_job)
        assert message.kind == PAYLOAD_SERIAL
        assert message.nbytes == len(message.payload)
        assert Serial.from_bytes(message.payload).unserialize() == problem
        assert message.prep_elapsed >= 0.0

    def test_prepare_from_memory(self, memory_job, problem):
        message = FullLoadStrategy().prepare(memory_job)
        assert Serial.from_bytes(message.payload).unserialize() == problem

    def test_missing_source_raises(self):
        job = Job(job_id=0, path="/nonexistent/file.pb", file_size=10, compute_cost=1e-3)
        with pytest.raises(SchedulingError):
            FullLoadStrategy().prepare(job)


class TestSerializedLoad:
    def test_prepare_reuses_file_bytes(self, file_job, tmp_path):
        """sload must ship the file content as-is (no re-serialization)."""
        message = SerializedLoadStrategy().prepare(file_job)
        assert message.kind == PAYLOAD_SERIAL
        file_bytes = (tmp_path / "problem.pb").read_bytes()
        assert message.payload == file_bytes

    def test_prepare_from_memory(self, memory_job, problem):
        message = SerializedLoadStrategy().prepare(memory_job)
        assert Serial.from_bytes(message.payload).unserialize() == problem

    def test_equivalent_to_full_load_content(self, file_job, problem):
        full = FullLoadStrategy().prepare(file_job)
        sload = SerializedLoadStrategy().prepare(file_job)
        assert Serial.from_bytes(full.payload).unserialize() == Serial.from_bytes(
            sload.payload
        ).unserialize()


class TestNFS:
    def test_prepare_sends_only_the_name(self, file_job):
        message = NFSStrategy().prepare(file_job)
        assert message.kind == PAYLOAD_PATH
        assert message.payload == file_job.path
        assert message.nbytes == len(file_job.path.encode("utf-8"))

    def test_requires_a_file(self, memory_job):
        with pytest.raises(SchedulingError):
            NFSStrategy().prepare(memory_job)


class TestInMemory:
    def test_prepare(self, memory_job, problem):
        message = InMemoryStrategy().prepare(memory_job)
        assert message.kind == PAYLOAD_PROBLEM
        assert message.payload is problem

    def test_requires_problem(self, file_job):
        file_job.problem = None
        with pytest.raises(SchedulingError):
            InMemoryStrategy().prepare(file_job)


class TestRegistry:
    def test_get_strategy(self):
        assert isinstance(get_strategy("full_load"), FullLoadStrategy)
        assert isinstance(get_strategy("serialized_load"), SerializedLoadStrategy)
        assert isinstance(get_strategy("nfs"), NFSStrategy)

    def test_unknown_strategy(self):
        with pytest.raises(SchedulingError):
            get_strategy("smoke_signals")

    def test_registry_covers_the_paper_strategies(self):
        assert set(STRATEGIES) == {"full_load", "serialized_load", "nfs"}

    def test_names_match_cost_model_names(self):
        from repro.cluster.simcluster.comm import STRATEGY_NAMES

        assert set(STRATEGIES) == set(STRATEGY_NAMES)
