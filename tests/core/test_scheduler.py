"""Tests of the load-balancing schedulers."""

from __future__ import annotations

import pytest

from repro.cluster.backends.base import Job
from repro.cluster.simcluster import ClusterSpec, CommunicationModel, SimulatedClusterBackend
from repro.core.scheduler import (
    SCHEDULERS,
    ChunkedRobinHoodScheduler,
    PriorityScheduler,
    RobinHoodScheduler,
    StaticBlockScheduler,
    simulate_hierarchical,
)
from repro.core.strategies import get_strategy
from repro.errors import SchedulingError


def _jobs(costs):
    return [
        Job(job_id=i, path=f"/virtual/p{i}.pb", file_size=600, compute_cost=c,
            category="test")
        for i, c in enumerate(costs)
    ]


def _backend(n_workers, strategy="serialized_load", speeds=None):
    spec = (
        ClusterSpec.heterogeneous(speeds) if speeds else ClusterSpec.homogeneous(n_workers)
    )
    return SimulatedClusterBackend(spec, strategy=strategy)


STRATEGY = get_strategy("serialized_load")


class TestRobinHood:
    def test_all_jobs_completed_once(self):
        jobs = _jobs([0.1] * 25)
        outcome = RobinHoodScheduler().run(jobs, _backend(4), STRATEGY)
        assert sorted(c.job_id for c in outcome.completed) == list(range(25))
        assert outcome.total_time > 0
        assert outcome.scheduler_name == "robin_hood"
        assert not outcome.errors

    def test_fewer_jobs_than_workers(self):
        jobs = _jobs([0.1, 0.2])
        outcome = RobinHoodScheduler().run(jobs, _backend(8), STRATEGY)
        assert len(outcome.completed) == 2

    def test_single_worker(self):
        jobs = _jobs([0.1] * 5)
        outcome = RobinHoodScheduler().run(jobs, _backend(1), STRATEGY)
        assert len(outcome.completed) == 5
        assert outcome.total_time >= 0.5

    def test_dynamic_balancing_beats_static_on_heterogeneous_work(self):
        """Robin Hood adapts to the heavy tail; static blocks do not."""
        # a workload where one contiguous block is much heavier than the others
        costs = [0.01] * 60 + [1.0] * 20
        jobs = _jobs(costs)
        robin = RobinHoodScheduler().run(jobs, _backend(4), STRATEGY).total_time
        static = StaticBlockScheduler().run(jobs, _backend(4), STRATEGY).total_time
        assert robin < static

    def test_heterogeneous_workers_fast_one_does_more(self):
        jobs = _jobs([0.2] * 30)
        backend = _backend(None, speeds=[4.0, 1.0])
        outcome = RobinHoodScheduler().run(jobs, backend, STRATEGY)
        per_worker = {}
        for completed in outcome.completed:
            per_worker[completed.worker_id] = per_worker.get(completed.worker_id, 0) + 1
        assert per_worker[0] > per_worker[1]

    def test_empty_job_list_rejected(self):
        with pytest.raises(SchedulingError):
            RobinHoodScheduler().run([], _backend(2), STRATEGY)

    def test_duplicate_job_ids_rejected(self):
        jobs = _jobs([0.1, 0.1])
        jobs[1].job_id = jobs[0].job_id
        with pytest.raises(SchedulingError):
            RobinHoodScheduler().run(jobs, _backend(2), STRATEGY)


class TestStaticBlock:
    def test_all_jobs_completed(self):
        jobs = _jobs([0.05] * 17)
        outcome = StaticBlockScheduler().run(jobs, _backend(4), STRATEGY)
        assert sorted(c.job_id for c in outcome.completed) == list(range(17))
        assert outcome.scheduler_name == "static_block"

    def test_matches_robin_hood_on_homogeneous_work(self):
        """With identical jobs the two schedulers should be comparable."""
        jobs = _jobs([0.25] * 32)
        robin = RobinHoodScheduler().run(jobs, _backend(4), STRATEGY).total_time
        static = StaticBlockScheduler().run(jobs, _backend(4), STRATEGY).total_time
        assert static == pytest.approx(robin, rel=0.15)


class TestChunkedRobinHood:
    def test_all_jobs_completed(self):
        jobs = _jobs([0.01] * 53)
        outcome = ChunkedRobinHoodScheduler(chunk_size=8).run(jobs, _backend(4), STRATEGY)
        assert sorted(c.job_id for c in outcome.completed) == list(range(53))
        assert outcome.extra["chunk_size"] == 8

    def test_batching_reduces_makespan_for_cheap_jobs(self):
        """The conclusion's first improvement: fewer, larger messages."""
        jobs = _jobs([1e-4] * 1000)
        single = RobinHoodScheduler().run(jobs, _backend(8, strategy="nfs"), get_strategy("nfs"))
        chunked = ChunkedRobinHoodScheduler(chunk_size=25).run(
            jobs, _backend(8, strategy="nfs"), get_strategy("nfs")
        )
        assert chunked.total_time < single.total_time

    def test_chunk_size_one_equivalent_to_robin_hood(self):
        jobs = _jobs([0.02] * 40)
        plain = RobinHoodScheduler().run(jobs, _backend(3), STRATEGY).total_time
        chunked = ChunkedRobinHoodScheduler(chunk_size=1).run(jobs, _backend(3), STRATEGY).total_time
        assert chunked == pytest.approx(plain, rel=0.05)

    def test_invalid_chunk_size(self):
        with pytest.raises(SchedulingError):
            ChunkedRobinHoodScheduler(chunk_size=0)


class TestHierarchical:
    def test_returns_group_breakdown(self):
        jobs = _jobs([0.05] * 120)
        result = simulate_hierarchical(jobs, n_workers=12, n_groups=3)
        assert result["n_groups"] == 3
        assert len(result["group_times"]) == 3
        assert result["total_time"] >= max(result["group_times"])
        assert result["master_dealing_time"] > 0

    def test_sub_masters_help_cheap_workloads(self):
        """The conclusion's second improvement: with very cheap jobs a single
        master is the bottleneck, sub-masters distribute that load."""
        jobs = _jobs([1e-4] * 3000)
        flat_backend = _backend(32)
        flat = RobinHoodScheduler().run(jobs, flat_backend, STRATEGY).total_time
        hierarchical = simulate_hierarchical(jobs, n_workers=32, n_groups=4)["total_time"]
        assert hierarchical < flat

    def test_validation(self):
        jobs = _jobs([0.1] * 10)
        with pytest.raises(SchedulingError):
            simulate_hierarchical(jobs, n_workers=4, n_groups=0)
        with pytest.raises(SchedulingError):
            simulate_hierarchical(jobs, n_workers=2, n_groups=4)
        with pytest.raises(SchedulingError):
            simulate_hierarchical([], n_workers=4, n_groups=2)


class TestPriority:
    def test_all_jobs_completed(self):
        jobs = _jobs([0.1] * 20)
        outcome = PriorityScheduler().run(jobs, _backend(4), STRATEGY)
        assert sorted(c.job_id for c in outcome.completed) == list(range(20))
        assert outcome.scheduler_name == "priority"

    def test_equal_priorities_match_robin_hood(self):
        jobs = _jobs([0.05 * (i % 5 + 1) for i in range(30)])
        robin = RobinHoodScheduler().run(jobs, _backend(3), STRATEGY)
        priority = PriorityScheduler().run(jobs, _backend(3), STRATEGY)
        # no priorities at all means the policy *is* Robin Hood: identical
        # dispatch order, bit-identical simulated virtual time
        assert [c.job_id for c in priority.completed] == [
            c.job_id for c in robin.completed
        ]
        assert priority.total_time == robin.total_time

    def test_high_priority_jobs_run_first(self):
        jobs = _jobs([0.1] * 12)
        urgent = {9, 10, 11}
        outcome = PriorityScheduler(priority={job_id: 1.0 for job_id in urgent}).run(
            jobs, _backend(1), STRATEGY
        )
        assert [c.job_id for c in outcome.completed[:3]] == sorted(urgent)
        # ties keep submission order behind the urgent ones
        assert [c.job_id for c in outcome.completed[3:]] == list(range(9))

    def test_callable_priority(self):
        jobs = _jobs([0.1] * 8)
        outcome = PriorityScheduler(priority=lambda job: job.job_id).run(
            jobs, _backend(1), STRATEGY
        )
        assert [c.job_id for c in outcome.completed] == list(range(7, -1, -1))

    def test_invalid_priority_rejected(self):
        with pytest.raises(SchedulingError):
            PriorityScheduler(priority=42)


def test_scheduler_registry():
    assert set(SCHEDULERS) == {
        "robin_hood",
        "static_block",
        "chunked_robin_hood",
        "work_stealing",
        "priority",
    }
    # the streaming-first contract: every registered scheduler streams
    for cls in SCHEDULERS.values():
        assert cls.supports_streaming is True
