"""Tests of the portfolio runner and the CPU-count sweeps."""

from __future__ import annotations

import pytest

from repro.cluster.backends import MultiprocessingBackend, SequentialBackend
from repro.cluster.costmodel import paper_cost_model
from repro.cluster.simcluster import ClusterSpec, CommunicationModel, SimulatedClusterBackend
from repro.core.portfolio import build_toy_portfolio
from repro.core.runner import RunReport, compare_strategies, run_jobs, run_portfolio, sweep_cpu_counts
from repro.core.scheduler import ChunkedRobinHoodScheduler
from repro.errors import SchedulingError


@pytest.fixture(scope="module")
def toy_jobs():
    """A small, cheap, simulation-only job list."""
    return build_toy_portfolio(n_options=300).build_jobs(cost_model=paper_cost_model())


class TestRunPortfolio:
    def test_sequential_execution_produces_prices(self):
        portfolio = build_toy_portfolio(n_options=12)
        report = run_portfolio(portfolio, SequentialBackend(), strategy="serialized_load")
        assert report.n_jobs == 12
        assert not report.errors
        prices = report.prices()
        assert len(prices) == 12
        assert all(p >= 0 for p in prices.values())
        assert report.strategy == "serialized_load"
        assert report.scheduler == "robin_hood"
        assert report.n_cpus == report.n_workers + 1

    def test_multiprocessing_matches_sequential(self):
        portfolio = build_toy_portfolio(n_options=16)
        sequential = run_portfolio(portfolio, SequentialBackend(), strategy="serialized_load")
        parallel = run_portfolio(
            portfolio, MultiprocessingBackend(n_workers=2), strategy="serialized_load"
        )
        assert parallel.prices() == pytest.approx(sequential.prices())

    def test_store_based_run_with_nfs_strategy(self, tmp_path):
        portfolio = build_toy_portfolio(n_options=10)
        store = portfolio.to_store(tmp_path / "store")
        report = run_portfolio(portfolio, SequentialBackend(), strategy="nfs", store=store)
        assert not report.errors
        assert len(report.prices()) == 10

    def test_simulated_run_reports_virtual_time(self, toy_jobs):
        backend = SimulatedClusterBackend(ClusterSpec.from_cpu_count(4))
        report = run_jobs(toy_jobs, backend, strategy="serialized_load")
        assert report.total_time > 0
        assert report.n_workers == 3
        assert report.results[0] is None  # timing-only simulation
        assert report.category_times["vanilla_cf"] > 0
        assert 0.0 < report.mean_worker_utilisation <= 1.0

    def test_report_from_outcome_consistency(self, toy_jobs):
        backend = SimulatedClusterBackend(ClusterSpec.from_cpu_count(4))
        report = run_jobs(toy_jobs, backend)
        assert isinstance(report, RunReport)
        assert report.n_jobs == len(toy_jobs)
        assert report.bytes_sent > 0
        assert report.master_busy <= report.total_time + 1e-9


class TestSweeps:
    def test_sweep_returns_monotone_speedups_for_compute_bound_work(self):
        # make the jobs expensive enough that adding workers always helps
        jobs = build_toy_portfolio(n_options=64).build_jobs(
            cost_model=paper_cost_model().with_scale(2000.0)
        )
        table = sweep_cpu_counts(jobs, [2, 3, 5, 9], strategy="serialized_load")
        times = table.times()
        assert times[2] > times[3] > times[5] > times[9]
        assert table.row_for(2).ratio == pytest.approx(1.0)
        for row in table.rows:
            assert 0.5 < row.ratio <= 1.05

    def test_sweep_custom_scheduler(self, toy_jobs):
        table = sweep_cpu_counts(
            toy_jobs,
            [2, 4],
            strategy="nfs",
            scheduler_factory=lambda: ChunkedRobinHoodScheduler(chunk_size=10),
        )
        assert set(table.times()) == {2, 4}

    def test_sweep_requires_cpu_counts(self, toy_jobs):
        with pytest.raises(SchedulingError):
            sweep_cpu_counts(toy_jobs, [])

    def test_shared_nfs_cache_reproduces_the_table_ii_artefact(self, toy_jobs):
        shared = sweep_cpu_counts(toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=True)
        # with a shared server cache, the 4-CPU run benefits from the files
        # the 2-CPU run already touched: the apparent speedup is super-linear
        assert shared.row_for(4).ratio > 1.0
        cold = sweep_cpu_counts(toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=False)
        assert cold.row_for(4).ratio < shared.row_for(4).ratio

    def test_compare_strategies_covers_all_three(self, toy_jobs):
        tables = compare_strategies(toy_jobs, [2, 4, 8])
        assert set(tables) == {"full_load", "nfs", "serialized_load"}
        for table in tables.values():
            assert table.cpu_counts() == [2, 4, 8]

    def test_serialized_load_beats_full_load_everywhere(self, toy_jobs):
        """The paper: 'The only objective comparison is between the full load
        and serialized load, the latter is always the faster.'"""
        tables = compare_strategies(toy_jobs, [2, 4, 8, 16], strategies=("full_load", "serialized_load"))
        for n_cpus in (2, 4, 8, 16):
            assert (
                tables["serialized_load"].row_for(n_cpus).time
                < tables["full_load"].row_for(n_cpus).time
            )
