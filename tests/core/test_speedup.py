"""Tests of the speedup-table computation (the paper's ratio definition)."""

from __future__ import annotations

import pytest

from repro.core.speedup import SpeedupTable, format_comparison_table, speedup_ratio
from repro.errors import PortfolioError


class TestSpeedupRatio:
    def test_reference_row_is_one(self):
        assert speedup_ratio(100.0, 1, 100.0, 1) == pytest.approx(1.0)

    def test_paper_table_i_values(self):
        """Reproduce the published ratios of Table I from its times."""
        t2 = 838.004
        assert speedup_ratio(t2, 1, 285.356, 3) == pytest.approx(0.9789, abs=2e-4)
        assert speedup_ratio(t2, 1, 67.9677, 15) == pytest.approx(0.821963, abs=1e-5)
        assert speedup_ratio(t2, 1, 31.3172, 255) == pytest.approx(0.104935, abs=1e-5)

    def test_paper_table_iii_values(self):
        t2 = 5770.16
        assert speedup_ratio(t2, 1, 1980.35, 3) == pytest.approx(0.971238, abs=1e-5)
        assert speedup_ratio(t2, 1, 24.4743, 255) == pytest.approx(0.924566, abs=1e-5)

    def test_invalid_inputs(self):
        with pytest.raises(PortfolioError):
            speedup_ratio(0.0, 1, 10.0, 1)
        with pytest.raises(PortfolioError):
            speedup_ratio(10.0, 1, -1.0, 1)
        with pytest.raises(PortfolioError):
            speedup_ratio(10.0, 0, 1.0, 1)


class TestSpeedupTable:
    def test_from_times(self):
        table = SpeedupTable.from_times("test", {2: 100.0, 4: 40.0, 8: 20.0})
        assert table.cpu_counts() == [2, 4, 8]
        assert table.row_for(2).ratio == pytest.approx(1.0)
        assert table.row_for(4).ratio == pytest.approx(100.0 / (3 * 40.0))
        assert table.row_for(8).ratio == pytest.approx(100.0 / (7 * 20.0))
        assert table.row_for(8).n_workers == 7

    def test_rows_sorted_by_cpu_count(self):
        table = SpeedupTable.from_times("test", {8: 20.0, 2: 100.0, 4: 40.0})
        assert table.cpu_counts() == [2, 4, 8]

    def test_times_and_ratios_accessors(self):
        table = SpeedupTable.from_times("x", {2: 10.0, 4: 5.0})
        assert table.times() == {2: 10.0, 4: 5.0}
        assert set(table.ratios()) == {2, 4}

    def test_missing_row(self):
        table = SpeedupTable.from_times("x", {2: 10.0})
        with pytest.raises(PortfolioError):
            table.row_for(16)

    def test_validation(self):
        with pytest.raises(PortfolioError):
            SpeedupTable.from_times("x", {})
        with pytest.raises(PortfolioError):
            SpeedupTable.from_times("x", {1: 5.0})

    def test_format_contains_all_rows(self):
        table = SpeedupTable.from_times("serialized_load", {2: 100.0, 4: 40.0})
        text = table.format()
        assert "serialized_load" in text
        assert "100.0000" in text and "40.0000" in text
        assert str(table) == text


class TestComparisonTable:
    def test_side_by_side_layout(self):
        a = SpeedupTable.from_times("full_load", {2: 10.0, 4: 5.0})
        b = SpeedupTable.from_times("nfs", {2: 20.0, 4: 6.0})
        text = format_comparison_table([a, b])
        assert "full_load" in text and "nfs" in text
        assert len(text.splitlines()) == 3  # header + one line per CPU count

    def test_mismatched_cpu_counts_rejected(self):
        a = SpeedupTable.from_times("a", {2: 10.0, 4: 5.0})
        b = SpeedupTable.from_times("b", {2: 20.0, 8: 6.0})
        with pytest.raises(PortfolioError):
            format_comparison_table([a, b])

    def test_empty_rejected(self):
        with pytest.raises(PortfolioError):
            format_comparison_table([])
