"""Property-based invariants of the schedulers on the simulated cluster.

Whatever the job mix and the cluster size, a correct master/worker schedule
must satisfy a handful of invariants: every job runs exactly once, the
makespan is bounded below by both the ideal work/worker bound and the longest
single job, it is bounded above by the sequential time plus overheads, and it
never increases when workers are added (for the dynamic scheduler with a
deterministic dispatch order of identical cost structure).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.backends.base import Job
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.core.scheduler import ChunkedRobinHoodScheduler, RobinHoodScheduler, StaticBlockScheduler
from repro.core.strategies import get_strategy

STRATEGY = get_strategy("serialized_load")

_costs = st.lists(
    st.floats(min_value=1e-4, max_value=2.0), min_size=1, max_size=60
)
_workers = st.integers(min_value=1, max_value=16)


def _jobs(costs):
    return [
        Job(job_id=i, path=f"/virtual/p{i}.pb", file_size=400, compute_cost=c)
        for i, c in enumerate(costs)
    ]


def _run(scheduler, costs, n_workers):
    backend = SimulatedClusterBackend(ClusterSpec.homogeneous(n_workers))
    outcome = scheduler.run(_jobs(costs), backend, STRATEGY)
    return outcome


@settings(max_examples=60, deadline=None)
@given(costs=_costs, n_workers=_workers)
def test_robin_hood_completes_every_job_exactly_once(costs, n_workers):
    outcome = _run(RobinHoodScheduler(), costs, n_workers)
    assert sorted(c.job_id for c in outcome.completed) == list(range(len(costs)))


@settings(max_examples=60, deadline=None)
@given(costs=_costs, n_workers=_workers)
def test_makespan_lower_bounds(costs, n_workers):
    outcome = _run(RobinHoodScheduler(), costs, n_workers)
    ideal = sum(costs) / n_workers
    longest = max(costs)
    assert outcome.total_time >= longest
    assert outcome.total_time >= ideal


@settings(max_examples=60, deadline=None)
@given(costs=_costs, n_workers=_workers)
def test_makespan_upper_bound_is_sequential_time_plus_overheads(costs, n_workers):
    outcome = _run(RobinHoodScheduler(), costs, n_workers)
    # generous per-job overhead allowance for communication costs
    assert outcome.total_time <= sum(costs) + 0.01 * len(costs) + 0.1


@settings(max_examples=40, deadline=None)
@given(costs=_costs)
def test_more_workers_never_hurt_robin_hood(costs):
    few = _run(RobinHoodScheduler(), costs, 2).total_time
    many = _run(RobinHoodScheduler(), costs, 8).total_time
    # allow a tiny tolerance for the extra stop messages sent to idle workers
    assert many <= few * 1.01 + 1e-3


@settings(max_examples=40, deadline=None)
@given(costs=_costs, n_workers=_workers)
def test_robin_hood_within_graham_bound_of_static_blocks(costs, n_workers):
    """Greedy dispatch obeys Graham's list-scheduling bound vs any schedule.

    Dynamic balancing is NOT always faster than static partitioning (e.g.
    costs [0.5, 0.5, 1.0] on 2 workers: static isolates the expensive job
    and finishes in 1.0, greedy dispatch finishes in 1.5), but it can never
    exceed ``(2 - 1/m) * OPT`` and the static makespan is an upper bound of
    OPT, so ``dynamic <= (2 - 1/m) * static`` up to communication overheads.
    """
    dynamic = _run(RobinHoodScheduler(), costs, n_workers).total_time
    static = _run(StaticBlockScheduler(), costs, n_workers).total_time
    assert dynamic <= static * (2.0 - 1.0 / n_workers) + 0.01 * len(costs) + 1e-3


@settings(max_examples=40, deadline=None)
@given(costs=_costs, n_workers=_workers, chunk=st.integers(min_value=1, max_value=10))
def test_chunked_scheduler_completes_everything(costs, n_workers, chunk):
    outcome = _run(ChunkedRobinHoodScheduler(chunk_size=chunk), costs, n_workers)
    assert sorted(c.job_id for c in outcome.completed) == list(range(len(costs)))
    assert outcome.total_time >= max(costs)


@settings(max_examples=40, deadline=None)
@given(costs=_costs, n_workers=_workers)
def test_worker_busy_time_conservation(costs, n_workers):
    """The total busy time of the workers equals the compute work plus the
    per-job worker-side preparation (no work is lost or double counted)."""
    backend = SimulatedClusterBackend(ClusterSpec.homogeneous(n_workers))
    outcome = RobinHoodScheduler().run(_jobs(costs), backend, STRATEGY)
    busy = sum(outcome.stats.worker_busy.values())
    assert busy >= sum(costs) - 1e-9
    assert busy <= sum(costs) + 0.01 * len(costs)
