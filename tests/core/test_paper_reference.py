"""Tests of the published-table data and the shape-comparison helper."""

from __future__ import annotations

import pytest

from repro.core.paper_reference import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    PAPER_TABLE_III,
    compare_with_paper,
    paper_speedup_table,
)
from repro.core.speedup import SpeedupTable
from repro.errors import PortfolioError


class TestPublishedData:
    def test_table_i_has_all_cpu_counts(self):
        assert sorted(PAPER_TABLE_I) == [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256]

    def test_table_ii_strategies_and_rows(self):
        assert set(PAPER_TABLE_II) == {"full_load", "nfs", "serialized_load"}
        for column in PAPER_TABLE_II.values():
            assert sorted(column)[0] == 2
            assert sorted(column)[-1] == 50
            assert len(column) == 16

    def test_table_iii_row_counts(self):
        assert len(PAPER_TABLE_III["serialized_load"]) == 17
        assert len(PAPER_TABLE_III["nfs"]) == 14  # the NFS column stops at 256

    def test_published_ratios_recomputed_correctly(self):
        """Our ratio definition must reproduce the ratios printed in the paper."""
        table_i = paper_speedup_table("I")
        assert table_i.row_for(4).ratio == pytest.approx(0.9789, abs=2e-4)
        assert table_i.row_for(256).ratio == pytest.approx(0.104935, abs=1e-5)
        table_iii = paper_speedup_table("III", "full_load")
        assert table_iii.row_for(256).ratio == pytest.approx(0.924566, abs=1e-4)
        table_ii = paper_speedup_table("II", "nfs")
        assert table_ii.row_for(4).ratio == pytest.approx(1.11263, abs=1e-3)

    def test_serialized_load_beats_full_load_in_the_published_table_ii(self):
        """Sanity check of the transcription against the paper's conclusion."""
        for n_cpus, full_time in PAPER_TABLE_II["full_load"].items():
            assert PAPER_TABLE_II["serialized_load"][n_cpus] < full_time


class TestPaperSpeedupTable:
    def test_accepts_several_spellings(self):
        assert paper_speedup_table("1").label == paper_speedup_table("I").label
        assert paper_speedup_table("table2").cpu_counts()[0] == 2

    def test_unknown_table_or_strategy(self):
        with pytest.raises(PortfolioError):
            paper_speedup_table("IV")
        with pytest.raises(PortfolioError):
            paper_speedup_table("II", strategy="carrier_pigeon")


class TestCompareWithPaper:
    def test_perfect_match(self):
        reference = paper_speedup_table("I")
        comparison = compare_with_paper(reference, reference)
        assert comparison.max_time_ratio == pytest.approx(1.0)
        assert comparison.max_ratio_difference == pytest.approx(0.0)
        assert comparison.n_common_rows == len(PAPER_TABLE_I)
        assert comparison.within_factor_two

    def test_partial_overlap(self):
        measured = SpeedupTable.from_times("m", {2: 900.0, 16: 80.0, 1024: 10.0})
        comparison = compare_with_paper(measured, paper_speedup_table("I"))
        assert comparison.n_common_rows == 2
        assert comparison.max_time_ratio < 1.3

    def test_no_overlap(self):
        measured = SpeedupTable.from_times("m", {3: 10.0, 5: 5.0})
        with pytest.raises(PortfolioError):
            compare_with_paper(measured, paper_speedup_table("I"))

    def test_simulated_table_iii_is_close_to_the_paper(self):
        """End-to-end: the simulated realistic portfolio stays within a factor
        ~1.5 of every published serialized-load row."""
        from repro.cluster.costmodel import paper_cost_model
        from repro.core import build_realistic_portfolio, sweep_cpu_counts

        jobs = build_realistic_portfolio(profile="paper").build_jobs(
            cost_model=paper_cost_model()
        )
        measured = sweep_cpu_counts(jobs, [2, 16, 128, 256, 512], strategy="serialized_load")
        comparison = compare_with_paper(measured, paper_speedup_table("III"))
        assert comparison.n_common_rows == 5
        assert comparison.max_time_ratio < 1.5
        assert comparison.mean_ratio_difference < 0.1
