"""Tests of the non-regression workload (Table I) and reference checking."""

from __future__ import annotations

import pytest

from repro.core.regression import (
    RegressionSuite,
    generate_regression_problems,
)
from repro.errors import PortfolioError


class TestGeneration:
    def test_every_problem_is_complete_and_unique(self):
        problems = list(generate_regression_problems(profile="fast"))
        labels = [label for _, label in problems]
        assert len(labels) == len(set(labels))
        for problem, label in problems:
            assert problem.is_complete
            assert problem.label == label

    def test_paper_and_fast_profiles_have_the_same_combinations(self):
        paper = [label for _, label in generate_regression_problems("paper")]
        fast = [label for _, label in generate_regression_problems("fast")]
        assert paper == fast

    def test_paper_profile_is_heavier(self):
        from repro.cluster.costmodel import paper_cost_model

        model = paper_cost_model()
        paper_cost = sum(
            model.estimate(p) for p, _ in generate_regression_problems("paper")
        )
        fast_cost = sum(
            model.estimate(p) for p, _ in generate_regression_problems("fast")
        )
        assert paper_cost > 50 * fast_cost

    def test_the_paper_example_combination_is_included(self):
        labels = [label for _, label in generate_regression_problems("fast")]
        assert any("heston/american_put/MC_AM_LongstaffSchwartz" in label for label in labels)

    def test_invalid_profile(self):
        with pytest.raises(PortfolioError):
            list(generate_regression_problems(profile="exhaustive"))


class TestRegressionSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return RegressionSuite(profile="fast")

    def test_run_produces_a_price_per_problem(self, suite):
        prices = suite.run()
        assert len(prices) == len(suite)
        assert all(price >= 0 or price == price for price in prices.values())

    def test_reference_roundtrip_has_no_mismatch(self, suite, tmp_path):
        reference_path = tmp_path / "reference.json"
        suite.generate_reference(reference_path)
        mismatches = suite.check_against_reference(reference_path)
        assert mismatches == []

    def test_detects_a_changed_algorithm(self, suite, tmp_path):
        import json

        reference_path = tmp_path / "reference.json"
        reference = suite.generate_reference(reference_path)
        # simulate a code change that shifts one algorithm's output
        corrupted = dict(reference)
        first_key = sorted(corrupted)[0]
        corrupted[first_key] = corrupted[first_key] + 1.0
        reference_path.write_text(json.dumps(corrupted))
        mismatches = suite.check_against_reference(reference_path)
        assert len(mismatches) == 1
        assert mismatches[0].label == first_key
        assert mismatches[0].relative_error > 0

    def test_detects_a_removed_problem(self, suite, tmp_path):
        import json

        reference_path = tmp_path / "reference.json"
        reference = suite.generate_reference(reference_path)
        reference["bs/imaginary/NEW_Method"] = 1.0
        reference_path.write_text(json.dumps(reference))
        mismatches = suite.check_against_reference(reference_path)
        assert any(m.label == "bs/imaginary/NEW_Method" for m in mismatches)
