"""Tests of the portfolio risk layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.portfolio import Portfolio, Position
from repro.core.risk import (
    historical_var,
    portfolio_greeks,
    portfolio_value,
    scenario_jobs,
    sensitivity_sweep,
)
from repro.errors import PortfolioError
from repro.pricing import PricingProblem, analytics


def _bs_position(option, method, quantity, label, **params):
    problem = PricingProblem(label=label)
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.03, volatility=0.2)
    problem.set_option(option, **params)
    problem.set_method(method)
    return Position(problem=problem, quantity=quantity, category=option, label=label)


@pytest.fixture
def book() -> Portfolio:
    return Portfolio(
        name="book",
        positions=[
            _bs_position("CallEuro", "CF_Call", 10.0, "call", strike=100.0, maturity=1.0),
            _bs_position("PutEuro", "CF_Put", -5.0, "put", strike=90.0, maturity=0.5),
            _bs_position("CallDownOutEuro", "CF_Barrier", 2.0, "barrier",
                         strike=100.0, maturity=1.0, barrier=80.0, rebate=0.0),
        ],
    )


class TestPortfolioValue:
    def test_matches_hand_computation(self, book):
        call = float(analytics.bs_call_price(100, 100, 0.03, 0.2, 1.0))
        put = float(analytics.bs_put_price(100, 90, 0.03, 0.2, 0.5))
        barrier = float(
            analytics.barrier_call_price(100, 100, 80, 0.03, 0.2, 1.0, barrier_type="down-out")
        )
        expected = 10 * call - 5 * put + 2 * barrier
        assert portfolio_value(book) == pytest.approx(expected, rel=1e-12)

    def test_uses_precomputed_prices_when_given(self, book):
        value = portfolio_value(book, prices={0: 1.0, 1: 1.0, 2: 1.0})
        assert value == pytest.approx(10.0 - 5.0 + 2.0)

    def test_partial_prices(self, book):
        full = portfolio_value(book)
        partial = portfolio_value(book, prices={0: 0.0})
        call = float(analytics.bs_call_price(100, 100, 0.03, 0.2, 1.0))
        assert partial == pytest.approx(full - 10 * call, rel=1e-10)


class TestPortfolioGreeks:
    def test_aggregation_matches_closed_form(self, book):
        report = portfolio_greeks(book, spot_bump=0.001, vol_bump=0.001)
        call_delta = float(analytics.bs_call_delta(100, 100, 0.03, 0.2, 1.0))
        put_delta = float(analytics.bs_put_delta(100, 90, 0.03, 0.2, 0.5))
        # barrier delta obtained by bumping the closed form
        h = 0.1
        barrier_delta = (
            analytics.barrier_call_price(100 + h, 100, 80, 0.03, 0.2, 1.0, barrier_type="down-out")
            - analytics.barrier_call_price(100 - h, 100, 80, 0.03, 0.2, 1.0, barrier_type="down-out")
        ) / (2 * h)
        expected_delta = 10 * call_delta - 5 * put_delta + 2 * float(barrier_delta)
        assert report.total_delta == pytest.approx(expected_delta, rel=1e-2)
        assert report.total_vega != 0.0
        assert set(report.by_category) == {"CallEuro", "PutEuro", "CallDownOutEuro"}
        assert len(report.positions) == 3

    def test_max_positions_truncation(self, book):
        report = portfolio_greeks(book, max_positions=1)
        assert len(report.positions) == 1

    def test_empty_portfolio_rejected(self):
        with pytest.raises(PortfolioError):
            portfolio_greeks(Portfolio(name="empty"))


class TestSensitivity:
    def test_volatility_sweep_is_monotone_for_a_long_call(self):
        portfolio = Portfolio(positions=[
            _bs_position("CallEuro", "CF_Call", 1.0, "call", strike=100.0, maturity=1.0)
        ])
        sweep = sensitivity_sweep(portfolio, "volatility", bumps=[-0.05, 0.0, 0.05],
                                  relative=False)
        assert sweep[-0.05] < sweep[0.0] < sweep[0.05]

    def test_spot_sweep_relative(self, book):
        sweep = sensitivity_sweep(book, "spot", bumps=[-0.1, 0.0, 0.1], relative=True)
        assert len(sweep) == 3
        assert sweep[0.0] == pytest.approx(portfolio_value(book), rel=1e-10)

    def test_unknown_parameter_keeps_position_unbumped(self, book):
        sweep = sensitivity_sweep(book, "does_not_exist", bumps=[0.5])
        assert sweep[0.5] == pytest.approx(portfolio_value(book), rel=1e-10)

    def test_scenario_jobs_expansion(self, book):
        problems = scenario_jobs(book, "spot", bumps=np.linspace(-0.05, 0.05, 7))
        assert len(problems) == 3 * 7
        assert all(p.is_complete for p in problems)
        assert all("spot" in p.label for p in problems)


class TestHistoricalVar:
    def test_var_of_a_long_call_book_is_positive_and_bounded(self):
        portfolio = Portfolio(positions=[
            _bs_position("CallEuro", "CF_Call", 100.0, "call", strike=100.0, maturity=1.0)
        ])
        returns = np.random.default_rng(0).normal(0.0, 0.02, size=200)
        result = historical_var(portfolio, returns, confidence=0.99)
        assert result["var"] > 0
        assert result["expected_shortfall"] >= result["var"]
        assert result["worst_loss"] >= result["var"]
        assert result["n_scenarios"] == 200
        # a 2% daily vol cannot lose more than a few hundred on this book
        assert result["var"] < 0.1 * result["base_value"] + 500

    def test_higher_confidence_gives_higher_var(self):
        portfolio = Portfolio(positions=[
            _bs_position("PutEuro", "CF_Put", -50.0, "put", strike=100.0, maturity=1.0)
        ])
        returns = np.random.default_rng(1).normal(0.0, 0.02, size=300)
        var95 = historical_var(portfolio, returns, confidence=0.95)["var"]
        var99 = historical_var(portfolio, returns, confidence=0.99)["var"]
        assert var99 >= var95

    def test_validation(self, book):
        with pytest.raises(PortfolioError):
            historical_var(book, [], confidence=0.99)
        with pytest.raises(PortfolioError):
            historical_var(book, [0.01], confidence=0.3)
