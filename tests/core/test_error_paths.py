"""Error-path coverage: worker failures, partial completion, method listings.

The happy paths are covered all over the suite; these tests pin down what
happens when a problem fails on a worker (the error must land in
``RunReport.errors`` without sinking the run), when a scheduler loses jobs
(``SchedulingError``), and what :func:`compatible_methods` advertises for
representative (model, product) pairs of each method family.
"""

from __future__ import annotations

import pytest

from repro.api import ValuationSession
from repro.cluster.backends import Job, SequentialBackend
from repro.core.runner import RunReport, run_jobs
from repro.core.scheduler import (
    RobinHoodPolicy,
    ScheduleOutcome,
    ScheduleStream,
    Scheduler,
)
from repro.cluster.backends.base import BackendStats
from repro.errors import SchedulingError, ValuationError
from repro.pricing import (
    BlackScholesModel,
    EuropeanCall,
    HestonModel,
    PricingProblem,
    compatible_methods,
)


def _good_problem() -> PricingProblem:
    problem = PricingProblem(label="good")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=100.0, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _failing_problem() -> PricingProblem:
    """Builds fine, fails at compute(): a closed-form call under Heston."""
    problem = PricingProblem(label="bad")
    problem.set_asset("equity")
    problem.set_model(
        "Heston1D",
        spot=100.0, rate=0.03, v0=0.04, kappa=2.0, theta=0.04, sigma_v=0.4, rho=-0.7,
    )
    problem.set_option("CallEuro", strike=100.0, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _job(job_id: int, problem: PricingProblem) -> Job:
    return Job(
        job_id=job_id,
        path=f"/virtual/errors/{job_id}.pb",
        file_size=512,
        compute_cost=1e-4,
        category="error_paths",
        problem=problem,
    )


class TestRunReportErrors:
    def test_worker_error_lands_in_report_errors(self):
        jobs = [_job(0, _good_problem()), _job(1, _failing_problem())]
        report = run_jobs(jobs, SequentialBackend(), strategy="serialized_load")
        assert report.n_jobs == 2
        assert set(report.errors) == {1}
        assert "IncompatibleMethodError" in report.errors[1]
        # the good job still priced
        assert 0 in report.prices()
        assert 1 not in report.prices()
        assert report.results[1] is None

    def test_run_result_surfaces_errors(self):
        session = ValuationSession(backend="local")
        result = session.run([_job(0, _failing_problem())])
        assert not result.ok
        assert result.n_errors == 1
        assert "errors" in result.format()

    def test_failed_handle_raises_but_keeps_message(self):
        session = ValuationSession(backend="local")
        good, bad = session.submit_many([_good_problem(), _failing_problem()])
        assert good.price() > 0
        assert "IncompatibleMethodError" in bad.error()
        with pytest.raises(ValuationError, match="IncompatibleMethodError"):
            bad.result()

    def test_from_outcome_splits_errors_and_categories(self):
        jobs = [_job(0, _good_problem()), _job(1, _failing_problem())]
        report = run_jobs(jobs, SequentialBackend())
        assert isinstance(report, RunReport)
        assert report.category_times["error_paths"] >= 0.0


class _DroppingStream(ScheduleStream):
    """A stream whose final outcome silently loses ``drop`` results."""

    drop = 1

    def finish(self):
        outcome = super().finish()
        return ScheduleOutcome(
            completed=outcome.completed[: len(outcome.completed) - self.drop],
            stats=outcome.stats,
            scheduler_name=self.scheduler_name,
        )


class _EmptyingStream(_DroppingStream):
    def finish(self):
        outcome = super(_DroppingStream, self).finish()
        return ScheduleOutcome(
            completed=[],
            stats=BackendStats(total_time=0.0, n_jobs=0, n_workers=0),
            scheduler_name=self.scheduler_name,
        )


class _LossyScheduler(Scheduler):
    """Completes every job but drops the last result on the floor."""

    name = "lossy"
    stream_cls = _DroppingStream

    def make_policy(self):
        return RobinHoodPolicy()

    def stream(self, jobs, backend, strategy):
        return self.stream_cls(
            jobs, backend, strategy,
            policy=self.make_policy(), scheduler_name=self.name,
        )


class _EmptyScheduler(_LossyScheduler):
    """Reports an outcome with nothing completed at all."""

    name = "empty"
    stream_cls = _EmptyingStream


class TestPartialCompletion:
    def test_dropped_result_raises_scheduling_error(self):
        jobs = [_job(i, _good_problem()) for i in range(3)]
        with pytest.raises(SchedulingError, match="2 results for 3 dispatched jobs"):
            run_jobs(jobs, SequentialBackend(), scheduler=_LossyScheduler())

    def test_empty_outcome_raises_scheduling_error(self):
        jobs = [_job(0, _good_problem())]
        with pytest.raises(SchedulingError, match="0 results for 1 dispatched jobs"):
            run_jobs(jobs, SequentialBackend(), scheduler=_EmptyScheduler())

    def test_session_path_raises_identically(self):
        session = ValuationSession(backend="local", scheduler=_LossyScheduler())
        with pytest.raises(SchedulingError):
            session.run([_job(i, _good_problem()) for i in range(2)])


class TestCompatibleMethods:
    def test_black_scholes_european_covers_every_family(self):
        names = compatible_methods(
            BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2),
            EuropeanCall(strike=100.0, maturity=1.0),
        )
        # one representative per method family: closed form, PDE, Fourier,
        # Monte-Carlo and trees can all price a European call under BS
        assert "CF_Call" in names
        assert "FD_European" in names
        assert "FFT_COS" in names
        assert "MC_European" in names
        assert "TR_CoxRossRubinstein" in names
        assert names == sorted(names)

    def test_heston_european_restricted_to_fourier_and_mc(self):
        names = compatible_methods(
            HestonModel(
                spot=100.0, rate=0.03, v0=0.04, kappa=2.0,
                theta=0.04, sigma_v=0.4, rho=-0.7,
            ),
            EuropeanCall(strike=100.0, maturity=1.0),
        )
        assert "FFT_COS" in names
        assert "MC_European" in names
        assert "CF_Call" not in names  # no closed form under Heston
