"""Session-level tests of batch pricing and result caching."""

from __future__ import annotations

import pytest

from repro.api import ResultCache, RunConfig, ValuationSession
from repro.cli import build_parser
from repro.core import build_realistic_portfolio
from repro.core.portfolio import Portfolio, Position
from repro.errors import ValuationError
from repro.pricing import PricingProblem


def _mc_family(n: int = 6, n_paths: int = 1_500) -> Portfolio:
    portfolio = Portfolio(name="family")
    for index in range(n):
        problem = PricingProblem(label=f"fam_{index}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        problem.set_option("CallEuro", strike=90.0 + 4.0 * index, maturity=1.0)
        problem.set_method("MC_European", n_paths=n_paths, seed=4)
        portfolio.add(Position(problem=problem, category="mc", label=problem.label))
    return portfolio


@pytest.fixture
def mixed_portfolio() -> Portfolio:
    return build_realistic_portfolio(profile="fast", scale=0.005)


class TestBatchRuns:
    def test_batched_run_matches_unbatched(self, mixed_portfolio):
        plain = ValuationSession(backend="local").run(mixed_portfolio)
        batched = ValuationSession(backend="local").run(mixed_portfolio, batch=True)
        assert plain.ok and batched.ok
        assert batched.n_jobs == plain.n_jobs == len(mixed_portfolio)
        assert batched.prices() == plain.prices()
        assert batched.value() == plain.value()

    def test_batch_group_size_split_is_price_neutral(self):
        family = _mc_family(7)
        plain = ValuationSession(backend="local").run(family)
        split = ValuationSession(backend="local").run(
            family, batch=True, batch_group_size=3
        )
        assert split.prices() == plain.prices()
        assert split.n_jobs == len(family)

    def test_run_config_routes_batch_options(self):
        family = _mc_family(4)
        config = RunConfig(batch=True, batch_group_size=2)
        result = ValuationSession(backend="local").run(family, config=config)
        plain = ValuationSession(backend="local").run(family)
        assert result.prices() == plain.prices()

    def test_simulated_backend_is_batch_aware(self):
        # the simulated cluster prices a ProblemBatch job as one shared
        # simulation plus per-member payoff sweeps, so batching shortens the
        # simulated makespan without changing the position count
        family = _mc_family(8)
        plain = ValuationSession(backend="simulated", n_workers=2).run(family)
        batched = ValuationSession(backend="simulated", n_workers=2).run(
            family, batch=True
        )
        assert batched.n_jobs == plain.n_jobs == len(family)
        assert batched.total_time < plain.total_time

    def test_simulated_sweep_with_batching_is_faster(self):
        family = _mc_family(12)
        session = ValuationSession(backend="simulated")
        plain = session.sweep(family, [2, 4])
        batched = session.sweep(family, [2, 4], batch=True, batch_group_size=3)
        assert all(
            batched.times()[n] < plain.times()[n] for n in (2, 4)
        )

    def test_batch_rejects_nfs_strategy(self, mixed_portfolio):
        session = ValuationSession(backend="local", strategy="nfs")
        with pytest.raises(ValuationError, match="nfs"):
            session.run(mixed_portfolio, batch=True)

    def test_bad_batch_group_size_rejected(self):
        with pytest.raises(ValuationError):
            RunConfig(batch=True, batch_group_size=1)

    def test_batched_run_isolates_member_errors(self):
        import numpy as np

        from repro.pricing.engine import register_product
        from repro.pricing.products.vanilla import EuropeanCall

        class ExplodingSessionCall(EuropeanCall):
            option_name = "ExplodingSessionCallTest"

            def terminal_payoff(self, spot):
                return np.full(np.shape(spot)[0], np.inf)

        register_product(ExplodingSessionCall)
        family = _mc_family(4)
        bad = PricingProblem(label="bad")
        bad.set_asset("equity")
        bad.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        bad.set_option(ExplodingSessionCall(strike=100.0, maturity=1.0))
        bad.set_method("MC_European", n_paths=1_500, seed=4)
        family.add(Position(problem=bad, category="mc", label="bad"))

        result = ValuationSession(backend="local").run(family, batch=True)
        plain = ValuationSession(backend="local").run(family.subset(4))
        assert result.n_errors == 1
        bad_id = len(family) - 1
        assert bad_id in result.errors
        assert result.prices() == plain.prices()  # healthy members unharmed

    def test_batched_multiprocessing_matches_local(self):
        family = _mc_family(5, n_paths=800)
        local = ValuationSession(backend="local").run(family, batch=True)
        remote = ValuationSession(backend="multiprocessing", n_workers=2).run(
            family, batch=True, batch_group_size=3
        )
        assert remote.ok
        assert remote.prices() == local.prices()


class TestSessionCache:
    def test_second_run_is_all_hits(self):
        family = _mc_family(4)
        session = ValuationSession(backend="local", cache=True)
        first = session.run(family)
        second = session.run(family)
        assert second.prices() == first.prices()
        assert second.n_jobs == len(family)
        assert session.cache.stats.hits == len(family)
        hits = [
            entry for entry in second.report.results.values()
            if entry is not None and entry.get("cache_hit")
        ]
        assert len(hits) == len(family)
        assert second.report.scheduler == "cache"

    def test_cache_and_batch_compose(self):
        family = _mc_family(4)
        session = ValuationSession(backend="local", cache=True)
        first = session.run(family, batch=True)
        second = session.run(family, batch=True)
        assert second.prices() == first.prices()
        assert session.cache.stats.hit_rate == pytest.approx(0.5)

    def test_price_uses_the_cache(self):
        session = ValuationSession(backend="local", cache=True)
        kwargs = dict(
            model="BlackScholes1D", option="CallEuro", method="MC_European",
            model_params={"spot": 100.0, "rate": 0.05, "volatility": 0.2},
            option_params={"strike": 100.0, "maturity": 1.0},
            method_params={"n_paths": 1_000, "seed": 1},
        )
        first = session.price(**kwargs)
        second = session.price(**kwargs)
        assert second.price == first.price
        assert session.cache.stats.hits == 1
        assert session.cache.stats.puts == 1

    def test_run_config_cache_flag(self):
        family = _mc_family(3)
        session = ValuationSession(backend="local", cache=True)
        session.run(family)
        bypassed = session.run(family, config=RunConfig(cache=False))
        assert session.cache.stats.hits == 0  # second run bypassed the cache
        assert bypassed.ok

        with pytest.raises(ValuationError, match="no result cache"):
            ValuationSession(backend="local").run(family, config=RunConfig(cache=True))

    def test_run_cache_false_bypasses_the_worker_disk_cache(self, tmp_path):
        family = _mc_family(3)
        session = ValuationSession(backend="local", cache=tmp_path)
        session.run(family)  # populates the shared on-disk store
        bypassed = session.run(family, cache=False)
        assert bypassed.ok
        # neither the master pass nor the worker-side cache may answer hits
        assert not any(
            entry.get("cache_hit")
            for entry in bypassed.report.results.values()
            if entry is not None
        )

    def test_disk_cache_shared_across_sessions(self, tmp_path):
        family = _mc_family(3)
        first = ValuationSession(backend="local", cache=tmp_path)
        warm = first.run(family)
        second = ValuationSession(backend="local", cache=tmp_path)
        replay = second.run(family)
        assert replay.prices() == warm.prices()
        assert second.cache.stats.disk_hits == len(family)

    def test_with_options_carries_the_cache(self):
        session = ValuationSession(backend="local", cache=True)
        derived = session.with_options(strategy="full_load")
        assert derived.cache is session.cache

    def test_invalid_cache_option_rejected(self):
        with pytest.raises(ValuationError):
            ValuationSession(backend="local", cache=123)

    def test_cache_accepts_instance(self):
        cache = ResultCache(max_entries=8)
        session = ValuationSession(backend="local", cache=cache)
        assert session.cache is cache


class TestCliFlags:
    def test_run_parser_accepts_batch_and_cache(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--positions", "8", "--batch", "--cache", "--repeat", "2"]
        )
        assert args.batch is True
        assert args.cache is True
        assert args.repeat == 2

        args = parser.parse_args(["run", "--no-batch", "--cache-dir", "/tmp/c"])
        assert args.batch is False
        assert args.cache_dir == "/tmp/c"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.batch is False
        assert args.cache is False
        assert args.cache_dir is None
