"""Tests of the frozen configuration objects of the unified API."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import BackendSpec, RunConfig, SweepConfig
from repro.cluster.backends import SequentialBackend
from repro.core.scheduler import ChunkedRobinHoodScheduler
from repro.errors import ValuationError


class TestBackendSpec:
    def test_frozen(self):
        spec = BackendSpec("local", 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "simulated"

    def test_options_mapping_normalised_and_hashable(self):
        spec = BackendSpec("multiprocessing", 2, options={"start_method": "fork"})
        assert spec.options == (("start_method", "fork"),)
        assert hash(spec)  # fully frozen specs can key caches

    def test_invalid_worker_count(self):
        with pytest.raises(ValuationError):
            BackendSpec("local", 0)

    def test_coerce_string_validates_against_registry(self):
        spec = BackendSpec.coerce("local", n_workers=3)
        assert isinstance(spec, BackendSpec)
        assert (spec.name, spec.n_workers) == ("local", 3)
        with pytest.raises(ValuationError, match="registered backends"):
            BackendSpec.coerce("warp_drive")

    def test_coerce_passes_instances_through(self):
        backend = SequentialBackend()
        assert BackendSpec.coerce(backend) is backend

    def test_coerce_rejects_options_for_instances(self):
        with pytest.raises(ValuationError, match="already-built"):
            BackendSpec.coerce(SequentialBackend(), options={"start_method": "spawn"})

    def test_coerce_merges_options_into_existing_spec(self):
        spec = BackendSpec("multiprocessing", 2, options={"start_method": "fork"})
        merged = BackendSpec.coerce(spec, options={"start_method": "spawn"})
        assert merged.options == (("start_method", "spawn"),)
        untouched = BackendSpec.coerce(spec, options={"start_method": "fork"})
        assert untouched is spec

    def test_coerce_resizes_existing_spec(self):
        spec = BackendSpec("simulated", 2)
        resized = BackendSpec.coerce(spec, n_workers=7)
        assert resized.n_workers == 7
        assert resized.name == "simulated"
        assert BackendSpec.coerce(spec, n_workers=2) is spec

    def test_coerce_rejects_other_types(self):
        with pytest.raises(ValuationError):
            BackendSpec.coerce(42)

    def test_create_builds_fresh_backends(self):
        spec = BackendSpec("local", 2)
        first, second = spec.create(), spec.create()
        assert isinstance(first, SequentialBackend)
        assert first is not second
        assert first.n_workers == 2


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.strategy == "serialized_load"
        assert config.scheduler is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValuationError):
            RunConfig(strategy="carrier_pigeon")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValuationError):
            RunConfig(scheduler="fifo")

    def test_scheduler_factory_builds_fresh_configured_instances(self):
        config = RunConfig(
            scheduler="chunked_robin_hood", scheduler_options={"chunk_size": 5}
        )
        factory = config.scheduler_factory()
        first, second = factory(), factory()
        assert isinstance(first, ChunkedRobinHoodScheduler)
        assert first is not second
        assert first.chunk_size == 5


class TestSweepConfig:
    def test_cpu_counts_coerced_to_tuple(self):
        config = SweepConfig(cpu_counts=[2, 4, 8])
        assert config.cpu_counts == (2, 4, 8)

    def test_empty_cpu_counts_rejected(self):
        with pytest.raises(ValuationError):
            SweepConfig(cpu_counts=())

    def test_single_cpu_rejected(self):
        with pytest.raises(ValuationError):
            SweepConfig(cpu_counts=(1, 2))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValuationError):
            SweepConfig(cpu_counts=(2, 4), strategy="osmosis")
