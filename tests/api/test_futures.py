"""Unit tests of the streaming job lifecycle: futures, job sets, cancellation.

The contract under test: ``submit_many`` returns real futures that resolve
incrementally (never through a full-batch gather), duplicates share one
future, ``as_completed``/``wait`` follow their ``concurrent.futures``
namesakes, and cancellation/timeout surface as typed, retryable errors.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ALL_COMPLETED,
    FIRST_COMPLETED,
    CancelToken,
    JobSet,
    PricingFuture,
    ValuationSession,
)
from repro.errors import (
    FutureTimeoutError,
    JobCancelledError,
    ValuationError,
)
from repro.pricing import PricingProblem


def _call_problem(strike: float, label: str | None = None) -> PricingProblem:
    problem = PricingProblem(label=label or f"K{strike:.0f}")
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


def _slow_problem(label: str = "slow") -> PricingProblem:
    problem = PricingProblem(label=label)
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
    problem.set_option("CallEuro", strike=100.0, maturity=1.0)
    problem.set_method("MC_European", n_paths=2_000_000, seed=7)
    return problem


class TestPricingFuture:
    def test_done_callbacks_fire_on_resolution(self):
        session = ValuationSession(backend="local")
        (future,) = session.submit_many([_call_problem(100.0)])
        seen: list[PricingFuture] = []
        future.add_done_callback(seen.append)
        assert not seen
        future.result()
        assert seen == [future]
        # late registration fires immediately
        late: list[PricingFuture] = []
        future.add_done_callback(late.append)
        assert late == [future]

    def test_exception_returns_worker_failure(self):
        session = ValuationSession(backend="local")
        bad = PricingProblem(label="bad")
        bad.set_asset("equity")
        bad.set_model("Heston1D", spot=100.0, rate=0.03, v0=0.04, kappa=2.0,
                      theta=0.04, sigma_v=0.4, rho=-0.7)
        bad.set_option("CallEuro", strike=100.0, maturity=1.0)
        bad.set_method("CF_Call")  # closed-form BS formula cannot price Heston
        good, failed = session.submit_many([_call_problem(100.0), bad])
        assert good.exception() is None
        exc = failed.exception()
        assert isinstance(exc, ValuationError)
        assert "IncompatibleMethodError" in str(exc)

    def test_cancel_before_campaign_start(self):
        session = ValuationSession(backend="local")
        first, second = session.submit_many([_call_problem(90.0), _call_problem(110.0)])
        assert second.cancel()
        assert second.cancelled() and second.done()
        with pytest.raises(JobCancelledError):
            second.result()
        assert second.error() == "cancelled"
        # the uncancelled future still prices; the campaign skipped job 2
        assert first.price() > 0
        assert session.gather  # session stays usable

    def test_cancel_after_resolution_is_refused(self):
        session = ValuationSession(backend="local")
        (future,) = session.submit_many([_call_problem(100.0)])
        future.result()
        assert not future.cancel()
        assert not future.cancelled()

    def test_running_reflects_attachment(self):
        session = ValuationSession(backend="simulated")
        jobs = session.submit_many([_call_problem(95.0), _call_problem(105.0)])
        assert not jobs[0].running()
        jobs[0].result()  # starts the campaign
        assert jobs[0].done()


class TestSubmitManyDedup:
    def test_duplicate_problems_share_one_future(self):
        session = ValuationSession(backend="local")
        problem = _call_problem(100.0, label="dup")
        twin = _call_problem(100.0, label="dup")  # equal digest, new object
        futures = session.submit_many([problem, twin, problem])
        assert len(futures) == 3
        assert futures[0] is futures[1] is futures[2]
        assert session.n_pending == 1  # deduplicated before job building
        result = session.gather()
        assert result.n_jobs == 1  # the problem was priced exactly once
        assert futures.prices() == [futures[0].price()] * 3

    def test_different_problems_do_not_collide(self):
        session = ValuationSession(backend="local")
        futures = session.submit_many([_call_problem(90.0), _call_problem(110.0)])
        assert futures[0] is not futures[1]
        assert session.n_pending == 2

    def test_dedup_spans_successive_submit_calls(self):
        session = ValuationSession(backend="local")
        (first,) = session.submit_many([_call_problem(100.0)])
        (second,) = session.submit_many([_call_problem(100.0)])
        assert first is second


class TestJobSet:
    def test_as_completed_yields_each_future_once(self):
        session = ValuationSession(backend="local")
        futures = session.submit_many(
            [_call_problem(k) for k in (80.0, 90.0, 100.0, 110.0)]
        )
        collected = list(futures.as_completed())
        assert sorted(f.job_id for f in collected) == [f.job_id for f in futures]
        assert all(f.done() for f in collected)

    def test_wait_all_completed(self):
        session = ValuationSession(backend="local")
        futures = session.submit_many([_call_problem(k) for k in (90.0, 110.0)])
        done, not_done = futures.wait(return_when=ALL_COMPLETED)
        assert len(done) == 2 and not not_done

    def test_wait_first_completed(self):
        session = ValuationSession(backend="simulated", n_workers=1)
        futures = session.submit_many([_call_problem(k) for k in (90.0, 100.0, 110.0)])
        done, not_done = futures.wait(return_when=FIRST_COMPLETED)
        assert len(done) >= 1
        assert len(done) + len(not_done) == 3

    def test_wait_rejects_unknown_policy(self):
        jobset = JobSet([])
        with pytest.raises(ValuationError, match="return_when"):
            jobset.wait(return_when="WHENEVER")

    def test_slicing_returns_jobset(self):
        session = ValuationSession(backend="local")
        futures = session.submit_many([_call_problem(k) for k in (90.0, 100.0, 110.0)])
        head = futures[:2]
        assert isinstance(head, JobSet)
        assert len(head) == 2

    def test_cancel_all_pending(self):
        session = ValuationSession(backend="local")
        futures = session.submit_many([_call_problem(k) for k in (90.0, 110.0)])
        assert futures.cancel() == 2
        assert all(f.cancelled() for f in futures)


class TestTimeouts:
    @pytest.mark.slow
    def test_result_timeout_is_retryable(self):
        session = ValuationSession(backend="multiprocessing", n_workers=1)
        (future,) = session.submit_many([_slow_problem()])
        with pytest.raises(FutureTimeoutError):
            future.result(timeout=1e-4)
        assert not future.done()  # the job is still running, nothing was lost
        result = future.result()  # blocking retry succeeds
        assert result is not None and result["price"] > 0
        session.gather()  # finalize the backend (stops the worker process)

    def test_as_completed_timeout_raises(self):
        session = ValuationSession(backend="multiprocessing", n_workers=1)
        futures = session.submit_many([_slow_problem("slow_a"), _slow_problem("slow_b")])
        with pytest.raises(FutureTimeoutError):
            list(futures.as_completed(timeout=1e-4))
        futures.wait()  # drain so the campaign can be finalized cleanly
        session.gather()


class TestCampaignLifecycle:
    def test_draining_futures_finalizes_the_backend(self):
        # a campaign fully drained through futures alone must stop its
        # workers -- nothing may wait for an explicit gather()/result()
        session = ValuationSession(backend="multiprocessing", n_workers=2)
        futures = session.submit_many([_call_problem(90.0), _call_problem(110.0)])
        futures.prices()
        core = session._active_cores[-1]
        assert core.finished
        backend = core._stream.backend
        assert all(not process.is_alive() for process in backend._processes)

    def test_fully_iterated_stream_finalizes_the_backend(self):
        from repro.core.portfolio import build_toy_portfolio

        session = ValuationSession(backend="multiprocessing", n_workers=2)
        streamed = session.stream(build_toy_portfolio(n_options=6))
        collected = list(streamed)
        assert len(collected) == 6
        backend = streamed._core._stream.backend
        assert all(not process.is_alive() for process in backend._processes)
        assert streamed.result().n_jobs == 6  # result still assembles

    def test_submit_many_works_with_static_scheduler(self):
        # static-block campaigns flow through the same streaming pipeline
        # as robin hood: futures resolve as the pre-partitioned jobs answer
        session = ValuationSession(backend="local", scheduler="static_block")
        futures = session.submit_many([_call_problem(90.0), _call_problem(110.0)])
        assert futures[0].price() > futures[1].price()
        assert all(f.done() for f in futures)
        assert session.gather().n_jobs == 2

    def test_gathering_an_all_cancelled_queue_raises_cleanly(self):
        session = ValuationSession(backend="local")
        (future,) = session.submit_many([_call_problem(100.0)])
        future.cancel()
        with pytest.raises(ValuationError, match="cancelled"):
            session.gather()
        assert session.n_pending == 0  # the queue is not stranded
        (retry,) = session.submit_many([_call_problem(95.0)])
        assert retry.price() > 0  # the session stays usable


class TestCancelToken:
    def test_token_cancels_queued_positions(self):
        from repro.core.portfolio import build_toy_portfolio

        portfolio = build_toy_portfolio(n_options=24)
        token = CancelToken()
        seen: list[int] = []

        def progress(tick):
            seen.append(tick.done)
            if tick.done >= 4:
                token.cancel()

        session = ValuationSession(backend="local", n_workers=2)
        result = session.run(portfolio, progress=progress, cancel=token)
        cancelled = [
            job_id for job_id, message in result.errors.items()
            if "cancelled" in message
        ]
        assert cancelled, "some queued positions should have been withdrawn"
        assert not result.ok
        # collected positions are real prices, identical to a plain run
        reference = ValuationSession(backend="local", n_workers=2).run(portfolio)
        for job_id, price in result.prices().items():
            assert price == reference.prices()[job_id]

    def test_token_before_start_cancels_everything_queued(self):
        from repro.core.portfolio import build_toy_portfolio

        portfolio = build_toy_portfolio(n_options=8)
        token = CancelToken()
        token.cancel()
        session = ValuationSession(backend="local", n_workers=2)
        result = session.run(portfolio, cancel=token)
        # the initial wave (one job per worker) is already on the workers;
        # everything still queued master-side is withdrawn
        assert len(result.errors) == len(portfolio) - 2
