"""Tests of the :class:`ValuationSession` facade.

The acceptance bar of the unified API: reproduce the quickstart price
(10.4506), a full portfolio run and a Table-II-style strategy comparison
through the session alone, with results identical to the legacy free
functions the session replaced.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BackendSpec,
    ComparisonResult,
    PriceResult,
    RunConfig,
    RunResult,
    SweepConfig,
    SweepResult,
    ValuationSession,
)
from repro.cluster.backends import SequentialBackend
from repro.cluster.costmodel import paper_cost_model
from repro.cluster.simcluster import CommunicationModel, NFSModel
from repro.core import compare_strategies, run_portfolio, sweep_cpu_counts
from repro.core.portfolio import build_toy_portfolio
from repro.errors import SchedulingError, ValuationError
from repro.pricing import (
    BlackScholesModel,
    ClosedFormCall,
    EuropeanCall,
    PricingProblem,
)

BS_PARAMS = {"spot": 100.0, "rate": 0.05, "volatility": 0.2}
CALL_PARAMS = {"strike": 100.0, "maturity": 1.0}


def _call_problem(strike: float, label: str | None = None) -> PricingProblem:
    problem = PricingProblem(label=label)
    problem.set_asset("equity")
    problem.set_model("BlackScholes1D", **BS_PARAMS)
    problem.set_option("CallEuro", strike=strike, maturity=1.0)
    problem.set_method("CF_Call")
    return problem


@pytest.fixture(scope="module")
def toy_portfolio():
    return build_toy_portfolio(n_options=60)


@pytest.fixture(scope="module")
def toy_jobs(toy_portfolio):
    return toy_portfolio.build_jobs(cost_model=paper_cost_model())


class TestPrice:
    def test_quickstart_price_by_names(self):
        session = ValuationSession(backend="simulated")
        result = session.price(
            model="BlackScholes1D", option="CallEuro", method="CF_Call",
            model_params=BS_PARAMS, option_params=CALL_PARAMS,
        )
        assert isinstance(result, PriceResult)
        assert round(result.price, 4) == 10.4506
        assert result.delta == pytest.approx(0.6368, abs=1e-4)
        assert result.ok

    def test_price_from_instances(self):
        session = ValuationSession()
        result = session.price(
            BlackScholesModel(**BS_PARAMS),
            EuropeanCall(**CALL_PARAMS),
            ClosedFormCall(),
        )
        assert round(result.price, 4) == 10.4506

    def test_price_problem_keyword(self, simple_problem):
        result = ValuationSession().price(problem=simple_problem)
        assert round(result.price, 4) == 10.4506
        assert result.label == "fixture_call"
        assert result.method == "CF_Call"

    def test_problem_excludes_names(self, simple_problem):
        with pytest.raises(ValuationError):
            ValuationSession().price(model="BlackScholes1D", problem=simple_problem)

    def test_mixing_names_and_instances_rejected(self):
        with pytest.raises(ValuationError, match="mix"):
            ValuationSession().price(
                BlackScholesModel(**BS_PARAMS), "CallEuro", "CF_Call"
            )

    def test_missing_parts_rejected(self):
        with pytest.raises(ValuationError):
            ValuationSession().price(model="BlackScholes1D")

    def test_format_and_confidence_interval(self):
        result = PriceResult(price=10.0, std_error=0.5, label="x")
        low, high = result.confidence_interval
        assert low < 10.0 < high
        assert "price = 10" in result.format()
        assert result.to_dict()["label"] == "x"


class TestRun:
    def test_portfolio_run_matches_legacy(self, toy_portfolio):
        session = ValuationSession(backend="local", strategy="serialized_load")
        result = session.run(toy_portfolio)
        legacy = run_portfolio(
            toy_portfolio, SequentialBackend(), strategy="serialized_load"
        )
        assert isinstance(result, RunResult)
        assert result.ok and result.n_errors == 0
        assert result.prices() == pytest.approx(legacy.prices())
        assert result.value() == pytest.approx(
            sum(
                pos.quantity * result.prices()[i]
                for i, pos in enumerate(toy_portfolio)
            )
        )

    def test_run_job_list_on_simulated_cluster(self, toy_jobs):
        session = ValuationSession(backend="simulated", n_workers=3)
        result = session.run(toy_jobs)
        assert result.n_jobs == len(toy_jobs)
        assert result.n_workers == 3
        assert result.total_time > 0
        assert result.to_dict()["n_workers"] == 3
        with pytest.raises(ValuationError):  # no portfolio to mark to market
            result.value()

    def test_run_with_config_object(self, toy_portfolio):
        config = RunConfig(strategy="nfs", scheduler="chunked_robin_hood",
                           scheduler_options={"chunk_size": 4})
        session = ValuationSession(backend="simulated", n_workers=2)
        result = session.run(toy_portfolio, config=config)
        assert result.strategy == "nfs"
        assert result.report.scheduler == "chunked_robin_hood"

    def test_run_config_cost_model_drives_simulated_timings(self, toy_portfolio):
        session = ValuationSession(backend="simulated", n_workers=2)
        baseline = session.run(toy_portfolio)
        scaled = session.run(
            toy_portfolio,
            config=RunConfig(cost_model=paper_cost_model().with_scale(1000.0)),
        )
        assert scaled.total_time > baseline.total_time * 100

    def test_backend_instance_sessions_are_one_shot(self, toy_portfolio):
        session = ValuationSession(backend=SequentialBackend())
        assert session.backend_spec is None
        session.run(toy_portfolio)
        with pytest.raises(ValuationError, match="one"):
            session.run(toy_portfolio)

    def test_spec_sessions_are_reusable(self, toy_portfolio):
        session = ValuationSession(backend="local")
        first = session.run(toy_portfolio)
        second = session.run(toy_portfolio)
        assert first.prices() == pytest.approx(second.prices())

    def test_with_options_derives_new_session(self, toy_portfolio):
        base = ValuationSession(backend="local", strategy="serialized_load")
        derived = base.with_options(strategy="nfs", backend="simulated")
        assert derived.backend_spec.name == "simulated"
        assert derived.strategy == "nfs"
        assert base.backend_spec.name == "local"


class TestSubmitMany:
    def test_futures_resolve_incrementally_not_as_a_gather(self):
        session = ValuationSession(backend="local")
        handles = session.submit_many(
            [_call_problem(k, label=f"K{k:.0f}") for k in (90.0, 100.0, 110.0)]
        )
        assert session.n_pending == 3
        assert not handles[0].done()
        # reading one future starts the campaign and pumps the master loop
        # only until that job answers -- never a full-batch gather
        assert handles[1].price() == pytest.approx(10.4506, abs=1e-4)
        assert session.n_pending == 0
        assert handles[0].done()  # collected before job 1 in stream order
        assert not handles[2].done()  # still streaming: no full gather happened
        assert handles[0].price() > handles[2].price()  # K90 call > K110 call
        assert all(h.done() for h in handles)  # reading resolves the rest
        assert handles[0].error() is None

    def test_gather_returns_run_result(self):
        session = ValuationSession(backend="local")
        session.submit_many([_call_problem(100.0)])
        result = session.gather()
        assert isinstance(result, RunResult)
        assert result.n_jobs == 1 and result.ok

    def test_gather_without_submissions_rejected(self):
        with pytest.raises(ValuationError):
            ValuationSession(backend="local").gather()

    def test_non_problem_items_rejected(self):
        with pytest.raises(ValuationError):
            ValuationSession().submit_many([42])

    def test_failed_gather_keeps_handles_pending_for_retry(self):
        session = ValuationSession(backend="local")
        incomplete = PricingProblem(label="incomplete")  # no model/option/method
        (handle,) = session.submit_many([incomplete])
        with pytest.raises(Exception) as first:
            session.gather()  # building the job fails before execution
        assert session.n_pending == 1  # the queue survives the failure
        assert not handle.done()
        # the retry reports the same root cause, not "no pending submissions"
        with pytest.raises(type(first.value)):
            session.gather()

    def test_timing_only_backend_has_no_price(self):
        session = ValuationSession(backend="simulated")
        (handle,) = session.submit_many([_call_problem(100.0)])
        assert handle.result() is None  # simulation advances virtual time only
        with pytest.raises(ValuationError, match="no price"):
            handle.price()


class TestSweep:
    def test_sweep_matches_legacy_sweep(self, toy_jobs):
        session = ValuationSession(backend="simulated")
        result = session.sweep(toy_jobs, [2, 4, 8])
        legacy = sweep_cpu_counts(toy_jobs, [2, 4, 8], strategy="serialized_load")
        assert isinstance(result, SweepResult)
        assert result.times() == pytest.approx(legacy.times())
        assert result.ratios() == pytest.approx(legacy.ratios())
        assert result.label == "serialized_load"
        assert result.best_cpu_count() in (2, 4, 8)
        assert "Speedup" in result.format()

    def test_sweep_accepts_portfolio(self, toy_portfolio):
        result = ValuationSession().sweep(toy_portfolio, [2, 4])
        assert result.cpu_counts() == [2, 4]

    def test_sweep_with_config(self, toy_jobs):
        config = SweepConfig(cpu_counts=(2, 4), strategy="nfs", label="tbl")
        result = ValuationSession().sweep(toy_jobs, config=config)
        assert result.label == "tbl"
        assert result.cpu_counts() == [2, 4]

    def test_empty_cpu_counts_raise_scheduling_error(self, toy_jobs):
        with pytest.raises(SchedulingError):
            ValuationSession().sweep(toy_jobs, [])

    def test_warm_cache_artefact_preserved(self, toy_jobs):
        session = ValuationSession()
        shared = session.sweep(toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=True)
        cold = session.sweep(toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=False)
        assert shared.ratios()[4] > cold.ratios()[4]


class TestNFSCacheSettingsFix:
    """``share_nfs_cache=False`` used to silently drop customised NFS models."""

    @staticmethod
    def _slow_nfs_comm() -> CommunicationModel:
        return CommunicationModel(
            nfs=NFSModel(cold_latency=50e-3, warm_latency=10e-3, bandwidth=1e6)
        )

    def test_cold_runs_keep_custom_nfs_settings(self, toy_jobs):
        default = ValuationSession().sweep(
            toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=False
        )
        custom = ValuationSession(comm=self._slow_nfs_comm()).sweep(
            toy_jobs, [2, 4], strategy="nfs", share_nfs_cache=False
        )
        # the old implementation rebuilt a default CommunicationModel per CPU
        # count, so both sweeps came out identical; the slow NFS must now be
        # strictly slower at every cluster size
        for n_cpus in (2, 4):
            assert custom.times()[n_cpus] > default.times()[n_cpus] * 1.5

    def test_comm_factory_threads_through_legacy_shim(self, toy_jobs):
        calls: list[int] = []

        def factory() -> CommunicationModel:
            calls.append(1)
            return self._slow_nfs_comm()

        table = sweep_cpu_counts(
            toy_jobs, [2, 4], strategy="nfs",
            share_nfs_cache=False, comm_factory=factory,
        )
        assert len(calls) >= 2  # one fresh model per CPU count
        default = sweep_cpu_counts(toy_jobs, [2, 4], strategy="nfs",
                                   share_nfs_cache=False)
        assert table.times()[2] > default.times()[2] * 1.5

    def test_cold_copy_preserves_constants_and_clears_cache(self):
        comm = self._slow_nfs_comm()
        comm.nfs.read_time("/some/file", 1024)
        assert comm.nfs.is_cached("/some/file")
        cold = comm.cold_copy()
        assert cold.nfs.cold_latency == comm.nfs.cold_latency
        assert cold.nfs.bandwidth == comm.nfs.bandwidth
        assert not cold.nfs.is_cached("/some/file")
        assert cold.network is comm.network  # stateless, shared


class TestCompare:
    def test_compare_matches_legacy(self, toy_jobs):
        session = ValuationSession()
        result = session.compare(toy_jobs, [2, 4], strategies=("full_load", "nfs"))
        legacy = compare_strategies(toy_jobs, [2, 4], strategies=("full_load", "nfs"))
        assert isinstance(result, ComparisonResult)
        assert set(result.strategies) == set(legacy)
        for name in result.strategies:
            assert result[name].times() == pytest.approx(legacy[name].times())
        assert result.ok

    def test_table_layout_and_lookup(self, toy_portfolio):
        result = ValuationSession().compare(
            toy_portfolio, [2, 4], strategies=("full_load", "serialized_load")
        )
        assert "full_load" in result.format()
        assert result.fastest_strategy(4) == "serialized_load"
        with pytest.raises(ValuationError):
            result["nfs"]
        with pytest.raises(ValuationError):
            result.fastest_strategy(512)


class TestSessionValidation:
    def test_unknown_backend_name(self):
        with pytest.raises(ValuationError):
            ValuationSession(backend="abacus")

    def test_unknown_strategy_name(self):
        with pytest.raises(SchedulingError):
            ValuationSession(strategy="osmosis")

    def test_unknown_scheduler_name(self):
        with pytest.raises(ValuationError):
            ValuationSession(scheduler="fifo")

    def test_backend_spec_accepted(self, toy_portfolio):
        session = ValuationSession(backend=BackendSpec("local", 2))
        assert session.run(toy_portfolio).ok
