"""Tests of the named backend registry in ``repro.cluster.backends``."""

from __future__ import annotations

import pytest

from repro.cluster.backends import (
    MultiprocessingBackend,
    SequentialBackend,
    WorkerBackend,
    create_backend,
    list_backends,
    register_backend,
)
from repro.cluster.simcluster import SimulatedClusterBackend
from repro.errors import ClusterError


class TestRegistryContents:
    def test_builtin_backends_registered(self):
        names = list_backends()
        assert {"local", "sequential", "multiprocessing", "simulated"} <= set(names)

    def test_names_are_sorted(self):
        assert list_backends() == sorted(list_backends())


class TestCreateBackend:
    def test_local_and_sequential_are_aliases(self):
        for name in ("local", "sequential"):
            backend = create_backend(name, n_workers=2)
            assert isinstance(backend, SequentialBackend)
            assert backend.n_workers == 2

    def test_multiprocessing(self):
        backend = create_backend("multiprocessing", n_workers=2)
        try:
            assert isinstance(backend, MultiprocessingBackend)
            assert backend.n_workers == 2
        finally:
            backend.finalize()

    def test_simulated_gets_strategy_and_size(self):
        backend = create_backend("simulated", n_workers=3, strategy="nfs")
        assert isinstance(backend, SimulatedClusterBackend)
        assert backend.n_workers == 3
        assert backend.strategy == "nfs"

    def test_simulated_extra_options(self):
        backend = create_backend("simulated", n_workers=1, execute=False, node_speed=2.0)
        assert backend.cluster.n_workers == 1

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(ClusterError, match="local"):
            create_backend("no_such_backend")

    def test_each_call_builds_a_fresh_backend(self):
        first = create_backend("local")
        second = create_backend("local")
        assert first is not second


class TestRegisterBackend:
    def test_decorator_registration_roundtrip(self):
        from repro.cluster.backends import _BACKEND_REGISTRY

        @register_backend("test_only_backend")
        def make(n_workers=1, strategy="serialized_load", **options):
            return SequentialBackend(n_workers=n_workers)

        try:
            assert "test_only_backend" in list_backends()
            backend = create_backend("test_only_backend", n_workers=4)
            assert isinstance(backend, WorkerBackend)
            assert backend.n_workers == 4
        finally:
            _BACKEND_REGISTRY.pop("test_only_backend", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ClusterError):
            register_backend("", lambda **kw: SequentialBackend())
