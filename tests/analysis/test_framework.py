"""The repro-lint engine: project building, suppressions, the registry."""

import pytest

from repro.analysis import (
    AnalysisError,
    Checker,
    Finding,
    build_project,
    create_checkers,
    find_suppressions,
    lint_paths,
    list_checkers,
    register_checker,
)
from repro.analysis.core import CHECKERS

EXPECTED_CHECKERS = {
    "determinism",
    "exception-hygiene",
    "frame-protocol",
    "frozen-config",
    "lock-discipline",
    "registry-docs",
}


def test_builtin_checkers_registered():
    assert EXPECTED_CHECKERS <= set(list_checkers())


def test_create_checkers_unknown_name_raises():
    with pytest.raises(AnalysisError, match="unknown checker"):
        create_checkers(["no-such-checker"])


def test_register_checker_decorator_roundtrip():
    @register_checker("test-dummy")
    class DummyChecker(Checker):
        name = "test-dummy"
        description = "test checker"
        rules = {"dummy-rule": "always fires on module line 1"}

        def check(self, project):
            for module in project.walk():
                yield self.finding(module, 1, "dummy-rule", "dummy")

    try:
        assert "test-dummy" in list_checkers()
        (checker,) = create_checkers(["test-dummy"])
        assert isinstance(checker, DummyChecker)
    finally:
        del CHECKERS["test-dummy"]


def test_finding_with_unknown_rule_raises(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n")
    project = build_project([tmp_path], root=tmp_path)

    class RogueChecker(Checker):
        name = "rogue"
        rules = {"known-rule": "fine"}

        def check(self, inner):
            for module in inner.walk():
                yield self.finding(module, 1, "not-declared", "boom")

    with pytest.raises(AnalysisError, match="unknown rule"):
        list(RogueChecker().check(project))


def test_finding_render_and_sort_key():
    finding = Finding(path="a.py", line=3, col=7, rule="r", message="m")
    assert finding.render() == "a.py:3:7: r: m"
    assert finding.sort_key == ("a.py", 3, 7, "r")
    assert finding.as_dict()["rule"] == "r"


def test_build_project_relpaths_and_pycache_skip(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "mod.cpython-310.py").write_text("x = 1\n")
    project = build_project([tmp_path], root=tmp_path)
    assert [m.relpath for m in project.modules] == ["pkg/mod.py"]
    assert project.module_at("pkg/mod.py") is not None
    assert project.module_at("nowhere.py") is None


def test_build_project_missing_path_raises(tmp_path):
    with pytest.raises(AnalysisError, match="no such file"):
        build_project([tmp_path / "missing"], root=tmp_path)


def test_syntax_error_is_a_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    result = lint_paths([tmp_path], root=tmp_path)
    assert [f.rule for f in result.findings] == ["syntax-error"]
    assert result.findings[0].path == "broken.py"


def test_find_suppressions_parses_rules_and_reason(tmp_path):
    (tmp_path / "mod.py").write_text(
        "x = 1  # repro-lint: disable=rule-a,rule-b -- because reasons\n"
    )
    project = build_project([tmp_path], root=tmp_path)
    (suppression,) = find_suppressions(project.modules[0])
    assert suppression.scope == "disable"
    assert suppression.rules == ("rule-a", "rule-b")
    assert suppression.reason == "because reasons"
    assert suppression.line == 1


def test_disable_file_scope_suppresses_whole_module(tmp_path):
    (tmp_path / "mod.py").write_text(
        "# repro-lint: disable-file=except-swallow -- fixture module\n"
        "def f():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
        "\n"
        "def g():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
    )
    result = lint_paths([tmp_path], root=tmp_path)
    assert result.ok
    assert result.suppressed == 2


def test_standalone_suppression_covers_next_line(tmp_path):
    (tmp_path / "mod.py").write_text(
        "def f():\n"
        "    try:\n"
        "        pass\n"
        "    # repro-lint: disable=except-swallow -- covered below\n"
        "    except Exception:\n"
        "        pass\n"
    )
    result = lint_paths([tmp_path], root=tmp_path)
    assert result.ok
    assert result.suppressed == 1


def test_suppression_does_not_cover_other_lines(tmp_path):
    (tmp_path / "mod.py").write_text(
        "# repro-lint: disable=except-swallow -- far from the handler\n"
        "def f():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
    )
    result = lint_paths([tmp_path], root=tmp_path)
    assert [f.rule for f in result.findings] == ["except-swallow"]


def test_checker_selection_limits_rules(tmp_path):
    (tmp_path / "mod.py").write_text(
        "def f():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
    )
    clean = lint_paths([tmp_path], root=tmp_path, checkers=["lock-discipline"])
    assert clean.ok
    dirty = lint_paths([tmp_path], root=tmp_path, checkers=["exception-hygiene"])
    assert [f.rule for f in dirty.findings] == ["except-swallow"]


def test_every_rule_id_is_unique_across_checkers():
    seen = {}
    for checker in create_checkers():
        for rule in checker.rules:
            assert rule not in seen, f"{rule} owned by both {seen[rule]} and {checker.name}"
            seen[rule] = checker.name


def test_checkers_skip_unparseable_modules(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    (tmp_path / "fine.py").write_text(
        "def f():\n"
        "    try:\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n"
    )
    result = lint_paths([tmp_path], root=tmp_path)
    assert sorted(f.rule for f in result.findings) == ["except-swallow", "syntax-error"]
