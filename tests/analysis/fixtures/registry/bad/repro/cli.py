"""A stale CLI: hardcodes names instead of enumerating the registries."""


def cmd_list() -> None:
    print("backends: local")
