"""Registrations without docs or CLI support -- registry-docs fixture."""


def register_backend(name, factory=None):
    return factory


def register_scheduler(name, factory=None):
    return factory


register_backend("local", object)
register_backend("mqtt", object)
register_scheduler("robin_hood", object)
