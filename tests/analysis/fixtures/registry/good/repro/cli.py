"""A live CLI: enumerates both registries."""

from plugins import SCHEDULERS, list_backends


def cmd_list() -> None:
    for name in list_backends():
        print(name)
    for name in sorted(SCHEDULERS):
        print(name)
