"""Deliberately broken lock discipline -- lock-discipline fixture."""

import socket
import threading
import time


class BrokenService:
    """Starts a worker thread, then breaks every lock rule."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._sock = socket.socket()
        self._jobs_done = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        with self._lock:
            self._jobs_done += 1
            time.sleep(0.5)
            self._sock.sendall(b"ping")

    def wait_done(self) -> None:
        with self._cond:
            self._cond.wait()

    def reset(self) -> None:
        self._jobs_done = 0
