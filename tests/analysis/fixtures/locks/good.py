"""Lock discipline done right -- lock-discipline fixture."""

import socket
import threading
import time


class CarefulService:
    """Starts a worker thread and keeps every rule."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._sock = socket.socket()
        self._jobs_done = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        with self._lock:
            self._jobs_done += 1
        time.sleep(0.5)
        self._sock.sendall(b"ping")

    def wait_done(self) -> None:
        with self._cond:
            self._cond.wait(timeout=1.0)

    def reset(self) -> None:
        with self._lock:
            self._jobs_done = 0
