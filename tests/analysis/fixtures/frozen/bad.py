"""Mutations of frozen dataclasses -- frozen-config fixture."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    name: str
    n_workers: int = 2

    def __post_init__(self) -> None:
        self.name = self.name.strip()

    def rename(self, name: str) -> None:
        self.name = name


def retarget() -> Spec:
    spec = Spec("remote")
    spec.n_workers = 8
    setattr(spec, "name", "local")
    return spec
