"""Frozen dataclasses handled correctly -- frozen-config fixture."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Spec:
    name: str
    n_workers: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.strip())


def retarget() -> Spec:
    spec = Spec("remote")
    return replace(spec, n_workers=8)
