"""Swallowed exceptions -- exception-hygiene fixture."""


def risky() -> int:
    return 1


def swallow_everything() -> int:
    try:
        return risky()
    except:
        return 0


def swallow_silently() -> None:
    try:
        risky()
    except Exception:
        pass


def swallow_in_loop() -> int:
    done = 0
    for _ in range(3):
        try:
            done += risky()
        except (ValueError, Exception):
            continue
    return done
