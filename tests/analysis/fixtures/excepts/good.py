"""Broad-but-handled exceptions -- exception-hygiene fixture."""


def risky() -> int:
    return 1


def fallback() -> int:
    try:
        return risky()
    except Exception as exc:
        print(f"pricing failed: {exc}")
        return 0


def narrow_skip() -> int:
    done = 0
    for _ in range(3):
        try:
            done += risky()
        except ValueError:
            continue
    return done
