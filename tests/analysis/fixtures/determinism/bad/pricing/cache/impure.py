"""Wall clock and entropy in a cache module -- determinism fixture."""

import random
import time
import uuid
from datetime import datetime
from time import time as now


def stamp() -> float:
    return time.time()


def stamp_imported() -> float:
    return now()


def when() -> str:
    return datetime.now().isoformat()


def token() -> str:
    return uuid.uuid4().hex


def jitter() -> float:
    return random.random()
