"""Injected clock and seeded rng -- determinism fixture."""

import random


def stamp(clock_now: float) -> float:
    return clock_now


def jitter(rng: random.Random) -> float:
    return rng.random()


def fresh_rng(seed: int) -> random.Random:
    return random.Random(seed)
