"""Worker-side consumer: handles every kind except FRAME_TRACE."""


def handle(kind):
    if kind == FRAME_HELLO:
        return "hello"
    if kind == FRAME_JOB:
        return "job"
    if kind == FRAME_RESULT:
        return "result"
    if kind == FRAME_PING:
        return "pong"
    return FRAME_STOP
