"""Master-side consumer: no arm for FRAME_PING or FRAME_TRACE."""


def handle(kind):
    if kind == FRAME_HELLO:
        return "hello"
    if kind == FRAME_JOB:
        return "job"
    if kind == FRAME_RESULT:
        return "result"
    return FRAME_STOP
