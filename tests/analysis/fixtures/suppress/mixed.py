"""Suppression surface -- engine fixture."""


def swallow() -> None:
    try:
        pass
    # repro-lint: disable=except-swallow -- fixture: a justified waiver
    except Exception:
        pass


def swallow_unjustified() -> None:
    try:
        pass
    except Exception:  # repro-lint: disable=except-swallow
        pass


def swallow_unknown() -> None:
    try:
        pass
    except Exception:  # repro-lint: disable=not-a-rule -- no such rule
        pass
