"""Every built-in checker against its known-good/known-bad fixtures.

Each ``bad`` fixture was written so that specific rules fire on specific
lines; the assertions pin both, so a checker that drifts (wrong rule id,
off-by-one locations, lost findings) fails loudly.  Each ``good`` fixture
exercises the same shapes done correctly and must stay silent.
"""

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, checkers=None):
    root = FIXTURES / name
    return lint_paths([root], root=root, checkers=checkers)


def rule_lines(result):
    return sorted((f.rule, f.path, f.line) for f in result.findings)


# -- lock-discipline -----------------------------------------------------------------
def test_lock_discipline_bad_fixture():
    result = lint_fixture("locks", checkers=["lock-discipline"])
    assert rule_lines(result) == [
        ("lock-blocking-call", "bad.py", 21),
        ("lock-blocking-call", "bad.py", 22),
        ("lock-unguarded-write", "bad.py", 29),
        ("lock-wait-no-timeout", "bad.py", 26),
    ]


def test_lock_discipline_good_fixture_is_clean():
    result = lint_fixture("locks", checkers=["lock-discipline"])
    assert not [f for f in result.findings if f.path == "good.py"]


# -- frozen-config -------------------------------------------------------------------
def test_frozen_config_bad_fixture():
    result = lint_fixture("frozen", checkers=["frozen-config"])
    assert rule_lines(result) == [
        ("frozen-mutation", "bad.py", 20),
        ("frozen-mutation", "bad.py", 21),
        ("frozen-self-mutation", "bad.py", 12),
        ("frozen-self-mutation", "bad.py", 15),
    ]


def test_frozen_config_good_fixture_is_clean():
    result = lint_fixture("frozen", checkers=["frozen-config"])
    assert not [f for f in result.findings if f.path == "good.py"]


# -- exception-hygiene ---------------------------------------------------------------
def test_exception_hygiene_bad_fixture():
    result = lint_fixture("excepts", checkers=["exception-hygiene"])
    assert rule_lines(result) == [
        ("except-bare", "bad.py", 11),
        ("except-swallow", "bad.py", 18),
        ("except-swallow", "bad.py", 27),
    ]


def test_exception_hygiene_good_fixture_is_clean():
    result = lint_fixture("excepts", checkers=["exception-hygiene"])
    assert not [f for f in result.findings if f.path == "good.py"]


# -- determinism ---------------------------------------------------------------------
def test_determinism_bad_fixture():
    result = lint_fixture("determinism/bad", checkers=["determinism"])
    assert rule_lines(result) == [
        ("determinism-entropy", "pricing/cache/impure.py", 23),
        ("determinism-entropy", "pricing/cache/impure.py", 27),
        ("determinism-wall-clock", "pricing/cache/impure.py", 11),
        ("determinism-wall-clock", "pricing/cache/impure.py", 15),
        ("determinism-wall-clock", "pricing/cache/impure.py", 19),
    ]


def test_determinism_good_fixture_is_clean():
    assert lint_fixture("determinism/good", checkers=["determinism"]).ok


# -- frame-protocol ------------------------------------------------------------------
def test_frame_protocol_bad_fixture():
    result = lint_fixture("frames/bad", checkers=["frame-protocol"])
    assert rule_lines(result) == [
        ("frame-duplicate-kind", "serial/frames.py", 8),
        ("frame-ungated-kind", "serial/frames.py", 9),
        ("frame-ungated-kind", "serial/frames.py", 10),
        ("frame-unhandled-kind", "serial/frames.py", 9),
        ("frame-unhandled-kind", "serial/frames.py", 10),
        ("frame-unhandled-kind", "serial/frames.py", 10),
        ("frame-unregistered-kind", "serial/frames.py", 10),
    ]
    # the one-sided miss names the consumer without an arm
    one_sided = [
        f for f in result.findings
        if f.rule == "frame-unhandled-kind" and f.line == 9
    ]
    assert "remote.py" in one_sided[0].message


def test_frame_protocol_good_fixture_is_clean():
    assert lint_fixture("frames/good", checkers=["frame-protocol"]).ok


# -- registry-docs -------------------------------------------------------------------
def test_registry_docs_bad_fixture():
    result = lint_fixture("registry/bad", checkers=["registry-docs"])
    assert rule_lines(result) == [
        ("registry-cli-stale", "repro/cli.py", 1),
        ("registry-cli-stale", "repro/cli.py", 1),
        ("registry-doc-missing", "plugins.py", 13),
        ("registry-doc-missing", "plugins.py", 14),
    ]
    messages = "\n".join(f.message for f in result.findings)
    assert "'mqtt'" in messages
    assert "docs/schedulers.md does not exist" in messages


def test_registry_docs_good_fixture_is_clean():
    assert lint_fixture("registry/good", checkers=["registry-docs"]).ok


# -- engine suppressions over a real checker -----------------------------------------
def test_suppress_fixture_mixes_waivers_and_engine_findings():
    result = lint_fixture("suppress")
    assert rule_lines(result) == [
        ("except-swallow", "mixed.py", 22),
        ("suppression-no-reason", "mixed.py", 15),
        ("suppression-unknown-rule", "mixed.py", 22),
    ]
    # the justified waiver and the reason-less one both still suppress
    assert result.suppressed == 2
