"""The repro-lint command line: formats, selection, exit codes."""

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv):
    return main(list(argv))


def test_exit_zero_on_clean_tree(capsys):
    root = str(FIXTURES / "frames" / "good")
    assert run_cli(root, "--root", root) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean:")


def test_exit_one_on_findings_text_format(capsys):
    root = str(FIXTURES / "excepts")
    assert run_cli(root, "--root", root, "--checkers", "exception-hygiene") == 1
    out = capsys.readouterr().out
    assert "bad.py:11:4: except-bare:" in out
    assert "3 finding(s)" in out


def test_exit_two_on_missing_path(capsys):
    assert run_cli(str(FIXTURES / "no-such-dir")) == 2
    err = capsys.readouterr().err
    assert "no such file or directory" in err


def test_exit_two_on_unknown_checker(capsys):
    root = str(FIXTURES / "excepts")
    assert run_cli(root, "--root", root, "--checkers", "bogus") == 2
    assert "unknown checker" in capsys.readouterr().err


def test_json_format_is_machine_readable(capsys):
    root = str(FIXTURES / "suppress")
    assert run_cli(root, "--root", root, "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["suppressed"] == 2
    assert payload["modules"] == 1
    rules = sorted(f["rule"] for f in payload["findings"])
    assert rules == [
        "except-swallow",
        "suppression-no-reason",
        "suppression-unknown-rule",
    ]
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "message", "checker"}


def test_list_rules_covers_every_builtin_rule(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule in (
        "syntax-error",
        "suppression-no-reason",
        "suppression-unknown-rule",
        "lock-blocking-call",
        "lock-wait-no-timeout",
        "lock-unguarded-write",
        "frame-duplicate-kind",
        "frame-unregistered-kind",
        "frame-ungated-kind",
        "frame-unhandled-kind",
        "frozen-self-mutation",
        "frozen-mutation",
        "determinism-wall-clock",
        "determinism-entropy",
        "registry-doc-missing",
        "registry-cli-stale",
        "except-bare",
        "except-swallow",
    ):
        assert rule in out, f"--list-rules is missing {rule}"
