"""repro-lint applied to this repository itself.

The linter gates CI (`repro-lint --format json src/`), so the repository
must stay clean under its own rules, and the inline-waiver surface must
stay small and fully justified -- the suppression budget below is the
merge contract from the static-analysis docs.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[2]

#: the merge contract: at most this many inline waivers across src/
SUPPRESSION_BUDGET = 10


def test_repo_src_is_lint_clean():
    result = lint_paths([REPO / "src"], root=REPO)
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert result.n_modules > 50  # the whole tree was actually scanned


def test_suppression_budget_and_justifications():
    result = lint_paths([REPO / "src"], root=REPO)
    assert len(result.suppressions) <= SUPPRESSION_BUDGET, [
        f"{s.path}:{s.line}" for s in result.suppressions
    ]
    for suppression in result.suppressions:
        assert suppression.reason, (
            f"{suppression.path}:{suppression.line} suppresses "
            f"{suppression.rules} without a justification"
        )
        assert suppression.scope == "disable", (
            f"{suppression.path}:{suppression.line}: whole-file waivers "
            f"are not allowed in src/"
        )
