"""Streaming determinism: completion-order collection, submission-order results.

The acceptance bar of the streaming redesign: results collected out of order
through ``as_completed()`` / ``stream()`` must reassemble into a
:class:`RunResult` **bit-identical** to a synchronous ``session.run`` -- on
all three backends -- and the virtual-time accounting of the simulated
cluster must not shift by a single event.
"""

from __future__ import annotations

import pytest

from repro.api import ValuationSession
from repro.core.portfolio import Portfolio, Position, build_toy_portfolio
from repro.errors import SchedulingError
from repro.pricing import PricingProblem

BACKENDS = ("local", "multiprocessing", "simulated")


@pytest.fixture(scope="module")
def portfolio() -> Portfolio:
    return build_toy_portfolio(n_options=24)


def _mc_family(n: int = 6, n_paths: int = 1_500) -> Portfolio:
    built = Portfolio(name="family")
    for index in range(n):
        problem = PricingProblem(label=f"fam_{index}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        problem.set_option("CallEuro", strike=90.0 + 4.0 * index, maturity=1.0)
        problem.set_method("MC_European", n_paths=n_paths, seed=4)
        built.add(Position(problem=problem, category="mc", label=problem.label))
    return built


def _identical_reports(streamed, synchronous, check_prices: bool = True) -> None:
    """Bit-identical contract: same key order, same floats, same errors."""
    assert list(streamed.report.results) == list(synchronous.report.results)
    assert list(streamed.report.errors) == list(synchronous.report.errors)
    if check_prices:
        s_prices, r_prices = streamed.prices(), synchronous.prices()
        assert list(s_prices) == list(r_prices)
        for job_id, price in s_prices.items():
            assert price == r_prices[job_id]  # bit-identical, no approx
        for job_id, result in streamed.report.results.items():
            reference = synchronous.report.results[job_id]
            if result is None or reference is None:
                assert result == reference
                continue
            assert result.get("std_error") == reference.get("std_error")


class TestStreamMatchesRun:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streamed_result_is_bit_identical_to_run(self, backend, portfolio):
        n_workers = 3
        synchronous = ValuationSession(backend=backend, n_workers=n_workers).run(
            portfolio
        )
        streamed_run = ValuationSession(backend=backend, n_workers=n_workers).stream(
            portfolio
        )
        collected = list(streamed_run)  # completion order
        result = streamed_run.result()
        executing = backend != "simulated"
        if executing:
            assert len(collected) == len(portfolio)
        _identical_reports(result, synchronous, check_prices=executing)
        assert result.n_jobs == synchronous.n_jobs
        if backend == "simulated":
            # virtual time must not shift by a single event
            assert result.total_time == synchronous.total_time
            assert result.report.master_busy == synchronous.report.master_busy

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_as_completed_out_of_order_reassembles(self, backend, portfolio):
        session = ValuationSession(backend=backend, n_workers=3)
        streamed_run = session.stream(portfolio)
        completion_order = [f.job_id for f in streamed_run.jobs.as_completed()]
        assert sorted(completion_order) == list(range(len(portfolio)))
        result = streamed_run.result()
        # whatever order the workers answered in, the report is submission-ordered
        assert list(result.report.results) == list(range(len(portfolio)))
        reference = ValuationSession(backend=backend, n_workers=3).run(portfolio)
        _identical_reports(result, reference, check_prices=backend != "simulated")

    def test_multiprocessing_streams_in_completion_order(self, portfolio):
        session = ValuationSession(backend="multiprocessing", n_workers=3)
        streamed_run = session.stream(portfolio)
        yielded = [price.job_id for price in streamed_run]
        assert sorted(yielded) == list(range(len(portfolio)))
        result = streamed_run.result()
        assert list(result.report.results) == list(range(len(portfolio)))

    def test_streamed_batch_family_matches_plain_run(self):
        family = _mc_family(6)
        plain = ValuationSession(backend="local").run(family)
        streamed_run = ValuationSession(backend="local").stream(family, batch=True)
        batch_result = streamed_run.result()
        _identical_reports(batch_result, plain)

    def test_cache_hits_stream_as_immediately_resolved(self):
        family = _mc_family(5)
        session = ValuationSession(backend="local", cache=True)
        first = session.run(family)
        streamed_run = session.stream(family)
        # every future was resolved from the cache before any dispatch
        assert streamed_run.n_done == len(family)
        collected = list(streamed_run)
        assert len(collected) == len(family)
        result = streamed_run.result()
        assert result.prices() == first.prices()
        assert all(
            entry.get("cache_hit")
            for entry in result.report.results.values()
            if entry is not None
        )

    def test_run_remains_a_thin_wrapper_over_streaming(self, portfolio):
        # both spellings share the plan/stream/assemble pipeline: same report
        # shape from the same session configuration
        run_result = ValuationSession(backend="local").run(portfolio)
        stream_result = ValuationSession(backend="local").stream(portfolio).result()
        _identical_reports(stream_result, run_result)


class TestStreamErrorPaths:
    def test_every_registered_scheduler_streams(self, portfolio):
        # the historical error path is gone: static/chunked/work-stealing
        # policies stream through the same master loop as robin hood
        from repro.core.scheduler import SCHEDULERS

        reference = ValuationSession(backend="local").run(portfolio)
        for name in SCHEDULERS:
            streamed = ValuationSession(backend="local", scheduler=name).stream(
                portfolio
            )
            result = streamed.result()
            assert result.prices() == reference.prices()

    def test_empty_source_rejected(self):
        with pytest.raises(SchedulingError, match="empty"):
            ValuationSession(backend="local").stream([])

    def test_worker_errors_are_counted_not_yielded(self):
        bad = PricingProblem(label="bad")
        bad.set_asset("equity")
        bad.set_model("Heston1D", spot=100.0, rate=0.03, v0=0.04, kappa=2.0,
                      theta=0.04, sigma_v=0.4, rho=-0.7)
        bad.set_option("CallEuro", strike=100.0, maturity=1.0)
        bad.set_method("CF_Call")
        portfolio = Portfolio(name="with_error")
        good = PricingProblem(label="good")
        good.set_asset("equity")
        good.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        good.set_option("CallEuro", strike=100.0, maturity=1.0)
        good.set_method("CF_Call")
        portfolio.add(Position(problem=good, category="t", label="good"))
        portfolio.add(Position(problem=bad, category="t", label="bad"))
        streamed_run = ValuationSession(backend="local").stream(portfolio)
        yielded = list(streamed_run)
        assert [price.label for price in yielded] == ["good"]
        result = streamed_run.result()
        assert result.n_errors == 1
        assert "IncompatibleMethodError" in result.errors[1]
