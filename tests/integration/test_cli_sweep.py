"""Integration tests of the ``repro-bench sweep`` subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSweepParser:
    def test_sweep_registered_with_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.portfolio == "toy"
        assert args.cpus == [2, 4, 8, 16]
        assert args.strategy == "serialized_load"
        assert args.scheduler is None
        assert args.cold_nfs_cache is False

    def test_sweep_accepts_cpu_list_and_strategy(self):
        args = build_parser().parse_args(
            ["sweep", "--cpus", "2", "4", "--strategy", "nfs", "--cold-nfs-cache"]
        )
        assert args.cpus == [2, 4]
        assert args.strategy == "nfs"
        assert args.cold_nfs_cache is True


class TestSweepExecution:
    def test_sweep_prints_speedup_table(self, capsys):
        code = main(
            ["sweep", "--portfolio", "toy", "--positions", "30", "--cpus", "2", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Speedup table" in out
        assert "toy/serialized_load" in out
        # one row per CPU count plus the summary line
        assert "fastest configuration:" in out
        for n_cpus in ("2", "4"):
            assert any(
                line.strip().startswith(n_cpus) for line in out.splitlines()
            ), f"missing row for {n_cpus} CPUs"

    def test_sweep_with_scheduler_and_cold_cache(self, capsys):
        code = main(
            [
                "sweep", "--portfolio", "toy", "--positions", "20",
                "--cpus", "2", "4", "--strategy", "nfs",
                "--scheduler", "chunked_robin_hood", "--cold-nfs-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "toy/nfs" in out

    def test_sweep_rejects_unknown_scheduler(self, capsys):
        # validated through RunConfig, reported as a clean CLI error
        assert main(["sweep", "--positions", "10", "--scheduler", "fifo"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_sweep_scheduler_options_flow_through(self, capsys):
        code = main([
            "sweep", "--positions", "16", "--cpus", "2", "4",
            "--scheduler", "chunked_robin_hood", "--scheduler-opt", "chunk_size=4",
        ])
        assert code == 0
        assert "Speedup table" in capsys.readouterr().out

    def test_scheduler_opt_without_scheduler_is_rejected(self, capsys):
        assert main(["sweep", "--scheduler-opt", "chunk_size=4"]) == 2
        assert "--scheduler-opt needs --scheduler" in capsys.readouterr().err

    def test_bad_scheduler_option_value_is_rejected(self, capsys):
        code = main([
            "sweep", "--scheduler", "chunked_robin_hood",
            "--scheduler-opt", "chunk_size=0",
        ])
        assert code == 2
        assert "chunk_size" in capsys.readouterr().err

    def test_list_shows_backend_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Backends:" in out
        for name in ("local", "multiprocessing", "simulated"):
            assert f"  {name}" in out
