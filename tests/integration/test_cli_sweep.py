"""Integration tests of the ``repro-bench sweep`` subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSweepParser:
    def test_sweep_registered_with_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.portfolio == "toy"
        assert args.cpus == [2, 4, 8, 16]
        assert args.strategy == "serialized_load"
        assert args.scheduler is None
        assert args.cold_nfs_cache is False

    def test_sweep_accepts_cpu_list_and_strategy(self):
        args = build_parser().parse_args(
            ["sweep", "--cpus", "2", "4", "--strategy", "nfs", "--cold-nfs-cache"]
        )
        assert args.cpus == [2, 4]
        assert args.strategy == "nfs"
        assert args.cold_nfs_cache is True


class TestSweepExecution:
    def test_sweep_prints_speedup_table(self, capsys):
        code = main(
            ["sweep", "--portfolio", "toy", "--positions", "30", "--cpus", "2", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Speedup table" in out
        assert "toy/serialized_load" in out
        # one row per CPU count plus the summary line
        assert "fastest configuration:" in out
        for n_cpus in ("2", "4"):
            assert any(
                line.strip().startswith(n_cpus) for line in out.splitlines()
            ), f"missing row for {n_cpus} CPUs"

    def test_sweep_with_scheduler_and_cold_cache(self, capsys):
        code = main(
            [
                "sweep", "--portfolio", "toy", "--positions", "20",
                "--cpus", "2", "4", "--strategy", "nfs",
                "--scheduler", "chunked_robin_hood", "--cold-nfs-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "toy/nfs" in out

    def test_sweep_rejects_unknown_scheduler(self, capsys):
        from repro.errors import ValuationError

        with pytest.raises(ValuationError):
            main(["sweep", "--positions", "10", "--scheduler", "fifo"])

    def test_list_shows_backend_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Backends:" in out
        for name in ("local", "multiprocessing", "simulated"):
            assert f"  {name}" in out
