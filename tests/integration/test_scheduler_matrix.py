"""The scheduler x backend streaming matrix, pinned against golden outputs.

The streaming-first refactor collapsed three hand-rolled run-to-completion
loops onto one policy-driven :class:`~repro.core.scheduler.ScheduleStream`.
The acceptance bar is *bit-identical* behaviour:

* on the simulated backend, the virtual times (makespan, master busy time,
  per-worker busy times, per-event collection instants) of the robin-hood,
  static-block and chunked schedulers must match the **pre-refactor loops**,
  which this module keeps verbatim as reference implementations;
* on every executing backend (sequential, multiprocessing, remote TCP
  loopback), every registered scheduler must produce prices bit-identical
  to the sequential reference;
* mid-stream cancellation (``cancel_pending`` and the session-level
  :class:`~repro.api.futures.CancelToken`) must behave sanely for the
  chunked and static policies, not just robin hood.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.api import ValuationSession
from repro.cluster.backends import create_backend
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.core.portfolio import build_toy_portfolio
from repro.core.scheduler import (
    SCHEDULERS,
    ChunkedRobinHoodScheduler,
    StaticBlockScheduler,
    WorkStealingScheduler,
)
from repro.core.strategies import get_strategy
from repro.cluster.backends.base import Job
from repro.cluster.costmodel import paper_cost_model

STRATEGY = get_strategy("serialized_load")

#: heterogeneous job mix: cheap head, expensive middle, cheap tail -- the
#: shape that separates static from dynamic scheduling
COSTS = [0.01] * 10 + [0.8, 1.2, 0.5] + [0.02] * 12


def _jobs(costs=COSTS):
    return [
        Job(job_id=i, path=f"/virtual/m{i}.pb", file_size=700, compute_cost=c,
            category="matrix")
        for i, c in enumerate(costs)
    ]


def _sim_backend(n_workers=4):
    return SimulatedClusterBackend(ClusterSpec.homogeneous(n_workers))


def _prepare(backend, strategy, job):
    if getattr(backend, "requires_payload", True):
        return strategy.prepare(job)
    return None


# ---------------------------------------------------------------------------
# The pre-refactor run-to-completion loops, kept verbatim as golden oracles.
# ---------------------------------------------------------------------------

def _legacy_robin_hood(jobs, backend, strategy):
    backend.on_run_start(len(jobs))
    queue = deque(jobs)
    in_flight = 0
    completed = []

    def dispatch(worker_id):
        nonlocal in_flight
        job = queue.popleft()
        backend.dispatch(worker_id, job, _prepare(backend, strategy, job))
        in_flight += 1

    for worker_id in range(min(backend.n_workers, len(queue))):
        dispatch(worker_id)
    while queue or in_flight:
        done = backend.collect()
        completed.append(done)
        in_flight -= 1
        if queue:
            dispatch(done.worker_id)
    for worker_id in range(backend.n_workers):
        backend.send_stop(worker_id)
    return completed, backend.finalize()


def _legacy_static_block(jobs, backend, strategy):
    backend.on_run_start(len(jobs))
    n_workers = backend.n_workers
    completed = []
    for index, job in enumerate(jobs):
        worker_id = min(index * n_workers // len(jobs), n_workers - 1)
        backend.dispatch(worker_id, job, _prepare(backend, strategy, job))
    for _ in range(len(jobs)):
        completed.append(backend.collect())
    for worker_id in range(n_workers):
        backend.send_stop(worker_id)
    return completed, backend.finalize()


def _legacy_chunked(jobs, backend, strategy, chunk_size):
    backend.on_run_start(len(jobs))
    completed = []
    chunks = [list(jobs[i : i + chunk_size]) for i in range(0, len(jobs), chunk_size)]
    queue = list(chunks)
    outstanding = {}

    def dispatch_chunk(worker_id, chunk):
        batch = getattr(backend, "dispatch_batch", None)
        if batch is not None and getattr(backend, "requires_payload", True) is False:
            batch(worker_id, chunk, None)
        elif batch is not None:
            batch(worker_id, chunk, [_prepare(backend, strategy, j) for j in chunk])
        else:  # pragma: no cover - every backend has dispatch_batch now
            for job in chunk:
                backend.dispatch(worker_id, job, _prepare(backend, strategy, job))

    for worker_id in range(min(backend.n_workers, len(queue))):
        chunk = queue.pop(0)
        dispatch_chunk(worker_id, chunk)
        outstanding[worker_id] = outstanding.get(worker_id, 0) + len(chunk)
    remaining = sum(outstanding.values()) + sum(len(c) for c in queue)
    while remaining:
        done = backend.collect()
        completed.append(done)
        remaining -= 1
        outstanding[done.worker_id] -= 1
        if outstanding[done.worker_id] == 0 and queue:
            chunk = queue.pop(0)
            dispatch_chunk(done.worker_id, chunk)
            outstanding[done.worker_id] += len(chunk)
    for worker_id in range(backend.n_workers):
        backend.send_stop(worker_id)
    return completed, backend.finalize()


_LEGACY = {
    "robin_hood": lambda jobs, backend: _legacy_robin_hood(jobs, backend, STRATEGY),
    "static_block": lambda jobs, backend: _legacy_static_block(jobs, backend, STRATEGY),
    "chunked_robin_hood": lambda jobs, backend: _legacy_chunked(
        jobs, backend, STRATEGY, chunk_size=5
    ),
}

_NEW = {
    "robin_hood": lambda: SCHEDULERS["robin_hood"](),
    "static_block": lambda: StaticBlockScheduler(),
    "chunked_robin_hood": lambda: ChunkedRobinHoodScheduler(chunk_size=5),
}


def _events(completed):
    return [
        (c.job_id, c.worker_id, c.collected_at, c.compute_time) for c in completed
    ]


class TestGoldenVirtualTimes:
    """stream().finish() must not move a single virtual-time event."""

    @pytest.mark.parametrize("name", sorted(_LEGACY))
    @pytest.mark.parametrize("n_workers", [1, 3, 4, 7])
    def test_bit_identical_to_pre_refactor_loop(self, name, n_workers):
        jobs = _jobs()
        golden_completed, golden_stats = _LEGACY[name](jobs, _sim_backend(n_workers))

        outcome = _NEW[name]().run(_jobs(), _sim_backend(n_workers), STRATEGY)
        assert _events(outcome.completed) == _events(golden_completed)
        assert outcome.stats.total_time == golden_stats.total_time
        assert outcome.stats.master_busy == golden_stats.master_busy
        assert outcome.stats.worker_busy == golden_stats.worker_busy
        assert outcome.stats.bytes_sent == golden_stats.bytes_sent

        streamed = _NEW[name]().stream(_jobs(), _sim_backend(n_workers), STRATEGY)
        collected = list(streamed)  # one event at a time, interleaved refills
        finished = streamed.finish()
        assert _events(collected) == _events(golden_completed)
        assert finished.stats.total_time == golden_stats.total_time

    def test_chunked_outcome_still_reports_chunk_size(self):
        outcome = ChunkedRobinHoodScheduler(chunk_size=5).run(
            _jobs(), _sim_backend(3), STRATEGY
        )
        assert outcome.extra == {"chunk_size": 5}


@pytest.fixture(scope="module")
def portfolio():
    return build_toy_portfolio(n_options=12)


@pytest.fixture(scope="module")
def reference_prices(portfolio):
    return ValuationSession(backend="local").run(portfolio).prices()


@pytest.fixture(scope="module")
def worker_pool():
    from repro.cluster.worker import spawn_local_workers

    with spawn_local_workers(2) as pool:
        yield pool


def _session(backend, pool, scheduler):
    if backend == "remote":
        return ValuationSession(
            backend="remote",
            backend_options={"hosts": pool.hosts},
            scheduler=scheduler,
        )
    return ValuationSession(backend=backend, n_workers=2, scheduler=scheduler)


class TestSchedulerBackendMatrix:
    """Every registered scheduler streams on every backend, same prices."""

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    @pytest.mark.parametrize(
        "backend", ["local", "multiprocessing", "simulated", "remote"]
    )
    def test_stream_finish_matches_reference(
        self, scheduler, backend, portfolio, reference_prices, worker_pool
    ):
        session = _session(backend, worker_pool, scheduler)
        streamed = session.stream(portfolio)
        result = streamed.result()
        assert result.report.scheduler == scheduler
        assert list(result.report.results) == list(range(len(portfolio)))
        if backend == "simulated":  # timing-only: no prices to compare
            assert result.total_time > 0
        else:
            assert result.prices() == reference_prices  # bit-identical
        assert not result.report.errors

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_run_equals_stream_finish_on_simulated_virtual_time(self, scheduler):
        jobs = _jobs()
        run_outcome = SCHEDULERS[scheduler]().run(jobs, _sim_backend(4), STRATEGY)
        stream = SCHEDULERS[scheduler]().stream(_jobs(), _sim_backend(4), STRATEGY)
        stream_outcome = stream.finish()
        assert stream_outcome.stats.total_time == run_outcome.stats.total_time
        assert _events(stream_outcome.completed) == _events(run_outcome.completed)


class TestWorkStealing:
    def test_completes_every_job_once(self):
        outcome = WorkStealingScheduler().run(_jobs(), _sim_backend(4), STRATEGY)
        assert sorted(c.job_id for c in outcome.completed) == list(range(len(COSTS)))

    def test_beats_static_on_skewed_blocks(self):
        # one contiguous block is far heavier than the others: the static
        # owner becomes the critical path; stealing drains its tail
        costs = [0.01] * 30 + [1.0] * 10
        static = StaticBlockScheduler().run(_jobs(costs), _sim_backend(4), STRATEGY)
        stealing = WorkStealingScheduler().run(_jobs(costs), _sim_backend(4), STRATEGY)
        assert stealing.total_time < static.total_time

    def test_idle_workers_steal_in_the_initial_wave(self):
        # more workers than jobs: workers without a block of their own must
        # still receive work immediately
        outcome = WorkStealingScheduler().run(
            _jobs([0.5, 0.5]), _sim_backend(6), STRATEGY
        )
        assert len(outcome.completed) == 2


class TestMidStreamCancellation:
    @pytest.mark.parametrize("scheduler_name", ["chunked_robin_hood", "work_stealing"])
    def test_cancel_pending_mid_stream(self, scheduler_name):
        scheduler = (
            ChunkedRobinHoodScheduler(chunk_size=4)
            if scheduler_name == "chunked_robin_hood"
            else WorkStealingScheduler()
        )
        jobs = _jobs([0.1] * 20)
        stream = scheduler.stream(jobs, _sim_backend(2), STRATEGY)
        stream.collect_next()
        dropped = stream.cancel_pending()
        assert dropped  # something was still queued master-side
        outcome = stream.finish()
        assert len(outcome.completed) + len(stream.cancelled_jobs) == 20
        collected = {c.job_id for c in outcome.completed}
        assert collected.isdisjoint({j.job_id for j in dropped})

    def test_static_block_has_nothing_to_cancel(self):
        # the static policy dispatches everything in the initial wave, so a
        # mid-stream cancel finds nothing queued and the run still completes
        stream = StaticBlockScheduler().stream(
            _jobs([0.1] * 8), _sim_backend(2), STRATEGY
        )
        stream.collect_next()
        assert stream.cancel_pending() == []
        assert len(stream.finish().completed) == 8

    def test_cancel_job_withdraws_only_queued_chunk_members(self):
        scheduler = ChunkedRobinHoodScheduler(chunk_size=3)
        jobs = _jobs([0.1] * 12)
        stream = scheduler.stream(jobs, _sim_backend(2), STRATEGY)
        # jobs 0..5 went out in the initial two chunks; the rest are queued
        assert stream.cancel_job(0) is False
        assert stream.cancel_job(11) is True
        outcome = stream.finish()
        assert len(outcome.completed) == 11
        assert [j.job_id for j in stream.cancelled_jobs] == [11]

    @pytest.mark.parametrize("scheduler_name", ["static_block", "chunked_robin_hood"])
    def test_cancel_token_through_the_session(self, scheduler_name, portfolio):
        from repro.api.futures import CancelToken

        token = CancelToken()
        seen = []

        def progress(tick):
            seen.append(tick.job_id)
            if len(seen) == 3:
                token.cancel()

        scheduler = (
            # small chunks so work is still queued master-side mid-stream
            ChunkedRobinHoodScheduler(chunk_size=2)
            if scheduler_name == "chunked_robin_hood"
            else scheduler_name
        )
        session = ValuationSession(backend="local", n_workers=2, scheduler=scheduler)
        result = session.run(portfolio, progress=progress, cancel=token)
        cancelled = [
            job_id
            for job_id, message in result.report.errors.items()
            if "cancelled" in message
        ]
        if scheduler_name == "static_block":
            # everything was already dispatched: nothing could be withdrawn
            assert cancelled == []
            assert len(result.prices()) == len(portfolio)
        else:
            assert cancelled  # still-queued chunks were withdrawn
            assert len(result.prices()) + len(cancelled) == len(portfolio)


class TestChunkedDispatchDownTheWire:
    """The chunked policy rides the native bulk path of each backend."""

    def test_multiprocessing_chunks_travel_as_one_queue_message(
        self, portfolio, reference_prices
    ):
        session = ValuationSession(
            backend="multiprocessing",
            n_workers=2,
            scheduler=ChunkedRobinHoodScheduler(chunk_size=4),
        )
        assert session.run(portfolio).prices() == reference_prices

    def test_remote_chunks_travel_as_one_frame(
        self, portfolio, reference_prices, worker_pool
    ):
        session = ValuationSession(
            backend="remote",
            backend_options={"hosts": worker_pool.hosts},
            scheduler=ChunkedRobinHoodScheduler(chunk_size=4),
        )
        assert session.run(portfolio).prices() == reference_prices

    def test_remote_batch_frame_bytes_are_fewer_than_per_job(self, worker_pool):
        # one frame per chunk must save the per-job header/envelope overhead
        def jobs():
            return build_toy_portfolio(n_options=8).build_jobs(
                cost_model=paper_cost_model(), attach_problems=True
            )

        # backends built sequentially: each loopback server handles one
        # master connection at a time
        per_job = create_backend("remote", hosts=worker_pool.hosts)
        solo = SCHEDULERS["robin_hood"]().run(jobs(), per_job, STRATEGY)
        chunked = create_backend("remote", hosts=worker_pool.hosts)
        batched = ChunkedRobinHoodScheduler(chunk_size=4).run(
            jobs(), chunked, STRATEGY
        )
        assert batched.stats.bytes_sent < solo.stats.bytes_sent
        assert len(batched.completed) == len(solo.completed) == 8
