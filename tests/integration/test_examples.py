"""Smoke tests running the example scripts end to end.

The examples are part of the public deliverable; running them (with reduced
workloads where they accept arguments) guarantees they do not rot as the
library evolves.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, argv: list[str] | None = None) -> None:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_example(capsys):
    _run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "closed form : 10.4506" in out
    assert "problem file round-trip OK: True" in out


def test_master_worker_mpi_example(capsys):
    _run_example("master_worker_mpi.py")
    out = capsys.readouterr().out
    assert "priced 24 problems with 3 slaves" in out


def test_risk_report_example(capsys):
    _run_example("risk_report.py")
    out = capsys.readouterr().out
    assert "present value:" in out
    assert "historical VaR" in out


@pytest.mark.slow
def test_portfolio_pricing_example(capsys):
    _run_example("portfolio_pricing.py", ["2"])
    out = capsys.readouterr().out
    assert "sequential reference" in out
    assert out.count("errors=0") == 3
    assert "positions incrementally" in out  # streaming section ran


def test_cluster_scaling_example_quick(capsys):
    _run_example("cluster_scaling.py", ["--quick"])
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out and "Table III" in out
    assert "Speedup" in out
