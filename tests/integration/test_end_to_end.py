"""End-to-end integration tests across the pricing, serial, cluster and core
layers."""

from __future__ import annotations

import pytest

from repro.cluster import MultiprocessingBackend, SequentialBackend, mpi, paper_cost_model
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.core import (
    build_realistic_portfolio,
    build_toy_portfolio,
    portfolio_value,
    run_portfolio,
)
from repro.serial import Serial, sload


class TestPortfolioAcrossBackends:
    """The same portfolio must give identical prices on every backend and
    under every transmission strategy."""

    @pytest.fixture(scope="class")
    def portfolio(self):
        return build_realistic_portfolio(profile="fast", scale=0.005, seed=7)

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory, portfolio):
        return portfolio.to_store(tmp_path_factory.mktemp("portfolio"))

    @pytest.fixture(scope="class")
    def reference_prices(self, portfolio, store):
        report = run_portfolio(
            portfolio, SequentialBackend(), strategy="serialized_load", store=store
        )
        assert not report.errors
        return report.prices()

    @pytest.mark.parametrize("strategy", ["full_load", "nfs", "serialized_load"])
    def test_sequential_strategies_agree(self, portfolio, store, reference_prices, strategy):
        report = run_portfolio(portfolio, SequentialBackend(), strategy=strategy, store=store)
        assert not report.errors
        assert report.prices() == pytest.approx(reference_prices)

    @pytest.mark.parametrize("strategy", ["full_load", "nfs", "serialized_load"])
    def test_multiprocessing_strategies_agree(self, portfolio, store, reference_prices, strategy):
        backend = MultiprocessingBackend(n_workers=2)
        report = run_portfolio(portfolio, backend, strategy=strategy, store=store)
        assert not report.errors
        assert report.prices() == pytest.approx(reference_prices)

    def test_simulated_backend_in_execute_mode_agrees(self, portfolio, store, reference_prices):
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(4), strategy="serialized_load", execute=True
        )
        jobs = portfolio.build_jobs(store=store, attach_problems=True)
        from repro.core import run_jobs

        report = run_jobs(jobs, backend, strategy="serialized_load")
        assert not report.errors
        assert report.prices() == pytest.approx(reference_prices)
        assert report.total_time > 0  # virtual seconds

    def test_portfolio_value_consistent(self, portfolio, reference_prices):
        value_from_cluster = portfolio_value(portfolio, reference_prices)
        value_recomputed = portfolio_value(portfolio)
        assert value_from_cluster == pytest.approx(value_recomputed, rel=1e-9)


class TestFig4MasterWorkerScript:
    """Behavioural reproduction of the paper's Fig. 4/5 master/slave listing
    on the MPI facade, shipping serialized problems end to end."""

    def test_robin_hood_with_serialized_problems(self, tmp_path):
        portfolio = build_toy_portfolio(n_options=18)
        store = portfolio.to_store(tmp_path / "problems")
        paths = store.paths()
        expected = {
            str(path): store.load(i).compute().price for i, path in enumerate(paths)
        }

        TAG_NAME, TAG_PROBLEM, TAG_RESULT = 1, 2, 3

        def slave(comm):
            while True:
                name = comm.recv_obj(source=0, tag=TAG_NAME)
                if name == "":
                    break
                packed = comm.recv(source=0, tag=TAG_PROBLEM)
                problem = mpi.unpack(packed)
                result = problem.compute()
                comm.send_obj({"name": name, "price": result.price}, dest=0, tag=TAG_RESULT)

        def send_problem(comm, path, dest):
            serial: Serial = sload(path)
            comm.send_obj(str(path), dest=dest, tag=TAG_NAME)
            comm.send(mpi.pack(serial), dest=dest, tag=TAG_PROBLEM)

        n_slaves = 3
        results = {}
        with mpi.spawn(n_slaves, slave) as comm:
            queue = list(paths)
            for rank in range(1, n_slaves + 1):
                send_problem(comm, queue.pop(0), rank)
            while queue:
                status = comm.probe(source=mpi.ANY_SOURCE, tag=TAG_RESULT)
                answer = comm.recv_obj(source=status.source, tag=TAG_RESULT)
                results[answer["name"]] = answer["price"]
                send_problem(comm, queue.pop(0), status.source)
            for _ in range(n_slaves):
                answer = comm.recv_obj(source=mpi.ANY_SOURCE, tag=TAG_RESULT)
                results[answer["name"]] = answer["price"]
            for rank in range(1, n_slaves + 1):
                comm.send_obj("", dest=rank, tag=TAG_NAME)

        assert results == pytest.approx(expected)


class TestCommandLine:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BlackScholes1D" in out and "CF_Call" in out

    def test_price_command(self, capsys):
        from repro.cli import main

        assert main(["price", "--spot", "100", "--strike", "100", "--maturity", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "price  = 10.45" in out

    def test_table1_command_quick(self, capsys):
        from repro.cli import main

        assert main(["table1", "--cpus", "2", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Speedup" in out
        assert " 8 " in out or "     8" in out

    def test_run_command(self, capsys):
        from repro.cli import main

        assert main(["run", "--portfolio", "toy", "--positions", "12", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "portfolio value" in out
