#!/usr/bin/env python
"""The paper's Fig. 4/5 master/slave script, ported to the MPI-like facade.

The original Nsp script spawns slaves, sends each of them serialized
``PremiaModel`` objects, probes for answers from any source, and keeps
feeding the fastest slaves until the portfolio is exhausted (the "Robin Hood"
loop).  This example is a line-for-line port to
:mod:`repro.cluster.mpi`: ``send_obj`` / ``recv_obj`` / ``probe`` play the
roles of ``MPI_Send_Obj`` / ``MPI_Recv_Obj`` / ``MPI_Probe``, and problems
travel as serialized buffers exactly as in the paper.

Run with:  python examples/master_worker_mpi.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cluster import mpi
from repro.core import build_toy_portfolio
from repro.serial import Serial, sload

TAG_NAME = 1
TAG_PROBLEM = 2
TAG_RESULT = 3


def slave(comm: mpi.Communicator) -> None:
    """Slave part of Fig. 4: receive problems until the empty name arrives."""
    while True:
        name = comm.recv_obj(source=0, tag=TAG_NAME)
        if name == "":
            break
        packed = comm.recv(source=0, tag=TAG_PROBLEM)      # MPI_Recv of the packed object
        problem = mpi.unpack(packed)                        # MPI_Unpack + unserialize
        result = problem.compute()
        comm.send_obj({"name": name, "price": result.price}, dest=0, tag=TAG_RESULT)


def send_problem(comm: mpi.Communicator, path: Path, dest: int) -> None:
    """Fig. 5's send_premia_pb: load, serialize, pack, send name then object."""
    serial: Serial = sload(path)                            # serialized load (sload)
    comm.send_obj(str(path), dest=dest, tag=TAG_NAME)       # send the name
    comm.send(mpi.pack(serial), dest=dest, tag=TAG_PROBLEM)  # send the packed object


def main(n_slaves: int = 3, n_problems: int = 24) -> None:
    portfolio = build_toy_portfolio(n_options=n_problems)
    with tempfile.TemporaryDirectory() as tmp:
        store = portfolio.to_store(Path(tmp) / "problems")
        paths = store.paths()
        results: list[dict] = []

        with mpi.spawn(n_slaves, slave) as comm:
            queue = list(paths)
            # first send one job to each slave
            for rank in range(1, min(n_slaves, len(queue)) + 1):
                send_problem(comm, queue.pop(0), dest=rank)
            in_flight = min(n_slaves, n_problems)

            # Robin Hood: whoever answers gets the next job
            while queue:
                status = comm.probe(source=mpi.ANY_SOURCE, tag=TAG_RESULT)
                results.append(comm.recv_obj(source=status.source, tag=TAG_RESULT))
                send_problem(comm, queue.pop(0), dest=status.source)

            # drain the remaining answers
            for _ in range(in_flight):
                results.append(comm.recv_obj(source=mpi.ANY_SOURCE, tag=TAG_RESULT))

            # tell all slaves to stop working
            for rank in range(1, n_slaves + 1):
                comm.send_obj("", dest=rank, tag=TAG_NAME)

        print(f"priced {len(results)} problems with {n_slaves} slaves")
        total = sum(entry["price"] for entry in results)
        print(f"sum of prices: {total:.4f}")
        for entry in results[:5]:
            print(f"  {Path(entry['name']).name}: {entry['price']:.4f}")


if __name__ == "__main__":
    main()
