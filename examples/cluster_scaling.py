#!/usr/bin/env python
"""Reproduce the paper's speedup tables on the simulated cluster.

Regenerates the three data artefacts of the paper's evaluation section --
Table I (non-regression tests), Table II (10,000-option toy portfolio with
the three transmission strategies) and Table III (7,931-claim realistic
portfolio) -- using the discrete-event cluster simulator, so that the whole
study runs in a few seconds on a laptop.

Run with:  python examples/cluster_scaling.py [--quick]
"""

from __future__ import annotations

import sys

from repro.cluster import paper_cost_model
from repro.core import (
    build_realistic_portfolio,
    build_regression_portfolio,
    build_toy_portfolio,
    compare_strategies,
    format_comparison_table,
    sweep_cpu_counts,
)

TABLE1_CPUS = [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256]
TABLE2_CPUS = [2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50]
TABLE3_CPUS = [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512]

QUICK_CPUS = [2, 4, 16, 64, 256]


def table1(cpus: list[int]) -> None:
    print("=" * 72)
    print("Table I -- speedup of the Premia non-regression tests")
    print("=" * 72)
    portfolio = build_regression_portfolio(profile="paper")
    jobs = portfolio.build_jobs(cost_model=paper_cost_model())
    print(f"{len(jobs)} regression problems, "
          f"{sum(j.compute_cost for j in jobs):.0f}s of single-worker work")
    print(sweep_cpu_counts(jobs, cpus, strategy="serialized_load").format())


def table2(cpus: list[int]) -> None:
    print("=" * 72)
    print("Table II -- 10,000-option toy portfolio, strategy comparison")
    print("=" * 72)
    portfolio = build_toy_portfolio(n_options=10_000)
    jobs = portfolio.build_jobs(cost_model=paper_cost_model())
    tables = compare_strategies(jobs, cpus)
    print(format_comparison_table(tables.values()))
    print("\nNote: the NFS column of the paper is biased by the server cache "
          "surviving between runs; rerun with share_nfs_cache=False in "
          "repro.core.compare_strategies for cold-cache numbers.")


def table3(cpus: list[int]) -> None:
    print("=" * 72)
    print("Table III -- 7,931-claim realistic portfolio, strategy comparison")
    print("=" * 72)
    portfolio = build_realistic_portfolio(profile="paper")
    jobs = portfolio.build_jobs(cost_model=paper_cost_model())
    print(f"portfolio composition: {portfolio.count_by_category()}")
    print(f"total single-worker work: {sum(j.compute_cost for j in jobs):.0f}s")
    tables = compare_strategies(jobs, cpus)
    print(format_comparison_table(tables.values()))


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    table1(QUICK_CPUS if quick else TABLE1_CPUS)
    print()
    table2(QUICK_CPUS if quick else TABLE2_CPUS)
    print()
    table3(QUICK_CPUS if quick else TABLE3_CPUS)
