#!/usr/bin/env python
"""Parallel portfolio valuation on the local machine.

Reproduces the workflow of Section 4 at laptop scale: build a (scaled-down)
version of the realistic portfolio of Section 4.3, write each pricing problem
to its own file (the paper's portfolio-as-a-collection-of-files
representation), then value the whole portfolio with the Robin-Hood
master/worker loop on real ``multiprocessing`` workers, comparing the three
problem-transmission strategies of Table II/III.

The whole run goes through the unified
:class:`~repro.api.session.ValuationSession` facade: one session per backend
configuration, ``session.run(portfolio, store=...)`` per experiment.

Run with:  python examples/portfolio_pricing.py [n_workers]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import ValuationSession
from repro.core import build_realistic_portfolio


def main(n_workers: int = 3) -> None:
    # ~160 positions keeping the six slices of the paper's portfolio
    portfolio = build_realistic_portfolio(profile="fast", scale=0.02)
    print(f"portfolio: {len(portfolio)} positions")
    for category, count in portfolio.count_by_category().items():
        print(f"  {category:22s} {count}")

    with tempfile.TemporaryDirectory() as tmp:
        store = portfolio.to_store(Path(tmp) / "portfolio_files")
        print(f"\nwrote {len(store)} problem files ({store.total_bytes()} bytes)")

        # sequential reference run
        sequential = ValuationSession(backend="local", strategy="serialized_load")
        reference = sequential.run(portfolio, store=store)
        reference_value = reference.value()
        print(f"sequential reference: {reference.total_time:.2f}s, "
              f"portfolio value {reference_value:.2f}")

        # parallel runs, one per transmission strategy; the session rebuilds a
        # fresh multiprocessing backend for every run
        session = ValuationSession(backend="multiprocessing", n_workers=n_workers)
        for strategy in ("full_load", "nfs", "serialized_load"):
            result = session.run(portfolio, strategy=strategy, store=store)
            value = result.value()
            drift = abs(value - reference_value)
            print(
                f"{strategy:16s} on {n_workers} workers: {result.total_time:6.2f}s "
                f"speedup x{reference.total_time / result.total_time:4.2f}  "
                f"value {value:.2f} (|diff| {drift:.2e}) errors={result.n_errors}"
            )

        # streaming collection: results land in completion order while the
        # final RunResult stays submission-ordered and bit-identical to run()
        streamed = session.stream(portfolio, store=store)
        n_priced = sum(1 for _ in streamed)
        streaming_result = streamed.result()
        streamed_value = streaming_result.value()
        print(
            f"streamed {n_priced}/{len(portfolio)} positions incrementally; "
            f"value {streamed_value:.2f} "
            f"(|diff vs sequential| {abs(streamed_value - reference_value):.2e})"
        )


if __name__ == "__main__":
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    main(workers)
