#!/usr/bin/env python
"""Quickstart: price options the Premia/Nsp way.

Reproduces the scripting workflow of Section 3.3 of the paper: create a
pricing problem, set the asset class / model / option / method, compute, save
the problem to an architecture-independent file, reload it and reuse it --
first through the unified :class:`~repro.api.session.ValuationSession`
facade (the recommended entry point), then with the lower-level objects.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import ValuationSession
from repro.pricing import (
    BlackScholesModel,
    ClosedFormCall,
    EuropeanCall,
    FourierCOS,
    HestonModel,
    MonteCarloEuropean,
    PricingProblem,
    compute_greeks,
)
from repro.serial import load, save, sload


def unified_session_api() -> None:
    """The one-object entry point: a session prices by registry names."""
    print("=== Unified ValuationSession API ===")
    session = ValuationSession(backend="local", strategy="serialized_load")
    result = session.price(
        model="BlackScholes1D", option="CallEuro", method="CF_Call",
        model_params={"spot": 100.0, "rate": 0.05, "volatility": 0.2},
        option_params={"strike": 100.0, "maturity": 1.0},
    )
    print(f"session price: {result.price:.4f} (delta {result.delta:.4f})")

    # futures-based submission: queue several strikes, stream the results in
    # as the master collects them (completion order, not submission order)
    problems = []
    for strike in (90.0, 100.0, 110.0):
        p = PricingProblem(label=f"call_K{strike:.0f}")
        p.set_asset("equity")
        p.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
        p.set_option("CallEuro", strike=strike, maturity=1.0)
        p.set_method("CF_Call")
        problems.append(p)
    futures = session.submit_many(problems)       # -> JobSet of PricingFuture
    for future in futures.as_completed():
        print(f"  collected {future.label}: {future.price():.4f}")
    prices = ", ".join(f"{f.label}={f.price():.4f}" for f in futures)
    print(f"batched strikes: {prices}")


def premia_style_workflow() -> None:
    """The paper's example: configure a problem by names and compute it."""
    print("=== Premia-style problem specification ===")
    problem = PricingProblem(label="example_heston_american_put")
    problem.set_asset("equity")
    problem.set_model(
        "Heston1D",
        spot=100.0, rate=0.03, v0=0.04, kappa=2.0, theta=0.04, sigma_v=0.4, rho=-0.7,
    )
    problem.set_option("PutAmer", strike=100.0, maturity=1.0)
    # the method named in the paper's example script, with light parameters so
    # the example runs in a couple of seconds
    problem.set_method(
        "MC_AM_Alfonsi_LongstaffSchwartz", n_paths=20_000, n_steps=50, seed=42
    )
    result = problem.compute()
    print(f"American put under Heston (Longstaff-Schwartz): {result.price:.4f} "
          f"+/- {result.std_error:.4f}")

    # save / load the problem file, as 'save("fic", P)' does in the paper
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fic"
        save(path, problem)
        reloaded = load(path)
        print(f"problem file round-trip OK: {reloaded == problem}")
        serial = sload(path)
        print(f"sload wraps the file as {serial!r} without rebuilding the object")


def direct_api() -> None:
    """The plain Python API: models, products and methods as objects."""
    print("\n=== Direct pricing API ===")
    model = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)
    option = EuropeanCall(strike=100.0, maturity=1.0)

    closed_form = ClosedFormCall().price(model, option)
    monte_carlo = MonteCarloEuropean(n_paths=200_000, seed=1).price(model, option)
    print(f"closed form : {closed_form.price:.4f} (delta {closed_form.delta:.4f})")
    print(
        f"Monte-Carlo : {monte_carlo.price:.4f} +/- {monte_carlo.std_error:.4f} "
        f"(CI {monte_carlo.confidence_interval})"
    )

    heston = HestonModel(spot=100.0, rate=0.03, v0=0.04, kappa=2.0, theta=0.04,
                         sigma_v=0.4, rho=-0.7)
    cos_price = FourierCOS(n_terms=512).price(heston, option)
    print(f"Heston call by the COS method: {cos_price.price:.4f}")

    greeks = compute_greeks(model, option, ClosedFormCall())
    print(f"bump-and-revalue Greeks: delta={greeks.delta:.4f} gamma={greeks.gamma:.4f} "
          f"vega={greeks.vega:.4f} rho={greeks.rho:.4f}")


if __name__ == "__main__":
    unified_session_api()
    premia_style_workflow()
    direct_api()
