#!/usr/bin/env python
"""Distributed portfolio valuation over TCP workers.

The paper runs its benchmark on a real cluster: an MPI master deals
serialized pricing problems to slave processes on other nodes and collects
the answers as they arrive.  This example plays that deployment on one
machine: :func:`~repro.cluster.worker.spawn_local_workers` starts real
worker *processes* serving the remote protocol on ``127.0.0.1``, and the
session's ``"remote"`` backend talks to them over genuine TCP sockets --
the exact code path that would drive workers on other hosts
(``repro-worker --port 9631`` on each node, ``hosts=["node:9631", ...]``
on the master).

Streaming works over the wire unchanged: results are printed in
*completion order* (the paper's master collecting from any source), and
the final report is still submission-ordered and bit-identical to a
sequential run, which this script verifies.

Run with:  python examples/remote_cluster.py [n_workers]
"""

from __future__ import annotations

import sys

from repro.api import ValuationSession
from repro.cluster.worker import spawn_local_workers
from repro.core import build_toy_portfolio


def main(n_workers: int = 3) -> None:
    portfolio = build_toy_portfolio(n_options=24)
    print(f"portfolio: {len(portfolio)} positions")

    # sequential reference run (the correctness yardstick)
    reference = ValuationSession(backend="local").run(portfolio)
    print(f"sequential reference: portfolio value {reference.value():.2f}")

    with spawn_local_workers(n_workers) as pool:
        print(f"\nspawned {len(pool)} TCP workers: {', '.join(pool)}")
        session = ValuationSession(
            backend="remote", backend_options={"hosts": pool.hosts}
        )

        # stream the run: one PriceResult per position, in completion order
        streamed = session.stream(portfolio)
        for count, price in enumerate(streamed, start=1):
            label = price.label or f"job {price.job_id}"
            print(f"  [{count:2d}/{len(portfolio)}] {label:<24.24s} "
                  f"price={price.price:9.4f}")
        result = streamed.result()

    report = result.report
    print(f"\nvalued {report.n_jobs} positions on {report.n_workers} remote "
          f"workers in {report.total_time:.2f}s "
          f"({report.bytes_sent} bytes over the wire, {len(report.errors)} errors)")
    print(f"portfolio value = {result.value():.2f}")

    sequential = [entry["price"] for entry in reference.report.results.values()]
    remote = [entry["price"] for entry in report.results.values()]
    assert remote == sequential, "remote prices must be bit-identical"
    print("remote prices are bit-identical to the sequential reference")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
