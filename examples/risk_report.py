#!/usr/bin/env python
"""Daily risk report of an equity derivatives book.

The paper's motivation is the overnight risk run imposed by the Basel II
framework: the bank revalues its book and its sensitivities to model
parameters every day.  This example builds a small equity book, computes its
present value, its aggregated Greeks, a volatility sensitivity sweep, and a
one-day historical VaR -- the post-treatment the cluster-sized runs feed.

Run with:  python examples/risk_report.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Portfolio,
    Position,
    historical_var,
    portfolio_greeks,
    portfolio_value,
    scenario_jobs,
    sensitivity_sweep,
)
from repro.pricing import PricingProblem


def build_book() -> Portfolio:
    """A small book of equity options on one underlying."""
    book = Portfolio(name="equity_book")
    spot, rate, vol = 100.0, 0.03, 0.22

    def bs_problem(option: str, method: str, label: str, quantity: float, **option_params):
        problem = PricingProblem(label=label)
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", spot=spot, rate=rate, volatility=vol)
        problem.set_option(option, **option_params)
        problem.set_method(method)
        book.add(Position(problem=problem, quantity=quantity, category=option, label=label))

    # long calls, short puts, a barrier hedge and an American protection leg
    for strike in (90.0, 100.0, 110.0):
        bs_problem("CallEuro", "CF_Call", f"call_{strike:.0f}", quantity=100.0,
                   strike=strike, maturity=1.0)
        bs_problem("PutEuro", "CF_Put", f"put_{strike:.0f}", quantity=-50.0,
                   strike=strike, maturity=0.5)
    bs_problem("CallDownOutEuro", "CF_Barrier", "doc_hedge", quantity=200.0,
               strike=100.0, maturity=1.0, barrier=80.0, rebate=0.0)

    american = PricingProblem(label="american_protection")
    american.set_asset("equity")
    american.set_model("BlackScholes1D", spot=spot, rate=rate, volatility=vol)
    american.set_option("PutAmer", strike=95.0, maturity=2.0)
    american.set_method("FD_American", n_space=200, n_time=100)
    book.add(Position(problem=american, quantity=75.0, category="PutAmer",
                      label="american_protection"))
    return book


def main() -> None:
    book = build_book()
    print(f"book: {len(book)} positions, categories {book.categories()}")

    value = portfolio_value(book)
    print(f"\npresent value: {value:,.2f}")

    report = portfolio_greeks(book)
    print("aggregated Greeks:")
    print(f"  delta = {report.total_delta:12.2f}")
    print(f"  gamma = {report.total_gamma:12.4f}")
    print(f"  vega  = {report.total_vega:12.2f}")
    print(f"  rho   = {report.total_rho:12.2f}")
    print("value by category:")
    for category, amount in report.by_category.items():
        print(f"  {category:18s} {amount:12.2f}")

    print("\nvolatility sensitivity (parallel-shift of the vol parameter):")
    sweep = sensitivity_sweep(book, "volatility", bumps=[-0.04, -0.02, 0.0, 0.02, 0.04],
                              relative=False)
    for bump, shocked in sorted(sweep.items()):
        print(f"  vol {bump:+.2f}: value {shocked:12.2f} (P&L {shocked - value:+10.2f})")

    # the scenario expansion that turns a book into the cluster-sized workload
    scenarios = scenario_jobs(book, "spot", bumps=np.linspace(-0.05, 0.05, 11), relative=True)
    print(f"\nscenario expansion: {len(book)} positions x 11 spot scenarios "
          f"= {len(scenarios)} atomic pricing problems")

    rng = np.random.default_rng(7)
    returns = rng.normal(0.0, 0.015, size=250)
    var = historical_var(book, returns, confidence=0.99)
    print(f"\n1-day 99% historical VaR over {var['n_scenarios']} scenarios: "
          f"{var['var']:,.2f} (expected shortfall {var['expected_shortfall']:,.2f}, "
          f"worst loss {var['worst_loss']:,.2f})")


if __name__ == "__main__":
    main()
