"""Repository-level pytest configuration.

Makes the package importable straight from the source tree so that the test
suite and the benchmarks run even on machines where ``pip install -e .`` is
not possible (the fully offline case documented in the README).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
