"""Benchmark B1 -- shared-path batch pricing and the result cache.

The realistic portfolio's Monte-Carlo slices are families of near-identical
problems (same model, generator and time grid; only strikes/payoffs differ).
This benchmark builds one such family -- ``N`` put options on the same
10-dimensional basket, each nominally requiring its own 10^5-path simulation
-- and values it three ways on the in-process backend:

* **unbatched**: every position simulates its own path set (the pre-batch
  behaviour);
* **batched** (``batch=True``): the planner groups the family by simulation
  signature and prices all members against one shared path set;
* **cached**: a second batched run against a warm digest-keyed result cache.

The prices must be *bit-identical* across all three runs (the shared paths
are exactly the paths each member would simulate alone), the batched run must
be at least ~5x faster, and the cached run must answer every position from
the cache.  Results land in ``benchmarks/results/BENCH_batch_pricing.json``.

Run standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_batch_pricing.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import write_bench_json  # noqa: E402
from repro.api import ValuationSession  # noqa: E402
from repro.core.portfolio import Portfolio, Position  # noqa: E402
from repro.pricing import PricingProblem, flat_correlation, plan_batches  # noqa: E402

#: full-profile family size and path count (the acceptance configuration)
FULL_POSITIONS = 210
FULL_PATHS = 100_000
#: smoke-profile sizes for the CI check (seconds, not minutes)
SMOKE_POSITIONS = 24
SMOKE_PATHS = 4_000

DIMENSION = 10
MIN_SPEEDUP = 5.0


def build_basket_family(n_positions: int, n_paths: int) -> Portfolio:
    """``n_positions`` basket puts on one 10-d model: a single shared family."""
    vols = [0.15 + 0.01 * (i % 10) for i in range(DIMENSION)]
    corr = flat_correlation(DIMENSION, 0.3).tolist()
    weights = [1.0 / DIMENSION] * DIMENSION
    portfolio = Portfolio(name="batch_family")
    for index in range(n_positions):
        strike = 80.0 + 40.0 * index / max(n_positions - 1, 1)
        problem = PricingProblem(label=f"basket_put_K{strike:.2f}")
        problem.set_asset("equity")
        problem.set_model(
            "BlackScholesND",
            spot=[100.0] * DIMENSION,
            rate=0.045,
            volatilities=vols,
            correlation=corr,
            dividends=0.0,
        )
        problem.set_option("BasketPutEuro", strike=strike, maturity=1.0, weights=weights)
        problem.set_method(
            "MC_European", n_paths=n_paths, n_steps=1, antithetic=True,
            control_variate=True, seed=7,
        )
        portfolio.add(Position(problem=problem, category="basket_mc", label=problem.label))
    return portfolio


def run_batch_benchmark(n_positions: int, n_paths: int) -> dict:
    """Time unbatched vs batched vs cached valuation of one family."""
    portfolio = build_basket_family(n_positions, n_paths)
    plan = plan_batches([position.problem for position in portfolio])

    start = time.perf_counter()
    unbatched = ValuationSession(backend="local").run(portfolio)
    unbatched_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = ValuationSession(backend="local").run(portfolio, batch=True)
    batched_s = time.perf_counter() - start

    cached_session = ValuationSession(backend="local", cache=True)
    cached_session.run(portfolio, batch=True)  # warm the cache
    start = time.perf_counter()
    cached = cached_session.run(portfolio, batch=True)
    cached_s = time.perf_counter() - start
    warm_lookups = n_positions  # the second run's lookups
    warm_hits = sum(
        1 for entry in cached.report.results.values()
        if entry is not None and entry.get("cache_hit")
    )

    prices = unbatched.prices()
    return {
        "n_positions": n_positions,
        "n_paths": n_paths,
        "dimension": DIMENSION,
        "n_groups": len(plan.groups),
        "n_simulations_saved": plan.n_simulations_saved,
        "unbatched_wall_s": round(unbatched_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "cached_wall_s": round(cached_s, 4),
        "speedup_batched": round(unbatched_s / batched_s, 2),
        "speedup_cached": round(unbatched_s / cached_s, 2),
        "bit_identical": prices == batched.prices() == cached.prices(),
        "cache_hit_rate_warm": warm_hits / warm_lookups,
        "portfolio_value": round(sum(prices.values()), 6),
    }


def test_batch_pricing_speedup(benchmark):
    """>=200-position family: >=5x from shared paths, bit-identical prices."""
    payload = benchmark.pedantic(
        run_batch_benchmark, args=(FULL_POSITIONS, FULL_PATHS), rounds=1, iterations=1
    )
    write_bench_json("batch_pricing", payload)

    assert payload["bit_identical"], "batched prices must match unbatched bit-for-bit"
    assert payload["n_groups"] == 1, "one family must form one shared-simulation group"
    assert payload["n_simulations_saved"] == FULL_POSITIONS - 1
    assert payload["speedup_batched"] >= MIN_SPEEDUP
    assert payload["cache_hit_rate_warm"] == 1.0
    assert payload["speedup_cached"] >= payload["speedup_batched"]


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (CI smoke: tiny sizes, relaxed speedup bound)."""
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    n_positions = SMOKE_POSITIONS if smoke else FULL_POSITIONS
    n_paths = SMOKE_PATHS if smoke else FULL_PATHS
    payload = run_batch_benchmark(n_positions, n_paths)
    name = "batch_pricing_smoke" if smoke else "batch_pricing"
    path = write_bench_json(name, payload)
    print(f"wrote {path}")
    for key, value in payload.items():
        print(f"  {key} = {value}")
    if not payload["bit_identical"]:
        print("FAIL: batched prices differ from unbatched prices", file=sys.stderr)
        return 1
    if payload["cache_hit_rate_warm"] != 1.0:
        print("FAIL: warm cache run did not hit on every position", file=sys.stderr)
        return 1
    floor = 1.2 if smoke else MIN_SPEEDUP
    if payload["speedup_batched"] < floor:
        print(f"FAIL: batched speedup {payload['speedup_batched']} < {floor}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
