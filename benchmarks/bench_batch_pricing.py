"""Benchmark B1 -- shared-path batch pricing, the stacked kernel and the cache.

The portfolio is a risk-management scenario grid priced with common random
numbers: ``N_FAMILIES`` volatility scenarios on one 10-dimensional basket,
each scenario valued at ``N_STRIKES`` strikes with the *same* quasi-random
(Sobol) stream -- the textbook setup for scenario sensitivities, and the
worst case for naive pricing because every position nominally re-draws and
re-inverts the identical 10^5-point Sobol sample.  It is valued five ways:

* **unbatched**: every position simulates its own path set (the pre-batch
  behaviour);
* **batched** (``batch=True``): the planner groups positions by simulation
  signature and prices each scenario family against one shared path set;
* **kernel=loop / kernel=stacked**: the plan-level kernel comparison
  (``price_problems``) -- the loop baseline prices the plan one group at a
  time, the stacked kernel runs *all* groups as one stacked-array
  computation in which every family consumes one shared draw cohort;
* **cached**: a second batched run against a warm digest-keyed result cache.

Prices must be *bit-identical* across all five runs (the stacked kernel
replays the loop kernel's IEEE operation sequence; the differential suite
under ``tests/differential/`` is the enforcement harness).  The batched run
must beat unbatched by ``MIN_BATCH_SPEEDUP``, the stacked kernel must beat
the batched loop baseline by ``MIN_STACKED_SPEEDUP``, and the cached run
must answer every position from the cache.  Results land in
``benchmarks/results/BENCH_batch_pricing.json``.

Run standalone for the CI smoke check (tiny sizes, 0-ULP kernel check)::

    PYTHONPATH=src python benchmarks/bench_batch_pricing.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import write_bench_json  # noqa: E402
from repro.api import ValuationSession  # noqa: E402
from repro.core.portfolio import Portfolio, Position  # noqa: E402
from repro.pricing import (  # noqa: E402
    PricingProblem,
    flat_correlation,
    plan_batches,
    price_problems,
)

#: full-profile grid (the acceptance configuration): 30 scenarios x 7 strikes
FULL_FAMILIES = 30
FULL_STRIKES = 7
FULL_PATHS = 100_000
#: smoke-profile sizes for the CI check (seconds, not minutes)
SMOKE_FAMILIES = 10
SMOKE_STRIKES = 3
SMOKE_PATHS = 4_096

DIMENSION = 10
MIN_BATCH_SPEEDUP = 5.0
MIN_STACKED_SPEEDUP = 3.0


def build_scenario_grid(n_families: int, n_strikes: int, n_paths: int) -> Portfolio:
    """``n_families`` vol scenarios x ``n_strikes`` basket puts, one Sobol seed.

    Every position uses the same quasi-random stream (common random numbers,
    seed 7), so each scenario family forms one shared-simulation group and
    all groups form a single draw cohort for the stacked kernel.
    """
    corr = flat_correlation(DIMENSION, 0.3).tolist()
    weights = [1.0 / DIMENSION] * DIMENSION
    portfolio = Portfolio(name="scenario_grid")
    for fam in range(n_families):
        vols = [0.12 + 0.004 * fam + 0.01 * (i % 10) for i in range(DIMENSION)]
        for j in range(n_strikes):
            strike = 80.0 + 40.0 * j / max(n_strikes - 1, 1)
            problem = PricingProblem(label=f"scen{fam:02d}_K{strike:.2f}")
            problem.set_asset("equity")
            problem.set_model(
                "BlackScholesND",
                spot=[100.0] * DIMENSION,
                rate=0.045,
                volatilities=vols,
                correlation=corr,
                dividends=0.0,
            )
            problem.set_option("BasketPutEuro", strike=strike, maturity=1.0,
                               weights=weights)
            problem.set_method(
                "MC_European", n_paths=n_paths, n_steps=1, antithetic=False,
                control_variate=False, seed=7, rng_kind="sobol",
            )
            portfolio.add(Position(problem=problem, category="scenario_mc",
                                   label=problem.label))
    return portfolio


def run_batch_benchmark(n_families: int, n_strikes: int, n_paths: int) -> dict:
    """Time unbatched vs batched vs kernels vs cached on one scenario grid."""
    portfolio = build_scenario_grid(n_families, n_strikes, n_paths)
    n_positions = n_families * n_strikes
    plan = plan_batches([position.problem for position in portfolio])

    start = time.perf_counter()
    unbatched = ValuationSession(backend="local").run(portfolio)
    unbatched_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = ValuationSession(backend="local").run(portfolio, batch=True)
    batched_s = time.perf_counter() - start

    # plan-level kernel comparison: fresh problems per run so no result is
    # reused, same grouping, only the evaluation strategy differs
    loop_grid = build_scenario_grid(n_families, n_strikes, n_paths)
    start = time.perf_counter()
    loop_results = price_problems([p.problem for p in loop_grid], kernel="loop")
    kernel_loop_s = time.perf_counter() - start

    stacked_grid = build_scenario_grid(n_families, n_strikes, n_paths)
    start = time.perf_counter()
    stacked_results = price_problems([p.problem for p in stacked_grid],
                                     kernel="stacked")
    kernel_stacked_s = time.perf_counter() - start

    cached_session = ValuationSession(backend="local", cache=True)
    cached_session.run(portfolio, batch=True)  # warm the cache
    start = time.perf_counter()
    cached = cached_session.run(portfolio, batch=True)
    cached_s = time.perf_counter() - start
    warm_lookups = n_positions  # the second run's lookups
    warm_hits = sum(
        1 for entry in cached.report.results.values()
        if entry is not None and entry.get("cache_hit")
    )

    prices = unbatched.prices()
    ordered = [prices[job_id] for job_id in sorted(prices)]
    kernels_bit_identical = (
        [r.price for r in loop_results]
        == [r.price for r in stacked_results]
        == ordered
    )
    return {
        "n_positions": n_positions,
        "n_families": n_families,
        "n_paths": n_paths,
        "dimension": DIMENSION,
        "rng_kind": "sobol",
        "n_groups": len(plan.groups),
        "n_simulations_saved": plan.n_simulations_saved,
        "unbatched_wall_s": round(unbatched_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "kernel_loop_wall_s": round(kernel_loop_s, 4),
        "kernel_stacked_wall_s": round(kernel_stacked_s, 4),
        "cached_wall_s": round(cached_s, 4),
        "speedup_batched": round(unbatched_s / batched_s, 2),
        "speedup_stacked": round(kernel_loop_s / kernel_stacked_s, 2),
        "speedup_cached": round(unbatched_s / cached_s, 2),
        "bit_identical": prices == batched.prices() == cached.prices(),
        "kernels_bit_identical": kernels_bit_identical,
        "cache_hit_rate_warm": warm_hits / warm_lookups,
        "portfolio_value": round(sum(prices.values()), 6),
    }


def test_batch_pricing_speedup(benchmark):
    """Full grid: >=5x from shared paths, >=3x stacked-over-loop, bit-equal."""
    payload = benchmark.pedantic(
        run_batch_benchmark, args=(FULL_FAMILIES, FULL_STRIKES, FULL_PATHS),
        rounds=1, iterations=1,
    )
    write_bench_json("batch_pricing", payload)

    assert payload["bit_identical"], "batched prices must match unbatched bit-for-bit"
    assert payload["kernels_bit_identical"], "stacked kernel must be bit-equal to loop"
    assert payload["n_groups"] == FULL_FAMILIES, "one group per scenario family"
    assert payload["n_simulations_saved"] == FULL_FAMILIES * (FULL_STRIKES - 1)
    assert payload["speedup_batched"] >= MIN_BATCH_SPEEDUP
    assert payload["speedup_stacked"] >= MIN_STACKED_SPEEDUP
    assert payload["cache_hit_rate_warm"] == 1.0
    assert payload["speedup_cached"] >= payload["speedup_batched"]


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (CI smoke: tiny sizes, relaxed speedup bounds)."""
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    n_families = SMOKE_FAMILIES if smoke else FULL_FAMILIES
    n_strikes = SMOKE_STRIKES if smoke else FULL_STRIKES
    n_paths = SMOKE_PATHS if smoke else FULL_PATHS
    payload = run_batch_benchmark(n_families, n_strikes, n_paths)
    name = "batch_pricing_smoke" if smoke else "batch_pricing"
    path = write_bench_json(name, payload)
    print(f"wrote {path}")
    for key, value in payload.items():
        print(f"  {key} = {value}")
    if not payload["bit_identical"]:
        print("FAIL: batched prices differ from unbatched prices", file=sys.stderr)
        return 1
    if not payload["kernels_bit_identical"]:
        print("FAIL: stacked kernel prices differ from loop kernel (ULP != 0)",
              file=sys.stderr)
        return 1
    if payload["cache_hit_rate_warm"] != 1.0:
        print("FAIL: warm cache run did not hit on every position", file=sys.stderr)
        return 1
    batch_floor = 1.2 if smoke else MIN_BATCH_SPEEDUP
    if payload["speedup_batched"] < batch_floor:
        print(f"FAIL: batched speedup {payload['speedup_batched']} < {batch_floor}",
              file=sys.stderr)
        return 1
    stacked_floor = 1.0 if smoke else MIN_STACKED_SPEEDUP
    if payload["speedup_stacked"] < stacked_floor:
        print(f"FAIL: stacked speedup {payload['speedup_stacked']} < {stacked_floor}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
