"""Benchmark T3 -- Table III of the paper.

"A realistic portfolio valuation": the 7,931-claim equity portfolio of
Section 4.3 (vanilla, barrier PDE, 40-d basket Monte-Carlo, local-volatility
Monte-Carlo, American PDE, 7-d American basket Longstaff-Schwartz), valued
with the Robin-Hood scheduler for 2 to 512 CPUs under the three transmission
strategies.

The benchmark regenerates the full table on the simulated cluster, checks the
qualitative claims of Section 4.3 (all strategies within a few percent of
each other, speedup ratio still above ~0.8 at 256 CPUs, marked degradation at
320-512 CPUs) and writes the rows to
``benchmarks/results/table3_realistic_portfolio.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_bench_json, write_result
from repro.cluster.costmodel import paper_cost_model
from repro.core import (
    build_realistic_portfolio,
    compare_strategies,
    format_comparison_table,
)

#: the CPU counts of Table III
TABLE3_CPUS = [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512]

#: published Table III serialized-load column (seconds)
PAPER_TABLE3_SERIALIZED = {
    2: 5776.33, 4: 1925.29, 8: 840.403, 16: 386.745, 32: 189.354, 64: 94.7316,
    128: 47.6968, 256: 27.8228, 512: 20.1779,
}


@pytest.fixture(scope="module")
def realistic_jobs():
    portfolio = build_realistic_portfolio(profile="paper")
    return portfolio.build_jobs(cost_model=paper_cost_model())


def test_table3_realistic_portfolio(benchmark, realistic_jobs):
    """Regenerate the full three-strategy Table III."""

    import time as time_module

    def regenerate():
        return compare_strategies(realistic_jobs, TABLE3_CPUS)

    start = time_module.perf_counter()
    tables = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    wall_s = time_module.perf_counter() - start
    write_bench_json(
        "table3_realistic_portfolio",
        {
            "wall_s": round(wall_s, 4),
            "n_jobs": len(realistic_jobs),
            "cpu_counts": TABLE3_CPUS,
            "simulated_times_s": {
                strategy: {str(n): table.row_for(n).time for n in TABLE3_CPUS}
                for strategy, table in tables.items()
            },
            "paper_serialized_load_s": {
                str(n): t for n, t in PAPER_TABLE3_SERIALIZED.items()
            },
        },
    )

    lines = [format_comparison_table(tables.values()), "",
             "Paper reference (serialized load column):"]
    for n_cpus, paper_time in PAPER_TABLE3_SERIALIZED.items():
        row = tables["serialized_load"].row_for(n_cpus)
        lines.append(
            f"  {n_cpus:>4} CPUs  paper {paper_time:9.2f}s   measured {row.time:9.2f}s "
            f"(ratio {row.ratio:6.4f})"
        )
    write_result("table3_realistic_portfolio.txt", "\n".join(lines))

    sload = tables["serialized_load"]

    # total single-worker work matches the scale of the paper's run
    assert sload.row_for(2).time == pytest.approx(PAPER_TABLE3_SERIALIZED[2], rel=0.25)

    # the three strategies stay within a few percent of each other: the
    # compute cost dominates the communications for this portfolio
    for n_cpus in (2, 16, 128, 256):
        times = [tables[s].row_for(n_cpus).time for s in tables]
        assert max(times) / min(times) < 1.10

    # near-linear speedup deep into the sweep ("with 256 nodes, the speedup
    # ratio is still better than 0.8")
    for n_cpus in (16, 64, 128):
        assert sload.row_for(n_cpus).ratio > 0.9
    assert sload.row_for(256).ratio > 0.75

    # degradation beyond 256 CPUs, as in the last rows of the table
    assert sload.row_for(512).ratio < sload.row_for(256).ratio
    assert sload.row_for(512).ratio < 0.8

    # absolute times stay within a factor ~2 of the published column
    for n_cpus, paper_time in PAPER_TABLE3_SERIALIZED.items():
        assert 0.4 * paper_time < sload.row_for(n_cpus).time < 2.5 * paper_time


def test_table3_portfolio_composition_cost_split(benchmark):
    """Micro-benchmark: building the portfolio and its per-slice cost summary."""

    def build_and_summarise():
        portfolio = build_realistic_portfolio(profile="paper")
        return portfolio.summary(paper_cost_model())

    summary = benchmark.pedantic(build_and_summarise, rounds=1, iterations=1)
    assert summary["vanilla_cf"]["count"] == 1952
    assert summary["american_basket_ls"]["count"] == 525
    # American products dominate the total cost, vanilla options are negligible
    assert summary["american_basket_ls"]["estimated_cost"] > summary["basket_mc"]["estimated_cost"]
    assert summary["vanilla_cf"]["estimated_cost"] < 0.01 * summary["american_pde"]["estimated_cost"]
