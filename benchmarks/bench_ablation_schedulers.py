"""Ablation A1 -- load-balancing strategies.

The paper uses the simplified Robin-Hood dynamic scheduler and sketches two
refinements in its conclusion (message batching and hierarchical
sub-masters).  This ablation compares, on the realistic portfolio and the
simulated cluster:

* static block partitioning (no dynamic balancing),
* Robin Hood (the paper's scheduler),
* chunked Robin Hood (batched messages),
* the two-level sub-master organisation.

Results are written to ``benchmarks/results/ablation_schedulers.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.cluster.costmodel import paper_cost_model
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.core import (
    ChunkedRobinHoodScheduler,
    RobinHoodScheduler,
    StaticBlockScheduler,
    build_realistic_portfolio,
    get_strategy,
    simulate_hierarchical,
)

N_CPUS = 65  # 64 workers + the master


@pytest.fixture(scope="module")
def jobs():
    portfolio = build_realistic_portfolio(profile="paper", scale=0.25)
    return portfolio.build_jobs(cost_model=paper_cost_model())


def _run(scheduler, jobs, n_workers=N_CPUS - 1, strategy="serialized_load"):
    backend = SimulatedClusterBackend(
        ClusterSpec.homogeneous(n_workers), strategy=strategy
    )
    return scheduler.run(jobs, backend, get_strategy(strategy)).total_time


def test_scheduler_ablation(benchmark, jobs):
    """Compare the four scheduling organisations on the same workload."""

    def run_all():
        return {
            "static_block": _run(StaticBlockScheduler(), jobs),
            "robin_hood": _run(RobinHoodScheduler(), jobs),
            "chunked_robin_hood(8)": _run(ChunkedRobinHoodScheduler(chunk_size=8), jobs),
            "hierarchical(4 groups)": simulate_hierarchical(
                jobs, n_workers=N_CPUS - 1, n_groups=4
            )["total_time"],
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ideal = sum(job.compute_cost for job in jobs) / (N_CPUS - 1)
    lines = [f"Scheduler ablation -- realistic portfolio (scale 0.25), {N_CPUS - 1} workers",
             f"{'scheduler':28s} {'time (s)':>10}  {'vs ideal':>9}"]
    for name, time in times.items():
        lines.append(f"{name:28s} {time:10.2f}  {time / ideal:9.2f}x")
    write_result("ablation_schedulers.txt", "\n".join(lines))

    # dynamic balancing beats the static baseline on this heterogeneous mix
    assert times["robin_hood"] < times["static_block"]
    # batching trades balancing granularity for latency: on this expensive,
    # heterogeneous workload it *hurts* (it only pays off for cheap jobs --
    # see test_scheduler_ablation_on_cheap_jobs), which qualifies the
    # conclusion's suggestion
    assert times["chunked_robin_hood(8)"] > times["robin_hood"]
    # Robin Hood lands close to the ideal work/worker bound
    assert times["robin_hood"] < 1.5 * ideal


def test_scheduler_ablation_on_cheap_jobs(benchmark):
    """Same comparison on the master-bound toy workload, where the conclusion's
    refinements actually pay off."""
    from repro.core import build_toy_portfolio

    jobs = build_toy_portfolio(n_options=5_000).build_jobs(cost_model=paper_cost_model())

    def run_all():
        return {
            "robin_hood": _run(RobinHoodScheduler(), jobs, n_workers=32),
            "chunked_robin_hood(25)": _run(
                ChunkedRobinHoodScheduler(chunk_size=25), jobs, n_workers=32
            ),
            "hierarchical(4 groups)": simulate_hierarchical(
                jobs, n_workers=32, n_groups=4
            )["total_time"],
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Scheduler ablation -- 5,000 cheap options, 32 workers"]
    for name, time in times.items():
        lines.append(f"{name:28s} {time:10.3f}s")
    write_result("ablation_schedulers_cheap.txt", "\n".join(lines))

    # batching several problems per message reduces the per-message latency
    # the master pays, exactly the improvement suggested in the conclusion
    assert times["chunked_robin_hood(25)"] < times["robin_hood"]
    # sub-masters also relieve the master bottleneck
    assert times["hierarchical(4 groups)"] < times["robin_hood"]
