"""Benchmark B2 -- what a warm daemon buys over cold-start sessions.

``repro-serve`` exists to amortize two costs across requests: process
spin-up (interpreter + imports + backend) and recomputation (the shared
result cache).  This benchmark measures both against the real daemon --
a ``python -m repro.serve`` subprocess on an ephemeral loopback port,
exactly what the CLI starts:

* **cold start**: a fresh Python process imports the library, opens a
  session and prices the portfolio -- the per-request cost *without* a
  daemon (interpreter, imports and backend spin-up included);
* **warm daemon**: the same portfolio priced through ``POST /v1/run``
  against the already-running daemon (uncached positions, so workers
  actually price);
* **warm cache**: the identical request again -- answered from the
  shared cache without touching a worker (the response proves it: the
  campaign collapses onto the ``"cache"`` pseudo-scheduler).

Results land in ``benchmarks/results/BENCH_serving.json``.  ``--smoke``
doubles as the CI daemon check: start the daemon, hit ``/healthz``,
price one problem, run a portfolio, read the SSE progress stream, and
shut down cleanly over HTTP::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import write_bench_json  # noqa: E402

FULL_POSITIONS = 16
SMOKE_POSITIONS = 4
LISTEN_PREFIX = "repro-serve listening on "


def _position(strike: float) -> dict:
    return {
        "model": "BlackScholes1D",
        "model_params": {"spot": 100.0, "rate": 0.05, "volatility": 0.2},
        "option": "CallEuro",
        "option_params": {"strike": strike, "maturity": 1.0},
        "method": "CF_Call",
        "label": f"call_{strike:g}",
    }


def _positions(n: int) -> list[dict]:
    return [_position(80.0 + 40.0 * i / max(n - 1, 1)) for i in range(n)]


def _http(url: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    with urllib.request.urlopen(
        urllib.request.Request(url, data=data), timeout=120
    ) as response:
        return json.loads(response.read())


def _read_sse(url: str) -> str:
    with urllib.request.urlopen(url, timeout=120) as response:
        return response.read().decode()


class Daemon:
    """One ``python -m repro.serve`` subprocess on an ephemeral port."""

    def __init__(self, n_workers: int = 2):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_ROOT / "src")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0", "--backend", "local", "--workers", str(n_workers),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline().strip()
        if not line.startswith(LISTEN_PREFIX):
            self.proc.kill()
            raise RuntimeError(f"unexpected daemon greeting: {line!r}")
        self.url = line[len(LISTEN_PREFIX) :]

    def shutdown(self) -> None:
        if self.proc.poll() is not None:
            return
        try:
            _http(self.url + "/v1/shutdown", {})
            self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _cold_start_script(n_positions: int) -> str:
    """A self-contained pricing script: what a client pays without a daemon."""
    return (
        "import json, sys\n"
        "from repro.api import ValuationSession\n"
        "from repro.core.portfolio import Portfolio, Position\n"
        "from repro.serve.parse import problem_from_request\n"
        f"bodies = json.loads({json.dumps(json.dumps(_positions(n_positions)))})\n"
        "portfolio = Portfolio(name='cold')\n"
        "for body in bodies:\n"
        "    problem = problem_from_request(body)\n"
        "    portfolio.add(Position(problem=problem, label=problem.label))\n"
        "run = ValuationSession(backend='local', n_workers=2).run(portfolio)\n"
        "assert not run.report.errors\n"
        "print(json.dumps({str(k): v for k, v in run.prices().items()}))\n"
    )


def run_serving_benchmark(n_positions: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_ROOT / "src")

    # cold start: fresh interpreter + imports + session + campaign
    start = time.perf_counter()
    cold = subprocess.run(
        [sys.executable, "-c", _cold_start_script(n_positions)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    cold_start_s = time.perf_counter() - start
    if cold.returncode != 0:
        raise RuntimeError(f"cold-start run failed:\n{cold.stdout}\n{cold.stderr}")
    cold_prices = json.loads(cold.stdout.strip().splitlines()[-1])

    daemon = Daemon()
    try:
        health = _http(daemon.url + "/healthz")
        assert health["status"] == "ok", health

        run_body = {"positions": _positions(n_positions), "wait": True}

        start = time.perf_counter()
        warm = _http(daemon.url + "/v1/run", run_body)
        warm_daemon_s = time.perf_counter() - start
        assert warm["state"] == "done", warm
        assert warm["result"]["prices"] == cold_prices, "daemon diverged from cold run"

        start = time.perf_counter()
        cached = _http(daemon.url + "/v1/run", run_body)
        warm_cache_s = time.perf_counter() - start
        assert cached["result"]["scheduler"] == "cache", cached["result"]["scheduler"]
        assert cached["result"]["prices"] == cold_prices

        stats = _http(daemon.url + "/v1/stats")
    finally:
        daemon.shutdown()

    return {
        "n_positions": n_positions,
        "cold_start_s": round(cold_start_s, 4),
        "warm_daemon_s": round(warm_daemon_s, 4),
        "warm_cache_s": round(warm_cache_s, 4),
        "speedup_warm_daemon": round(cold_start_s / warm_daemon_s, 2),
        "speedup_warm_cache": round(cold_start_s / warm_cache_s, 2),
        "cache_hits": stats["cache"]["hits"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "cache_only_runs": stats["requests"]["cache_only_runs"],
    }


def run_daemon_smoke() -> None:
    """The CI lifecycle check: healthz, price, run, SSE, clean shutdown."""
    daemon = Daemon()
    try:
        health = _http(daemon.url + "/healthz")
        assert health["status"] == "ok", health

        quote = _http(daemon.url + "/v1/price", _position(100.0))
        assert round(quote["price"], 4) == 10.4506, quote

        record = _http(
            daemon.url + "/v1/run",
            {"positions": _positions(SMOKE_POSITIONS), "wait": True},
        )
        assert record["state"] == "done", record

        stream = _read_sse(daemon.url + "/v1/stream/" + record["job"])
        assert stream.count("event: progress") >= 1, stream
        assert "event: done" in stream, stream
    finally:
        daemon.shutdown()
    assert daemon.proc.returncode == 0, f"daemon exit code {daemon.proc.returncode}"


def test_serving_latency(benchmark):
    """Warm-daemon and warm-cache requests beat cold-start sessions."""
    payload = benchmark.pedantic(
        run_serving_benchmark, args=(FULL_POSITIONS,), rounds=1, iterations=1
    )
    write_bench_json("serving", payload)
    assert payload["warm_daemon_s"] < payload["cold_start_s"]
    assert payload["warm_cache_s"] < payload["cold_start_s"]
    assert payload["cache_only_runs"] >= 1


def main(argv: list[str] | None = None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    run_daemon_smoke()
    print("daemon smoke: healthz + price + run + SSE + clean shutdown OK")
    n_positions = SMOKE_POSITIONS if smoke else FULL_POSITIONS
    payload = run_serving_benchmark(n_positions)
    name = "serving_smoke" if smoke else "serving"
    path = write_bench_json(name, payload)
    print(f"wrote {path}")
    for key, value in payload.items():
        print(f"  {key} = {value}")
    if payload["warm_cache_s"] >= payload["cold_start_s"]:
        print("FAIL: warm-cache request slower than a cold-start session",
              file=sys.stderr)
        return 1
    if payload["cache_only_runs"] < 1:
        print("FAIL: identical rerun was not answered from the cache",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
