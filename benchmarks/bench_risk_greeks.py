"""Benchmark R1 -- CRN risk campaigns: batched Greek ladders and historical VaR.

The workload is the paper's daily-risk motivation on a 50-position
single-model Monte-Carlo call ladder:

* **Greek ladder**: the full finite-difference report (delta, gamma, vega,
  rho, theta) for every position.  The serial bump-and-revalue oracle pays
  ~8 simulations per position (400 Sobol draws in all); the batched CRN
  scenario grid (:mod:`repro.pricing.scenarios`) expands the same ladder
  into one ``price_problems(kernel="stacked")`` campaign whose spot/vol/rate
  bumps all share **one** draw cohort (the theta roll-down is the second),
  so the whole book costs two simulations;
* **historical VaR**: a 1000-scenario spot-return campaign over the same
  book -- 50,050 cells, serially 50,050 simulations, batched **one** shared
  draw cohort swept per-scenario.

Both paths must agree *bit for bit* -- base prices, assembled Greeks and
every scenario value -- because the CRN cohorts replay the very same seeded
draws the serial path generates (common random numbers by construction, not
by seed-reuse convention).  The batched ladder must beat serial by
``MIN_LADDER_SPEEDUP``; results land in
``benchmarks/results/BENCH_risk.json``.

Run standalone for the CI smoke check (tiny sizes, relaxed floors)::

    PYTHONPATH=src python benchmarks/bench_risk_greeks.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np  # noqa: E402

from benchmarks.conftest import write_bench_json  # noqa: E402
from repro.core.portfolio import Portfolio, Position  # noqa: E402
from repro.core.risk import historical_var, portfolio_greeks  # noqa: E402
from repro.pricing import PricingProblem  # noqa: E402

#: full-profile sizes (the acceptance configuration)
FULL_POSITIONS = 50
FULL_LADDER_PATHS = 100_000
FULL_VAR_SCENARIOS = 1_000
FULL_VAR_PATHS = 20_000
#: smoke-profile sizes for the CI check (seconds, not minutes)
SMOKE_POSITIONS = 8
SMOKE_LADDER_PATHS = 16_000
SMOKE_VAR_SCENARIOS = 64
SMOKE_VAR_PATHS = 8_000

MIN_LADDER_SPEEDUP = 5.0
MIN_VAR_SPEEDUP = 3.0

_GREEK_FIELDS = ("total_value", "total_delta", "total_gamma", "total_vega",
                 "total_rho", "total_theta")


def build_ladder_book(n_positions: int, n_paths: int) -> Portfolio:
    """A single-model Monte-Carlo call ladder: one Black-Scholes model, one
    Sobol stream, ``n_positions`` strikes -- the configuration where CRN
    batching collapses the whole Greek grid into two draw cohorts."""
    portfolio = Portfolio(name="risk_ladder")
    for index in range(n_positions):
        strike = 80.0 + 40.0 * index / max(n_positions - 1, 1)
        problem = PricingProblem(label=f"call_K{strike:.2f}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.045, volatility=0.22)
        problem.set_option("CallEuro", strike=strike, maturity=1.0)
        problem.set_method(
            "MC_European", n_paths=n_paths, n_steps=1, antithetic=False,
            control_variate=False, seed=7, rng_kind="sobol",
        )
        portfolio.add(
            Position(problem=problem, category="vanilla_mc", label=problem.label)
        )
    return portfolio


def run_risk_benchmark(
    n_positions: int, ladder_paths: int, var_scenarios: int, var_paths: int
) -> dict:
    """Time the serial oracle against the batched CRN engine on both campaigns."""
    ladder_book = build_ladder_book(n_positions, ladder_paths)

    start = time.perf_counter()
    serial = portfolio_greeks(ladder_book, engine="serial")
    ladder_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = portfolio_greeks(ladder_book, engine="batched")
    ladder_batched_s = time.perf_counter() - start

    base_prices_identical = all(
        b.price == s.price for b, s in zip(batched.positions, serial.positions)
    )
    greeks_identical = all(
        getattr(batched, field) == getattr(serial, field) for field in _GREEK_FIELDS
    )

    var_book = build_ladder_book(n_positions, var_paths)
    returns = np.random.default_rng(42).normal(0.0, 0.012, var_scenarios).tolist()

    start = time.perf_counter()
    var_serial = historical_var(var_book, returns, engine="serial")
    var_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    var_batched = historical_var(var_book, returns, engine="batched")
    var_batched_s = time.perf_counter() - start

    var_identical = (
        var_batched["base_value"] == var_serial["base_value"]
        and var_batched["var"] == var_serial["var"]
        and var_batched["expected_shortfall"] == var_serial["expected_shortfall"]
        and var_batched["scenario_values"] == var_serial["scenario_values"]
    )
    return {
        "n_positions": n_positions,
        "ladder_paths": ladder_paths,
        "rng_kind": "sobol",
        "ladder_serial_wall_s": round(ladder_serial_s, 4),
        "ladder_batched_wall_s": round(ladder_batched_s, 4),
        "speedup_ladder": round(ladder_serial_s / ladder_batched_s, 2),
        "base_prices_identical": base_prices_identical,
        "greeks_identical": greeks_identical,
        "portfolio_value": round(batched.total_value, 6),
        "portfolio_delta": round(batched.total_delta, 6),
        "portfolio_theta": round(batched.total_theta, 6),
        "var_scenarios": var_scenarios,
        "var_paths": var_paths,
        "var_cells": n_positions * (var_scenarios + 1),
        "var_serial_wall_s": round(var_serial_s, 4),
        "var_batched_wall_s": round(var_batched_s, 4),
        "speedup_var": round(var_serial_s / var_batched_s, 2),
        "var_identical": var_identical,
        "var_99": round(var_batched["var"], 6),
        "expected_shortfall_99": round(var_batched["expected_shortfall"], 6),
    }


def test_risk_greeks_speedup(benchmark):
    """Full profile: >=5x CRN ladder, >=3x VaR campaign, everything bit-equal."""
    payload = benchmark.pedantic(
        run_risk_benchmark,
        args=(FULL_POSITIONS, FULL_LADDER_PATHS, FULL_VAR_SCENARIOS, FULL_VAR_PATHS),
        rounds=1, iterations=1,
    )
    write_bench_json("risk", payload)

    assert payload["base_prices_identical"], "base prices must match bit-for-bit"
    assert payload["greeks_identical"], "assembled Greeks must match the oracle"
    assert payload["var_identical"], "every VaR scenario value must match"
    assert payload["speedup_ladder"] >= MIN_LADDER_SPEEDUP
    assert payload["speedup_var"] >= MIN_VAR_SPEEDUP


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (CI smoke: tiny sizes, relaxed speedup floors)."""
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    sizes = (
        (SMOKE_POSITIONS, SMOKE_LADDER_PATHS, SMOKE_VAR_SCENARIOS, SMOKE_VAR_PATHS)
        if smoke
        else (FULL_POSITIONS, FULL_LADDER_PATHS, FULL_VAR_SCENARIOS, FULL_VAR_PATHS)
    )
    payload = run_risk_benchmark(*sizes)
    name = "risk_smoke" if smoke else "risk"
    path = write_bench_json(name, payload)
    print(f"wrote {path}")
    for key, value in payload.items():
        print(f"  {key} = {value}")
    for flag, message in (
        ("base_prices_identical", "base prices differ between engines"),
        ("greeks_identical", "assembled Greeks differ from the serial oracle"),
        ("var_identical", "VaR scenario values differ between engines"),
    ):
        if not payload[flag]:
            print(f"FAIL: {message}", file=sys.stderr)
            return 1
    ladder_floor = 1.2 if smoke else MIN_LADDER_SPEEDUP
    if payload["speedup_ladder"] < ladder_floor:
        print(f"FAIL: ladder speedup {payload['speedup_ladder']} < {ladder_floor}",
              file=sys.stderr)
        return 1
    var_floor = 1.0 if smoke else MIN_VAR_SPEEDUP
    if payload["speedup_var"] < var_floor:
        print(f"FAIL: VaR speedup {payload['speedup_var']} < {var_floor}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
