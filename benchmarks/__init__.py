"""Benchmark harness regenerating the paper's tables (see DESIGN.md)."""
