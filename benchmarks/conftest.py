"""Shared helpers of the benchmark harness.

Every benchmark regenerates one of the paper's tables (or an ablation) on the
simulated cluster, times the regeneration with ``pytest-benchmark`` and writes
the regenerated table to ``benchmarks/results/`` so the rows can be compared
with the published numbers (see EXPERIMENTS.md).

Benchmarks additionally emit machine-readable ``BENCH_<name>.json`` files
(:func:`write_bench_json`) with wall times, speedups and cache hit rates, so
the performance trajectory of the repository can be tracked from PR to PR by
diffing the committed JSON.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, content: str) -> Path:
    """Write a regenerated table to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path


def write_bench_json(name: str, payload: dict[str, Any]) -> Path:
    """Write a machine-readable ``BENCH_<name>.json`` to the results directory.

    ``payload`` must be JSON-serializable; a small environment stanza
    (python/platform) is added so numbers from different machines are
    distinguishable when the files are diffed across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "benchmark": name,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
