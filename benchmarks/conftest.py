"""Shared helpers of the benchmark harness.

Every benchmark regenerates one of the paper's tables (or an ablation) on the
simulated cluster, times the regeneration with ``pytest-benchmark`` and writes
the regenerated table to ``benchmarks/results/`` so the rows can be compared
with the published numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, content: str) -> Path:
    """Write a regenerated table to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    return path
