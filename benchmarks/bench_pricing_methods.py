"""Ablation A3 -- accuracy and cost of the pricing methods themselves.

The paper characterises the per-product computation costs ("the pricing of
plain vanilla options is almost instantaneous; the Monte-Carlo and PDE
approaches ... roughly demand the same amount of computations; the evaluation
of American products is much longer than any other").  This benchmark times
the actual Python implementations of each method on the canonical ATM call /
American put and records their accuracy against the closed-form / binomial
references, writing the result to ``benchmarks/results/pricing_methods.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.pricing import (
    AmericanPut,
    BinomialTree,
    BlackScholesModel,
    ClosedFormCall,
    EuropeanCall,
    FourierCOS,
    LongstaffSchwartz,
    MonteCarloEuropean,
    PDEAmerican,
    PDEEuropean,
    TrinomialTree,
)

MODEL = BlackScholesModel(spot=100.0, rate=0.05, volatility=0.2)
CALL = EuropeanCall(strike=100.0, maturity=1.0)
AM_PUT = AmericanPut(strike=100.0, maturity=1.0)

EUROPEAN_METHODS = {
    "CF_Call": ClosedFormCall(),
    "FFT_COS": FourierCOS(n_terms=256),
    "TR_CoxRossRubinstein": BinomialTree(n_steps=500),
    "TR_Trinomial": TrinomialTree(n_steps=300),
    "FD_European": PDEEuropean(n_space=400, n_time=200),
    "MC_European": MonteCarloEuropean(n_paths=100_000, seed=0),
}

AMERICAN_METHODS = {
    "FD_American": PDEAmerican(n_space=400, n_time=200),
    "TR_CoxRossRubinstein": BinomialTree(n_steps=1000),
    "MC_AM_LongstaffSchwartz": LongstaffSchwartz(n_paths=50_000, n_steps=50, seed=0),
}

_accuracy_records: list[str] = []


@pytest.mark.parametrize("name,method", list(EUROPEAN_METHODS.items()))
def test_european_call_methods(benchmark, name, method):
    """Time every European pricer on the ATM call and check its accuracy."""
    reference = ClosedFormCall().price(MODEL, CALL).price
    result = benchmark(lambda: method.price(MODEL, CALL))
    error = abs(result.price - reference)
    _accuracy_records.append(
        f"european  {name:24s} price {result.price:9.4f}  |err| {error:8.5f}"
    )
    tolerance = 0.1 if name == "MC_European" else 0.05
    assert error < tolerance


@pytest.mark.parametrize("name,method", list(AMERICAN_METHODS.items()))
def test_american_put_methods(benchmark, name, method):
    """Time every American pricer on the ATM put and check its accuracy."""
    reference = 6.0896  # binomial reference value for this parameter set
    result = benchmark(lambda: method.price(MODEL, AM_PUT))
    error = abs(result.price - reference)
    _accuracy_records.append(
        f"american  {name:24s} price {result.price:9.4f}  |err| {error:8.5f}"
    )
    assert error < 0.1


def test_write_accuracy_report(benchmark):
    """Collect the per-method accuracy lines into the results file."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_result(
        "pricing_methods.txt",
        "Pricing-method accuracy (references: closed form / binomial)\n"
        + "\n".join(sorted(_accuracy_records)),
    )
    assert _accuracy_records
