"""Ablation A2 -- message batching and compressed serialization.

Two optimisations the paper mentions without measuring:

* "it is always advisable to send a single large message rather [than]
  several smaller messages" -- the chunk-size sweep quantifies the gain of
  batching on the master-bound toy workload;
* "the possibility to compress the serialized buffer ... compression, which
  takes most of the CPU time, can be done off line when preparing a set of
  problems" -- the compression benchmark measures the size reduction of real
  problem files and its simulated effect on transmission times.

Results are written to ``benchmarks/results/ablation_batching.txt`` and
``benchmarks/results/ablation_compression.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.cluster.costmodel import paper_cost_model
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend
from repro.core import ChunkedRobinHoodScheduler, RobinHoodScheduler, build_toy_portfolio, get_strategy
from repro.serial import serialize

N_WORKERS = 32
CHUNK_SIZES = [1, 2, 5, 10, 25, 50, 100]


@pytest.fixture(scope="module")
def toy_jobs():
    return build_toy_portfolio(n_options=5_000).build_jobs(cost_model=paper_cost_model())


def _run_chunked(jobs, chunk_size, strategy="serialized_load"):
    backend = SimulatedClusterBackend(ClusterSpec.homogeneous(N_WORKERS), strategy=strategy)
    if chunk_size == 1:
        scheduler = RobinHoodScheduler()
    else:
        scheduler = ChunkedRobinHoodScheduler(chunk_size=chunk_size)
    return scheduler.run(jobs, backend, get_strategy(strategy)).total_time


def test_batching_chunk_size_sweep(benchmark, toy_jobs):
    """Makespan of the toy portfolio as a function of the batch size."""

    def sweep():
        return {size: _run_chunked(toy_jobs, size) for size in CHUNK_SIZES}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"Message batching -- 5,000 cheap options, {N_WORKERS} workers",
             f"{'chunk size':>10}  {'time (s)':>10}  {'speedup vs unbatched':>20}"]
    base = times[1]
    for size in CHUNK_SIZES:
        lines.append(f"{size:>10}  {times[size]:>10.3f}  {base / times[size]:>20.2f}x")
    write_result("ablation_batching.txt", "\n".join(lines))

    # batching monotonically helps until the chunks are "large enough"
    assert times[10] < times[1]
    assert times[100] < times[1]
    # diminishing returns: going from 25 to 100 changes little
    assert times[100] == pytest.approx(times[25], rel=0.25)


def test_compressed_problem_files(benchmark):
    """Size and simulated-transmission effect of compressed serials."""
    portfolio = build_toy_portfolio(n_options=500)

    def measure():
        raw_sizes = []
        compressed_sizes = []
        for position in portfolio:
            serial = serialize(position.problem)
            raw_sizes.append(serial.nbytes)
            compressed_sizes.append(serial.compress().nbytes)
        return sum(raw_sizes), sum(compressed_sizes)

    raw_total, compressed_total = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = compressed_total / raw_total

    # simulated effect on the serialized-load strategy: smaller messages
    jobs = portfolio.build_jobs(cost_model=paper_cost_model())
    compressed_jobs = [
        type(job)(job_id=job.job_id, path=job.path,
                  file_size=max(64, int(job.file_size * ratio)),
                  compute_cost=job.compute_cost, category=job.category)
        for job in jobs
    ]
    plain_time = _run_chunked(jobs, 1)
    compressed_time = _run_chunked(compressed_jobs, 1)

    lines = [
        "Compressed serialization -- 500 toy problems",
        f"raw payload bytes        : {raw_total}",
        f"compressed payload bytes : {compressed_total}  ({100 * ratio:.1f}% of raw)",
        f"simulated makespan raw        : {plain_time:.3f}s",
        f"simulated makespan compressed : {compressed_time:.3f}s",
    ]
    write_result("ablation_compression.txt", "\n".join(lines))

    # compression shrinks the XDR problem files substantially
    assert ratio < 0.8
    # and cannot hurt the (bandwidth part of the) simulated transmission
    assert compressed_time <= plain_time * 1.01
