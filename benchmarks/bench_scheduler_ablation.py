"""Benchmark S1 -- the scheduler ablation on one skewed portfolio.

Every registered scheduler is a :class:`~repro.core.scheduler.DispatchPolicy`
over the same streaming master loop, so this ablation is a pure policy
comparison: static block partitioning, Robin Hood (the paper's loop),
chunked Robin Hood (one message per chunk) and work stealing (static blocks
plus stealing from the most-loaded tail) value the *same* skewed workload on
the same simulated cluster, and only the virtual makespans differ.

The workload is deliberately hostile to static partitioning: a long run of
cheap vanilla-style jobs with one contiguous band of expensive American-style
jobs, so whichever worker draws the band becomes the static critical path.
Dynamic policies (robin hood, work stealing) must beat the static baseline;
work stealing must land in the same league as robin hood.

A second axis stresses the same policies under **churn**: a
:class:`~repro.cluster.chaos.ChurnSchedule` kills a slice of the workers
mid-run and joins a replacement later, all in deterministic virtual time, so
the benchmark answers "how gracefully does each policy degrade when the
cluster shrinks under it?" without a single real socket.

Results land in ``benchmarks/results/BENCH_scheduler_ablation.json`` and
``benchmarks/results/BENCH_churn.json``.

Run standalone for the CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_scheduler_ablation.py --smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_ablation.py --churn --smoke
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT), str(_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import write_bench_json  # noqa: E402
from repro.cluster.backends.base import Job  # noqa: E402
from repro.cluster.chaos import ChurnSchedule  # noqa: E402
from repro.cluster.simcluster import ClusterSpec, SimulatedClusterBackend  # noqa: E402
from repro.core.scheduler import (  # noqa: E402
    ChunkedRobinHoodScheduler,
    RobinHoodScheduler,
    StaticBlockScheduler,
    WorkStealingScheduler,
)
from repro.core.strategies import get_strategy  # noqa: E402

#: full-profile workload (the acceptance configuration)
FULL_CHEAP = 1_600
FULL_EXPENSIVE = 120
FULL_WORKERS = 64
#: smoke-profile sizes for the CI check
SMOKE_CHEAP = 200
SMOKE_EXPENSIVE = 16
SMOKE_WORKERS = 8

CHEAP_COST = 0.02
EXPENSIVE_COST = 2.5
CHUNK_SIZE = 8
STRATEGY_NAME = "serialized_load"


def build_skewed_jobs(n_cheap: int, n_expensive: int) -> list[Job]:
    """Cheap head + one contiguous expensive band + cheap tail.

    The band sits at one third of the portfolio so a static contiguous
    partition concentrates it on a few workers -- the pathology dynamic
    load balancing exists to fix.
    """
    costs = [CHEAP_COST] * n_cheap
    band_start = n_cheap // 3
    costs[band_start:band_start] = [EXPENSIVE_COST] * n_expensive
    return [
        Job(job_id=index, path=f"/virtual/skew/{index}.pb", file_size=700,
            compute_cost=cost, category="skewed")
        for index, cost in enumerate(costs)
    ]


def run_scheduler_ablation(n_cheap: int, n_expensive: int, n_workers: int) -> dict:
    jobs = build_skewed_jobs(n_cheap, n_expensive)
    strategy = get_strategy(STRATEGY_NAME)
    schedulers = {
        "static_block": StaticBlockScheduler(),
        "robin_hood": RobinHoodScheduler(),
        f"chunked_robin_hood({CHUNK_SIZE})": ChunkedRobinHoodScheduler(
            chunk_size=CHUNK_SIZE
        ),
        "work_stealing": WorkStealingScheduler(),
    }
    times: dict[str, float] = {}
    for name, scheduler in schedulers.items():
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(n_workers), strategy=STRATEGY_NAME
        )
        # every scheduler is stream().finish(): this drives the same
        # streaming path the futures API uses
        times[name] = round(
            scheduler.stream(jobs, backend, strategy).finish().total_time, 6
        )

    ideal = sum(job.compute_cost for job in jobs) / n_workers
    return {
        "n_jobs": len(jobs),
        "n_cheap": n_cheap,
        "n_expensive": n_expensive,
        "n_workers": n_workers,
        "chunk_size": CHUNK_SIZE,
        "strategy": STRATEGY_NAME,
        "ideal_makespan_s": round(ideal, 6),
        "virtual_makespan_s": times,
        "speedup_vs_static": {
            name: round(times["static_block"] / time, 3)
            for name, time in times.items()
        },
    }


def _churn_schedule(n_workers: int, ideal: float) -> ChurnSchedule:
    """Kill a quarter of the pool mid-run, join one replacement later.

    Times are fractions of the ideal makespan so the same *shape* of churn
    scales from the smoke profile to the full profile.
    """
    schedule = ChurnSchedule()
    for index in range(max(1, n_workers // 4)):
        schedule.kill(index, at=(0.25 + 0.1 * index) * ideal)
    schedule.join(at=0.6 * ideal)
    return schedule


def run_churn_ablation(n_cheap: int, n_expensive: int, n_workers: int) -> dict:
    """The churn axis: the same skewed workload, with workers dying under it."""
    jobs = build_skewed_jobs(n_cheap, n_expensive)
    strategy = get_strategy(STRATEGY_NAME)
    ideal = sum(job.compute_cost for job in jobs) / n_workers
    schedulers = {
        "robin_hood": RobinHoodScheduler,
        "work_stealing": WorkStealingScheduler,
    }
    baseline: dict[str, float] = {}
    churned: dict[str, float] = {}
    counters: dict[str, dict] = {}
    for name, scheduler_cls in schedulers.items():
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(n_workers), strategy=STRATEGY_NAME
        )
        out = scheduler_cls().stream(jobs, backend, strategy).finish()
        assert len(out.completed) == len(jobs)
        baseline[name] = round(out.stats.total_time, 6)

        schedule = _churn_schedule(n_workers, ideal)
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(n_workers),
            strategy=STRATEGY_NAME,
            churn=schedule,
        )
        out = scheduler_cls().stream(jobs, backend, strategy).finish()
        assert len(out.completed) == len(jobs)
        churned[name] = round(out.stats.total_time, 6)
        counters[name] = {
            key: value
            for key, value in out.stats.extra.items()
            if key.startswith("churn_")
        }

    schedule = _churn_schedule(n_workers, ideal)
    return {
        "n_jobs": len(jobs),
        "n_workers": n_workers,
        "strategy": STRATEGY_NAME,
        "ideal_makespan_s": round(ideal, 6),
        "churn_schedule": {
            "kills": [
                {"worker_id": wid, "at_s": round(at, 6)}
                for wid, at in sorted(schedule.kills.items())
            ],
            "joins": [
                {"at_s": round(at, 6), "speed": speed}
                for at, speed in schedule.joins
            ],
        },
        "virtual_makespan_s": {
            name: {"baseline": baseline[name], "churn": churned[name]}
            for name in schedulers
        },
        "degradation": {
            name: round(churned[name] / baseline[name], 3) for name in schedulers
        },
        "churn_counters": counters,
    }


def _check_churn(payload: dict) -> list[str]:
    """The churn axis' acceptance conditions; returns failure messages."""
    failures = []
    for name, times in payload["virtual_makespan_s"].items():
        if not times["churn"] >= times["baseline"]:
            failures.append(f"{name}: churn cannot be faster than a healthy pool")
    for name, counters in payload["churn_counters"].items():
        disrupted = counters.get("churn_redirects", 0) + counters.get(
            "churn_restarts", 0
        )
        if payload["churn_schedule"]["kills"] and disrupted == 0:
            failures.append(f"{name}: churn killed workers but disrupted no job")
    return failures


def _check(payload: dict) -> list[str]:
    """The ablation's acceptance conditions; returns failure messages."""
    times = payload["virtual_makespan_s"]
    failures = []
    if not times["robin_hood"] < times["static_block"]:
        failures.append("robin hood must beat the static baseline")
    if not times["work_stealing"] < times["static_block"]:
        failures.append("work stealing must beat the static baseline")
    if not times["work_stealing"] <= 1.25 * times["robin_hood"]:
        failures.append("work stealing must land in robin hood's league")
    return failures


def test_scheduler_ablation_emits_bench_json(benchmark):
    """Full-profile ablation: dynamic policies beat static, JSON committed."""
    payload = benchmark.pedantic(
        run_scheduler_ablation,
        args=(FULL_CHEAP, FULL_EXPENSIVE, FULL_WORKERS),
        rounds=1,
        iterations=1,
    )
    write_bench_json("scheduler_ablation", payload)
    assert not _check(payload)


def test_churn_ablation_emits_bench_json(benchmark):
    """Full-profile churn axis: graceful degradation under worker deaths."""
    payload = benchmark.pedantic(
        run_churn_ablation,
        args=(FULL_CHEAP, FULL_EXPENSIVE, FULL_WORKERS),
        rounds=1,
        iterations=1,
    )
    write_bench_json("churn", payload)
    assert not _check_churn(payload)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (CI smoke: tiny sizes, same invariants)."""
    args = argv if argv is not None else sys.argv[1:]
    smoke = "--smoke" in args
    sizes = (
        (SMOKE_CHEAP, SMOKE_EXPENSIVE, SMOKE_WORKERS)
        if smoke
        else (FULL_CHEAP, FULL_EXPENSIVE, FULL_WORKERS)
    )
    if "--churn" in args:
        payload = run_churn_ablation(*sizes)
        path = write_bench_json("churn_smoke" if smoke else "churn", payload)
        print(f"wrote {path}")
        for scheduler, times in payload["virtual_makespan_s"].items():
            print(f"  {scheduler:24s} healthy {times['baseline']:10.3f}s  "
                  f"churn {times['churn']:10.3f}s  "
                  f"({payload['degradation'][scheduler]:.2f}x degradation)")
        failures = _check_churn(payload)
    else:
        payload = run_scheduler_ablation(*sizes)
        name = "scheduler_ablation_smoke" if smoke else "scheduler_ablation"
        path = write_bench_json(name, payload)
        print(f"wrote {path}")
        for scheduler, time in payload["virtual_makespan_s"].items():
            print(f"  {scheduler:24s} {time:10.3f}s  "
                  f"({payload['speedup_vs_static'][scheduler]:.2f}x vs static)")
        failures = _check(payload)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
