"""Benchmark T2 -- Table II of the paper.

"A toy portfolio for discriminating communication strategies": 10,000 vanilla
options priced by closed-form formulas, where the computation is essentially
free and the three transmission strategies (full load / NFS / serialized
load) are compared for 2 to 50 CPUs.

The benchmark regenerates the three columns on the simulated cluster, checks
the qualitative claims of Section 4.2 (serialized load always beats full
load; the NFS column is biased by the server cache but wins at larger CPU
counts; the times flatten once the master saturates) and writes the
comparison table to ``benchmarks/results/table2_toy_portfolio.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_bench_json, write_result
from repro.cluster.costmodel import paper_cost_model
from repro.core import build_toy_portfolio, compare_strategies, format_comparison_table

#: the CPU counts of Table II
TABLE2_CPUS = [2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50]

#: published Table II times (seconds) for the three strategies
PAPER_TABLE2 = {
    "full_load": {2: 8.85665, 8: 3.86341, 16: 4.05038, 32: 4.35934, 50: 4.19136},
    "nfs": {2: 16.3965, 8: 2.52961, 16: 1.40579, 32: 0.848871, 50: 0.738887},
    "serialized_load": {2: 7.17891, 8: 1.81472, 16: 1.9367, 32: 1.83072, 50: 1.70474},
}


@pytest.fixture(scope="module")
def toy_jobs():
    portfolio = build_toy_portfolio(n_options=10_000)
    return portfolio.build_jobs(cost_model=paper_cost_model())


def test_table2_strategy_comparison(benchmark, toy_jobs):
    """Regenerate the full three-strategy Table II."""

    import time as time_module

    def regenerate():
        return compare_strategies(toy_jobs, TABLE2_CPUS)

    start = time_module.perf_counter()
    tables = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    wall_s = time_module.perf_counter() - start
    write_bench_json(
        "table2_toy_portfolio",
        {
            "wall_s": round(wall_s, 4),
            "n_jobs": len(toy_jobs),
            "cpu_counts": TABLE2_CPUS,
            "simulated_times_s": {
                strategy: {str(n): table.row_for(n).time for n in TABLE2_CPUS}
                for strategy, table in tables.items()
            },
        },
    )

    lines = [format_comparison_table(tables.values()), "", "Paper reference times (s):"]
    for strategy, rows in PAPER_TABLE2.items():
        for n_cpus, paper_time in rows.items():
            measured = tables[strategy].row_for(n_cpus).time
            lines.append(
                f"  {strategy:16s} {n_cpus:>3} CPUs  paper {paper_time:8.3f}s   "
                f"measured {measured:8.3f}s"
            )
    write_result("table2_toy_portfolio.txt", "\n".join(lines))

    full, nfs, sload = tables["full_load"], tables["nfs"], tables["serialized_load"]

    # serialized load beats full load on every row ("the only objective
    # comparison ... the latter is always the faster")
    for n_cpus in TABLE2_CPUS:
        assert sload.row_for(n_cpus).time < full.row_for(n_cpus).time

    # absolute times are the same order as the paper at both ends of the sweep
    for strategy, table in tables.items():
        assert 0.3 * PAPER_TABLE2[strategy][2] < table.row_for(2).time < 3.0 * PAPER_TABLE2[strategy][2]
        assert 0.3 * PAPER_TABLE2[strategy][50] < table.row_for(50).time < 3.0 * PAPER_TABLE2[strategy][50]

    # full load and serialized load flatten at their master-bound floors
    assert full.row_for(50).time == pytest.approx(full.row_for(32).time, rel=0.15)
    assert sload.row_for(50).time == pytest.approx(sload.row_for(32).time, rel=0.15)
    # and the full-load floor is markedly higher
    assert full.row_for(50).time > 1.5 * sload.row_for(50).time

    # NFS: worst on the cold 2-CPU run, best at 50 CPUs (cache + offloaded reads)
    assert nfs.row_for(2).time > max(full.row_for(2).time, sload.row_for(2).time)
    assert nfs.row_for(50).time < min(full.row_for(50).time, sload.row_for(50).time)

    # a crossover between NFS and serialized load exists inside the sweep
    diffs = [nfs.row_for(n).time - sload.row_for(n).time for n in TABLE2_CPUS]
    assert diffs[0] > 0 and diffs[-1] < 0


def test_table2_single_strategy_sweep(benchmark, toy_jobs):
    """Micro-benchmark: the serialized-load column alone."""
    from repro.core import sweep_cpu_counts

    def run():
        return sweep_cpu_counts(toy_jobs, [2, 8, 32, 50], strategy="serialized_load")

    table = benchmark(run)
    assert table.row_for(2).time > table.row_for(50).time
