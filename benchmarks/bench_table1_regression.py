"""Benchmark T1 -- Table I of the paper.

"Speedup table for the non-regression tests of Premia": the suite of one
instance of every pricing problem, distributed with the Robin-Hood scheduler
and the serialized-load (``sload``) strategy, for 2 to 256 CPUs.

The benchmark regenerates the full table on the simulated cluster (virtual
time), times the regeneration, checks the qualitative shape of the published
table and writes the rows to ``benchmarks/results/table1_regression.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_bench_json, write_result
from repro.cluster.costmodel import paper_cost_model
from repro.core import build_regression_portfolio, sweep_cpu_counts

#: the CPU counts of Table I
TABLE1_CPUS = [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256]

#: the published Table I (CPUs -> (time in s, speedup ratio)) for reference
PAPER_TABLE1 = {
    2: (838.004, 1.0),
    4: (285.356, 0.9789),
    6: (172.146, 0.973597),
    8: (124.78, 0.959407),
    10: (97.1792, 0.958142),
    16: (67.9677, 0.821963),
    32: (45.6611, 0.592023),
    64: (34.2828, 0.387998),
    96: (31.4682, 0.280317),
    128: (30.5574, 0.215937),
    160: (16.1006, 0.327347),
    192: (30.7013, 0.142908),
    224: (30.5024, 0.123199),
    256: (31.3172, 0.104935),
}


@pytest.fixture(scope="module")
def regression_jobs():
    portfolio = build_regression_portfolio(profile="paper")
    return portfolio.build_jobs(cost_model=paper_cost_model())


def test_table1_regression_speedup(benchmark, regression_jobs):
    """Regenerate Table I and compare its shape with the published numbers."""

    import time as time_module

    def regenerate():
        return sweep_cpu_counts(regression_jobs, TABLE1_CPUS, strategy="serialized_load",
                                label="serialized load (Table I)")

    start = time_module.perf_counter()
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    wall_s = time_module.perf_counter() - start
    write_bench_json(
        "table1_regression",
        {
            "wall_s": round(wall_s, 4),
            "n_jobs": len(regression_jobs),
            "cpu_counts": TABLE1_CPUS,
            "simulated_times_s": {str(n): table.row_for(n).time for n in TABLE1_CPUS},
            "speedup_ratios": {str(n): table.row_for(n).ratio for n in TABLE1_CPUS},
        },
    )

    lines = [table.format(), "", "Paper reference (Table I):"]
    for n_cpus, (time, ratio) in PAPER_TABLE1.items():
        row = table.row_for(n_cpus)
        lines.append(
            f"  {n_cpus:>4} CPUs  paper {time:>9.2f}s ({ratio:6.4f})   "
            f"measured {row.time:>9.2f}s ({row.ratio:6.4f})"
        )
    write_result("table1_regression.txt", "\n".join(lines))

    # -- shape assertions against the published table -------------------------
    # total single-worker work is the same order of magnitude as the paper
    assert 0.3 * PAPER_TABLE1[2][0] < table.row_for(2).time < 3.0 * PAPER_TABLE1[2][0]
    # near-linear speedup up to ~10 CPUs
    for n_cpus in (4, 6, 8, 10):
        assert table.row_for(n_cpus).ratio > 0.8
    # efficiency collapses at high CPU counts because the workload is small
    assert table.row_for(64).ratio < 0.6
    assert table.row_for(256).ratio < 0.25
    # the makespan plateaus: 4x more CPUs past 64 buys almost nothing
    assert table.row_for(256).time > 0.6 * table.row_for(64).time


def test_table1_single_configuration_cost(benchmark, regression_jobs):
    """Micro-benchmark: one 256-CPU simulated run of the regression suite."""

    def run_once():
        return sweep_cpu_counts(regression_jobs, [256], strategy="serialized_load")

    table = benchmark(run_once)
    assert table.row_for(256).time > 0
