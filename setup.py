"""Legacy setup shim.

Kept so that ``pip install -e . --no-build-isolation --no-use-pep517`` works
on fully offline machines that have setuptools but no ``wheel`` package (the
PEP 660 editable path needs ``wheel`` with older setuptools releases).  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
