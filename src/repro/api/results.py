"""Normalized result hierarchy returned by :class:`~repro.api.session.ValuationSession`.

Every session call returns a :class:`ValuationResult` subclass with the same
small contract -- ``ok``, ``format()`` and ``to_dict()`` -- wrapping the
lower-level objects that already existed in the stack
(:class:`~repro.core.runner.RunReport`,
:class:`~repro.core.speedup.SpeedupTable`), so downstream code can stay
uniform while the underlying reports remain reachable for anything the
wrappers do not expose.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.speedup import SpeedupTable, format_comparison_table
from repro.errors import ValuationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.portfolio import Portfolio
    from repro.core.runner import RunReport
    from repro.pricing.methods.base import PricingResult

__all__ = [
    "ValuationResult",
    "PriceResult",
    "RunResult",
    "SweepResult",
    "ComparisonResult",
]


class ValuationResult(abc.ABC):
    """Common contract of everything a session hands back."""

    @property
    @abc.abstractmethod
    def ok(self) -> bool:
        """Whether the computation completed without errors."""

    @abc.abstractmethod
    def format(self) -> str:
        """Human-readable rendering (tables use the paper's layout)."""

    @abc.abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary view, for logging / JSON export."""

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class PriceResult(ValuationResult):
    """One priced option (wraps a :class:`~repro.pricing.methods.base.PricingResult`)."""

    price: float
    std_error: float | None = None
    delta: float | None = None
    label: str | None = None
    method: str | None = None
    #: submission-order job id, set on results streamed out of a portfolio run
    job_id: int | None = None
    raw: "PricingResult | None" = field(default=None, compare=False, repr=False)

    @classmethod
    def from_pricing(
        cls, result: "PricingResult", label: str | None = None, method: str | None = None
    ) -> "PriceResult":
        return cls(
            price=result.price,
            std_error=result.std_error,
            delta=result.delta,
            label=label,
            method=method,
            raw=result,
        )

    @classmethod
    def from_dict(
        cls,
        result: dict[str, Any],
        label: str | None = None,
        method: str | None = None,
        job_id: int | None = None,
    ) -> "PriceResult":
        """Build from a worker's plain result dictionary (streaming path)."""
        return cls(
            price=result["price"],
            std_error=result.get("std_error"),
            delta=result.get("delta"),
            label=label,
            method=method,
            job_id=job_id,
        )

    @property
    def ok(self) -> bool:
        return True

    @property
    def confidence_interval(self) -> tuple[float, float] | None:
        """95% confidence interval, for methods that report a standard error."""
        if self.std_error is None:
            return None
        half = 1.96 * self.std_error
        return (self.price - half, self.price + half)

    def format(self) -> str:
        parts = [f"price = {self.price:.6f}"]
        if self.std_error is not None:
            parts.append(f"+/- {self.std_error:.6f}")
        if self.delta is not None:
            parts.append(f"(delta {self.delta:.6f})")
        if self.label:
            parts.append(f"[{self.label}]")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "price": self.price,
            "std_error": self.std_error,
            "delta": self.delta,
            "label": self.label,
            "method": self.method,
            "job_id": self.job_id,
        }


@dataclass
class RunResult(ValuationResult):
    """One portfolio (or job-list) valuation on one cluster configuration."""

    report: "RunReport"
    portfolio: "Portfolio | None" = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return not self.report.errors

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def n_jobs(self) -> int:
        return self.report.n_jobs

    @property
    def n_workers(self) -> int:
        return self.report.n_workers

    @property
    def n_errors(self) -> int:
        return len(self.report.errors)

    @property
    def errors(self) -> dict[int, str]:
        return dict(self.report.errors)

    @property
    def strategy(self) -> str:
        return self.report.strategy

    def prices(self) -> dict[int, float]:
        """Job id -> price, for runs that actually executed the problems."""
        return self.report.prices()

    def value(self, portfolio: "Portfolio | None" = None) -> float:
        """Mark-to-market value of the valued portfolio.

        Uses the portfolio the session ran (when it ran one) unless an
        explicit ``portfolio`` is given.
        """
        from repro.core.risk import portfolio_value

        target = portfolio if portfolio is not None else self.portfolio
        if target is None:
            raise ValuationError(
                "this result was produced from a raw job list; "
                "pass the portfolio explicitly to value()"
            )
        return portfolio_value(target, self.prices())

    def format(self) -> str:
        report = self.report
        line = (
            f"{report.n_jobs} jobs on {report.n_workers} workers "
            f"[{report.strategy}/{report.scheduler}] in {report.total_time:.3f}s"
        )
        if report.errors:
            line += f" ({len(report.errors)} errors)"
        return line

    def to_dict(self) -> dict[str, Any]:
        report = self.report
        return {
            "n_jobs": report.n_jobs,
            "n_workers": report.n_workers,
            "strategy": report.strategy,
            "scheduler": report.scheduler,
            "total_time": report.total_time,
            "master_busy": report.master_busy,
            "bytes_sent": report.bytes_sent,
            "n_errors": len(report.errors),
            "category_times": dict(report.category_times),
        }


@dataclass
class SweepResult(ValuationResult):
    """A CPU-count sweep for one strategy (wraps a :class:`SpeedupTable`)."""

    table: SpeedupTable

    @property
    def ok(self) -> bool:
        return bool(self.table.rows)

    @property
    def label(self) -> str:
        return self.table.label

    def cpu_counts(self) -> list[int]:
        return self.table.cpu_counts()

    def times(self) -> dict[int, float]:
        return self.table.times()

    def ratios(self) -> dict[int, float]:
        return self.table.ratios()

    def best_cpu_count(self) -> int:
        """CPU count with the smallest simulated wall-clock time."""
        times = self.table.times()
        return min(times, key=times.__getitem__)

    def format(self) -> str:
        return self.table.format()

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.table.label,
            "times": self.table.times(),
            "ratios": self.table.ratios(),
        }


@dataclass
class ComparisonResult(ValuationResult):
    """Sweeps for several transmission strategies (a full Table II/III)."""

    tables: dict[str, SpeedupTable]

    @property
    def ok(self) -> bool:
        return bool(self.tables) and all(t.rows for t in self.tables.values())

    @property
    def strategies(self) -> list[str]:
        return list(self.tables)

    def __getitem__(self, strategy: str) -> SweepResult:
        if strategy not in self.tables:
            raise ValuationError(
                f"no sweep for strategy {strategy!r}; have {self.strategies}"
            )
        return SweepResult(self.tables[strategy])

    def __iter__(self) -> Iterator[str]:
        return iter(self.tables)

    def fastest_strategy(self, n_cpus: int) -> str:
        """Strategy with the smallest time at a given CPU count."""
        candidates: dict[str, float] = {}
        for name, table in self.tables.items():
            times = table.times()
            if n_cpus in times:
                candidates[name] = times[n_cpus]
        if not candidates:
            raise ValuationError(f"no strategy was swept at {n_cpus} CPUs")
        return min(candidates, key=candidates.__getitem__)

    def format(self) -> str:
        return format_comparison_table(self.tables.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            name: {"times": table.times(), "ratios": table.ratios()}
            for name, table in self.tables.items()
        }
