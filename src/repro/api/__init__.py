"""``repro.api`` -- the unified, typed entry point of the package.

One facade (:class:`ValuationSession`) plus immutable configuration values
(:class:`BackendSpec`, :class:`RunConfig`, :class:`SweepConfig`), a
normalized result hierarchy (:class:`PriceResult`, :class:`RunResult`,
:class:`SweepResult`, :class:`ComparisonResult`) and the streaming job
lifecycle (:class:`PricingFuture`, :class:`JobSet`, :class:`StreamingRun`,
:class:`CancelToken`).  Everything the legacy free functions in
:mod:`repro.core.runner` did is reachable from here, and new capabilities
(futures via :meth:`ValuationSession.submit_many`, completion-order
streaming via :meth:`ValuationSession.stream`, named backend selection)
only exist here.
"""

from repro.api.config import BackendSpec, RunConfig, SweepConfig
from repro.pricing.cache import ResultCache
from repro.api.futures import (
    ALL_COMPLETED,
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    CancelToken,
    JobSet,
    PricingFuture,
    StreamingRun,
    StreamProgress,
)
from repro.api.results import (
    ComparisonResult,
    PriceResult,
    RunResult,
    SweepResult,
    ValuationResult,
)
from repro.api.session import JobHandle, ValuationSession

__all__ = [
    "ValuationSession",
    "JobHandle",
    "PricingFuture",
    "JobSet",
    "StreamingRun",
    "StreamProgress",
    "CancelToken",
    "ALL_COMPLETED",
    "FIRST_COMPLETED",
    "FIRST_EXCEPTION",
    "BackendSpec",
    "RunConfig",
    "SweepConfig",
    "ResultCache",
    "ValuationResult",
    "PriceResult",
    "RunResult",
    "SweepResult",
    "ComparisonResult",
]
