"""``repro.api`` -- the unified, typed entry point of the package.

One facade (:class:`ValuationSession`) plus immutable configuration values
(:class:`BackendSpec`, :class:`RunConfig`, :class:`SweepConfig`) and a
normalized result hierarchy (:class:`PriceResult`, :class:`RunResult`,
:class:`SweepResult`, :class:`ComparisonResult`).  Everything the legacy
free functions in :mod:`repro.core.runner` did is reachable from here, and
new capabilities (batching via :meth:`ValuationSession.submit_many`, named
backend selection) only exist here.
"""

from repro.api.config import BackendSpec, RunConfig, SweepConfig
from repro.pricing.cache import ResultCache
from repro.api.results import (
    ComparisonResult,
    PriceResult,
    RunResult,
    SweepResult,
    ValuationResult,
)
from repro.api.session import JobHandle, ValuationSession

__all__ = [
    "ValuationSession",
    "JobHandle",
    "BackendSpec",
    "RunConfig",
    "SweepConfig",
    "ResultCache",
    "ValuationResult",
    "PriceResult",
    "RunResult",
    "SweepResult",
    "ComparisonResult",
]
