"""Typed, immutable configuration objects of the unified API.

These frozen dataclasses carry everything a
:class:`~repro.api.session.ValuationSession` needs to build backends,
schedulers and sweeps, replacing the positional backend/strategy/scheduler
plumbing of the free functions in :mod:`repro.core.runner`.  They are plain
values: hashable-by-content where possible, safe to share between sessions
and cheap to derive variants from with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.cluster.backends import WorkerBackend, create_backend, list_backends
from repro.core.scheduler import SCHEDULERS, Scheduler
from repro.core.strategies import STRATEGIES
from repro.errors import ValuationError

__all__ = ["BackendSpec", "RetryPolicy", "RunConfig", "SweepConfig"]


def _frozen_options(options: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not options:
        return ()
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class BackendSpec:
    """Recipe for building an execution backend by registered name.

    A spec is *not* a backend: backends are one-shot objects (the scheduler
    finalizes them at the end of a run) while a spec can :meth:`create` a
    fresh one for every run of the session.
    """

    name: str = "simulated"
    n_workers: int = 2
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValuationError("BackendSpec.n_workers must be >= 1")
        if isinstance(self.options, Mapping):
            object.__setattr__(self, "options", _frozen_options(self.options))
        if self.name == "remote":
            self._validate_remote_options()

    def _validate_remote_options(self) -> None:
        """Check and normalise the remote backend's ``hosts`` option.

        The worker addresses are folded into a tuple of ``"host:port"``
        strings at spec-construction time, so a bad address fails *here* --
        with a clear message, before any socket is opened -- and the frozen
        spec stays hashable (a raw list value would not be).
        """
        from repro.cluster.backends.remote import normalize_hosts
        from repro.errors import ClusterError

        options = dict(self.options)
        if not options.get("hosts"):
            raise ValuationError(
                "the remote backend needs a non-empty 'hosts' option, e.g. "
                "BackendSpec('remote', options={'hosts': ['10.0.0.4:9631']}); "
                "spawn_local_workers(n).hosts gives a loopback pool"
            )
        try:
            options["hosts"] = normalize_hosts(options["hosts"])
        except ClusterError as exc:
            raise ValuationError(str(exc)) from exc
        object.__setattr__(self, "options", _frozen_options(options))

    @classmethod
    def coerce(
        cls,
        value: "str | BackendSpec | WorkerBackend",
        n_workers: int | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> "BackendSpec | WorkerBackend":
        """Normalise a user-supplied backend argument.

        Strings become specs (validated against the registry), specs pass
        through (re-sized if ``n_workers`` is given), and ready-made
        :class:`WorkerBackend` instances are returned untouched so callers
        can inject a pre-configured engine.
        """
        if isinstance(value, WorkerBackend):
            if options:
                raise ValuationError(
                    "backend options cannot be applied to an already-built "
                    "WorkerBackend instance; pass a name or BackendSpec instead"
                )
            return value
        if isinstance(value, BackendSpec):
            merged = dict(value.options)
            merged.update(options or {})
            if merged != dict(value.options) or (
                n_workers is not None and n_workers != value.n_workers
            ):
                return cls(
                    value.name,
                    n_workers if n_workers is not None else value.n_workers,
                    merged,
                )
            return value
        if isinstance(value, str):
            if value not in list_backends():
                raise ValuationError(
                    f"unknown backend {value!r}; registered backends: {list_backends()}"
                )
            return cls(value, n_workers if n_workers is not None else 2,
                       _frozen_options(options))
        raise ValuationError(
            f"backend must be a name, a BackendSpec or a WorkerBackend, "
            f"got {type(value).__name__}"
        )

    def create(self, strategy: str = "serialized_load", **extra: Any) -> WorkerBackend:
        """Build a fresh backend for one run."""
        merged = dict(self.options)
        merged.update(extra)
        return create_backend(
            self.name, n_workers=self.n_workers, strategy=strategy, **merged
        )


@dataclass(frozen=True)
class RetryPolicy:
    """When and how a run survives losing the whole worker pool.

    A :class:`~repro.errors.WorkerLostError` carries the ``job_ids`` that
    were still unresolved when the pool died.  With a retry policy on the
    :class:`RunConfig`, the session catches that error, rebuilds a fresh
    backend from its :class:`BackendSpec` and transparently resubmits only
    the unresolved positions -- up to ``max_attempts`` total attempts, with
    ``backoff * backoff_factor**(k-1)`` seconds before the ``k``-th retry so
    crashed workers have time to come back.  Results from all attempts merge
    into one submission-ordered report, bit-identical to a clean run.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValuationError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff < 0:
            raise ValuationError("RetryPolicy.backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValuationError("RetryPolicy.backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class RunConfig:
    """How one portfolio (or job-list) valuation is executed.

    ``batch=True`` turns on shared-path batch pricing: positions with equal
    simulation signatures (see :mod:`repro.pricing.batch`) are coalesced into
    :class:`~repro.pricing.batch.ProblemBatch` jobs that workers price
    against one simulated path set.  ``cache`` overrides the session's
    result-cache usage for this run (``None`` keeps the session default,
    ``False`` bypasses the cache, ``True`` requires the session to have one).
    ``batch_group_size`` caps how many positions one batch job may carry, so
    large families still spread across parallel workers.

    Two streaming-lifecycle hooks ride along (excluded from equality/hash,
    like ``cost_model``): ``progress`` is called once per collected position
    with a :class:`~repro.api.futures.StreamProgress`; ``cancel`` is a
    :class:`~repro.api.futures.CancelToken` that withdraws still-queued
    positions when fired (in-flight jobs finish; withdrawn positions are
    marked cancelled in the run result).

    ``retry`` (a :class:`RetryPolicy`) makes the session survive total pool
    loss: unresolved positions from a :class:`~repro.errors.WorkerLostError`
    are transparently resubmitted on a fresh backend built from the
    session's :class:`BackendSpec`.
    """

    strategy: str = "serialized_load"
    scheduler: str | None = None
    scheduler_options: tuple[tuple[str, Any], ...] = ()
    attach_problems: bool | None = None
    cost_model: Any | None = field(default=None, compare=False)
    batch: bool = False
    batch_group_size: int | None = None
    #: Monte-Carlo evaluation strategy for shared-path batch jobs: "loop"
    #: (per-group, per-member arithmetic) or "stacked" (all groups of a plan
    #: as one stacked-array computation).  Bit-identical prices either way;
    #: the kernel never enters simulation signatures or cache digests.
    kernel: str = "loop"
    #: smallest signature family coalesced into a ProblemBatch.  The default
    #: (``None``) keeps the planner's threshold of 2; scenario-grid campaigns
    #: (:mod:`repro.pricing.scenarios`) set 1 so even singleton cells ride
    #: the batch path and the stacked kernel's shared-draw cohorts.
    min_group_size: int | None = None
    cache: bool | None = None
    progress: Callable[..., None] | None = field(default=None, compare=False)
    cancel: Any | None = field(default=None, compare=False)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.batch_group_size is not None and self.batch_group_size < 2:
            raise ValuationError("RunConfig.batch_group_size must be >= 2 when given")
        if self.min_group_size is not None and self.min_group_size < 1:
            raise ValuationError("RunConfig.min_group_size must be >= 1 when given")
        from repro.pricing.kernel import KERNELS

        if self.kernel not in KERNELS:
            raise ValuationError(
                f"unknown kernel {self.kernel!r}; known: {list(KERNELS)}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ValuationError(
                "RunConfig.retry must be a RetryPolicy (or None), got "
                f"{type(self.retry).__name__}"
            )
        if self.strategy not in STRATEGIES:
            raise ValuationError(
                f"unknown strategy {self.strategy!r}; known: {sorted(STRATEGIES)}"
            )
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ValuationError(
                f"unknown scheduler {self.scheduler!r}; known: {sorted(SCHEDULERS)}"
            )
        if isinstance(self.scheduler_options, Mapping):
            object.__setattr__(
                self, "scheduler_options", _frozen_options(self.scheduler_options)
            )

    def scheduler_factory(self) -> Callable[[], Scheduler]:
        """A factory producing a fresh scheduler per run (default Robin-Hood)."""
        name = self.scheduler or "robin_hood"
        cls = SCHEDULERS[name]
        options = dict(self.scheduler_options)
        return lambda: cls(**options)


@dataclass(frozen=True)
class SweepConfig:
    """How a CPU-count sweep over the simulated cluster is executed.

    ``batch=True`` coalesces shared-simulation families before sweeping, so
    the paper's tables can be regenerated "with batching" (the batch-aware
    cost model charges one shared path simulation per family plus a
    per-member payoff sweep).
    """

    cpu_counts: tuple[int, ...] = (2, 4, 8, 16)
    strategy: str = "serialized_load"
    share_nfs_cache: bool = True
    label: str | None = None
    batch: bool = False
    batch_group_size: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cpu_counts", tuple(self.cpu_counts))
        if not self.cpu_counts:
            raise ValuationError("SweepConfig.cpu_counts must not be empty")
        if any(n < 2 for n in self.cpu_counts):
            raise ValuationError("cpu_counts must be >= 2 (one master + workers)")
        if self.strategy not in STRATEGIES:
            raise ValuationError(
                f"unknown strategy {self.strategy!r}; known: {sorted(STRATEGIES)}"
            )
        if self.batch_group_size is not None and self.batch_group_size < 2:
            raise ValuationError("SweepConfig.batch_group_size must be >= 2 when given")
