"""First-class futures over the streaming master loop.

The paper's master collects results *incrementally* -- ``MPI_Probe`` on any
source, then ``MPI_Recv_Obj`` -- but until this module the public API was
batch-synchronous: every submission resolved through one blocking gather.
This module is the user-facing half of the streaming redesign:

* :class:`PricingFuture` -- the deferred result of one submitted problem,
  with the ``concurrent.futures``-style surface (``done()``, ``result()``,
  ``exception()``, ``cancel()``, done-callbacks).  Reading one future pumps
  the master loop only until *that* job is collected -- never a full-batch
  gather;
* :class:`JobSet` -- an ordered collection of futures supporting
  :meth:`~JobSet.as_completed` iteration and :meth:`~JobSet.wait` with the
  usual ``return_when`` policies;
* :class:`StreamingRun` -- what :meth:`ValuationSession.stream` returns: an
  iterable of :class:`~repro.api.results.PriceResult` in completion order
  that still reassembles a deterministic, submission-ordered
  :class:`~repro.api.results.RunResult` at the end;
* :class:`CancelToken` -- cooperative cancellation threaded through
  :class:`~repro.api.config.RunConfig`: queued jobs are withdrawn, in-flight
  jobs finish, the run result marks the withdrawn positions as cancelled.

The machinery underneath (:class:`_StreamCore`) drives one
:class:`~repro.core.scheduler.ScheduleStream` and routes every collected
event -- plain results, expanded :class:`~repro.pricing.batch.ProblemBatch`
members, worker errors -- to the right future.  Cache hits never enter the
stream at all: their futures are born resolved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro.api.results import PriceResult
from repro.errors import (
    CollectTimeoutError,
    FutureTimeoutError,
    JobCancelledError,
    ValuationError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.results import RunResult
    from repro.cluster.backends.base import CompletedJob, Job
    from repro.core.scheduler import ScheduleStream

__all__ = [
    "PricingFuture",
    "JobSet",
    "StreamingRun",
    "CancelToken",
    "StreamProgress",
    "ALL_COMPLETED",
    "FIRST_COMPLETED",
    "FIRST_EXCEPTION",
]

#: ``JobSet.wait`` policies (same spellings as :mod:`concurrent.futures`)
ALL_COMPLETED = "ALL_COMPLETED"
FIRST_COMPLETED = "FIRST_COMPLETED"
FIRST_EXCEPTION = "FIRST_EXCEPTION"

_PENDING = "pending"
_DONE = "done"
_CANCELLED = "cancelled"


class CancelToken:
    """Cooperative cancellation flag shared between caller and run.

    Pass one through ``RunConfig(cancel=token)`` (or directly to
    :meth:`ValuationSession.stream`); calling :meth:`cancel` from a callback
    or another piece of the program withdraws every job still queued
    master-side.  Jobs already on a worker run to completion -- the paper's
    protocol has no way to interrupt a slave mid-computation.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"CancelToken(cancelled={self._cancelled})"


@dataclass(frozen=True)
class StreamProgress:
    """One progress tick, handed to ``RunConfig.progress`` per collection."""

    done: int
    total: int
    job_id: int
    label: str | None = None
    result: PriceResult | None = None
    error: str | None = None
    cancelled: bool = False


class PricingFuture:
    """Deferred result of one problem flowing through the streaming pipeline.

    Futures are created in one of three states:

    * *unsubmitted* -- queued by :meth:`ValuationSession.submit_many`;
      nothing executes until the first ``result()``/``wait`` pumps the
      session, which starts the campaign lazily;
    * *streaming* -- attached to a live :class:`_StreamCore`; reading the
      future collects results **only until this job answers**, leaving the
      rest of the batch in flight;
    * *resolved* -- born done (cache hits) or collected.
    """

    __slots__ = (
        "job_id",
        "label",
        "method",
        "_core",
        "_starter",
        "_state",
        "_result",
        "_error",
        "_callbacks",
    )

    def __init__(
        self,
        job_id: int,
        label: str | None = None,
        method: str | None = None,
        starter: Callable[[], None] | None = None,
    ) -> None:
        self.job_id = job_id
        self.label = label
        self.method = method
        self._core: _StreamCore | None = None
        self._starter = starter
        self._state = _PENDING
        self._result: dict[str, Any] | None = None
        self._error: str | None = None
        self._callbacks: list[Callable[["PricingFuture"], None]] = []

    # -- state inspection --------------------------------------------------------
    def done(self) -> bool:
        """Whether the future is resolved (successfully, failed or cancelled)."""
        return self._state in (_DONE, _CANCELLED)

    def running(self) -> bool:
        """Whether the job was handed to a live backend and is unresolved."""
        return self._state == _PENDING and self._core is not None

    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    # -- cancellation ------------------------------------------------------------
    def cancel(self) -> bool:
        """Try to withdraw the job; ``False`` once it reached a worker.

        An unsubmitted future cancels unconditionally (it never built a job);
        a streaming one only while it is still queued master-side.
        """
        if self._state == _CANCELLED:
            return True
        if self._state == _DONE:
            return False
        if self._core is not None and not self._core.cancel_job(self.job_id):
            return False
        self._mark_cancelled()
        return True

    def _mark_cancelled(self) -> None:
        if self._state != _PENDING:
            return
        self._state = _CANCELLED
        self._fire_callbacks()

    # -- resolution --------------------------------------------------------------
    def _ensure_pumpable(self) -> None:
        if self._state != _PENDING:
            return
        if self._core is None and self._starter is not None:
            # not cleared on failure: a failed campaign start (e.g. an
            # incomplete problem breaking job building) must be retryable
            # with the same root-cause exception
            self._starter()
        if self._core is not None:
            self._starter = None
        elif self._state == _PENDING:
            raise ValuationError(
                f"future for job {self.job_id} is not attached to a run; "
                f"was its session discarded before gathering?"
            )

    def result(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The worker's result dictionary (``None`` for timing-only backends).

        Pumps the master loop until *this* job is collected -- other jobs of
        the same campaign keep streaming in the background.  Raises
        :class:`~repro.errors.JobCancelledError` if the future was cancelled,
        :class:`~repro.errors.FutureTimeoutError` if no result arrived within
        ``timeout`` seconds (retryable), and :class:`ValuationError` if the
        job failed on the worker.
        """
        if self._state == _CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._state != _DONE:
            self._ensure_pumpable()
            if self._state == _PENDING:
                assert self._core is not None
                self._core.pump_until(self, timeout)
        if self._state == _CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._error is not None:
            raise ValuationError(f"job {self.job_id} failed: {self._error}")
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The exception the job would raise from :meth:`result`, or ``None``."""
        try:
            self.result(timeout)
        except (JobCancelledError, ValuationError) as exc:
            if isinstance(exc, FutureTimeoutError):
                raise
            return exc
        return None

    def price(self) -> float:
        """Shortcut to the job's price; raises if the run was timing-only."""
        result = self.result()
        if result is None or "price" not in result:
            raise ValuationError(
                f"job {self.job_id} returned no price (timing-only backend?)"
            )
        return result["price"]

    def error(self) -> str | None:
        """The worker-side error message, or ``None`` (resolves the future)."""
        try:
            self.result()
        except JobCancelledError:
            return "cancelled"
        except ValuationError:
            pass
        return self._error

    def price_result(self) -> PriceResult | None:
        """The resolved result as a :class:`PriceResult` (``None`` if priceless)."""
        if not self.done() or self._error is not None or self._state == _CANCELLED:
            return None
        if self._result is None or "price" not in self._result:
            return None
        return PriceResult.from_dict(
            self._result, label=self.label, method=self.method, job_id=self.job_id
        )

    # -- callbacks ---------------------------------------------------------------
    def add_done_callback(self, fn: Callable[["PricingFuture"], None]) -> None:
        """Call ``fn(future)`` when the future resolves (now, if it already has)."""
        if self.done():
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def _resolve(self, result: dict[str, Any] | None, error: str | None) -> None:
        if self._state != _PENDING:
            return
        self._result = result
        self._error = error
        self._state = _DONE
        self._fire_callbacks()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = self._state if self._error is None else "error"
        return f"PricingFuture(job_id={self.job_id}, label={self.label!r}, {state})"


class JobSet(Sequence):
    """An ordered, indexable collection of :class:`PricingFuture`.

    Supports everything a list of futures would, plus streaming iteration:
    :meth:`as_completed` yields futures in the order the cluster answers,
    :meth:`wait` blocks under the usual ``concurrent.futures`` policies.
    Duplicate submissions (deduplicated by problem digest) appear as the
    *same* future object at several positions.
    """

    def __init__(self, futures: Sequence[PricingFuture]) -> None:
        self._futures = list(futures)

    def __len__(self) -> int:
        return len(self._futures)

    def __getitem__(self, index: int | slice) -> PricingFuture | JobSet:  # type: ignore[override]
        if isinstance(index, slice):
            return JobSet(self._futures[index])
        return self._futures[index]

    def __iter__(self) -> Iterator[PricingFuture]:
        return iter(self._futures)

    @property
    def n_done(self) -> int:
        return sum(1 for future in self._unique() if future.done())

    def _unique(self) -> list[PricingFuture]:
        seen: set[int] = set()
        unique: list[PricingFuture] = []
        for future in self._futures:
            if id(future) not in seen:
                seen.add(id(future))
                unique.append(future)
        return unique

    def as_completed(self, timeout: float | None = None) -> Iterator[PricingFuture]:
        """Yield every future exactly once, in completion order.

        Futures that are already resolved (cache hits, earlier pumping) come
        first; the rest stream in as the master collects them.  ``timeout``
        bounds the *total* wait, raising
        :class:`~repro.errors.FutureTimeoutError` with the stragglers still
        pending (retryable).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = self._unique()
        while pending:
            ready = [future for future in pending if future.done()]
            for future in ready:
                pending.remove(future)
                yield future
            if not pending:
                return
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FutureTimeoutError(
                        f"{len(pending)} job(s) still pending after {timeout}s"
                    )
            head = pending[0]
            head._ensure_pumpable()
            if head._core is not None and not head.done():
                head._core.pump(remaining)

    def wait(
        self,
        timeout: float | None = None,
        return_when: str = ALL_COMPLETED,
    ) -> tuple[list[PricingFuture], list[PricingFuture]]:
        """Block until the policy is met; return ``(done, not_done)`` lists."""
        if return_when not in (ALL_COMPLETED, FIRST_COMPLETED, FIRST_EXCEPTION):
            raise ValuationError(
                f"unknown return_when {return_when!r}; use ALL_COMPLETED, "
                f"FIRST_COMPLETED or FIRST_EXCEPTION"
            )

        def _satisfied(done_futures: list[PricingFuture]) -> bool:
            if not done_futures:
                return False
            if return_when == FIRST_COMPLETED:
                return True
            if return_when == FIRST_EXCEPTION:
                return any(
                    future.cancelled() or future._error is not None
                    for future in done_futures
                ) or len(done_futures) == len(self._unique())
            return len(done_futures) == len(self._unique())

        done_list: list[PricingFuture] = []
        try:
            for future in self.as_completed(timeout):
                done_list.append(future)
                if _satisfied(done_list):
                    break
        except FutureTimeoutError:
            pass
        not_done = [future for future in self._unique() if not future.done()]
        done_list = [future for future in self._unique() if future.done()]
        return done_list, not_done

    def cancel(self) -> int:
        """Cancel every future still cancellable; returns how many were."""
        return sum(1 for future in self._unique() if future.cancel())

    def results(self) -> list[dict[str, Any] | None]:
        """Every result in submission order (pumps to completion; may raise)."""
        return [future.result() for future in self._futures]

    def prices(self) -> list[float]:
        """Every price in submission order (pumps to completion; may raise)."""
        return [future.price() for future in self._futures]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"JobSet({len(self._futures)} futures, {self.n_done} done)"


class _StreamCore:
    """Routes one :class:`ScheduleStream`'s events to their futures.

    The session builds a core per campaign with the member map of coalesced
    :class:`~repro.pricing.batch.ProblemBatch` super-jobs, the progress
    callback and the cancellation token; the core owns nothing else -- final
    report assembly stays in the session via ``finalize_cb``.
    """

    def __init__(
        self,
        stream: "ScheduleStream | None",
        futures: Mapping[int, PricingFuture],
        batch_members: Mapping[int, tuple[int, ...]] | None = None,
        total: int | None = None,
        progress: Callable[[StreamProgress], None] | None = None,
        cancel: CancelToken | None = None,
        finalize_cb: Callable[..., "RunResult"] | None = None,
    ) -> None:
        self._stream = stream
        self._futures = dict(futures)
        self._batch_members = dict(batch_members or {})
        self._progress = progress
        self._cancel = cancel
        self._finalize_cb = finalize_cb
        self._run_result: "RunResult | None" = None
        self._total = total if total is not None else len(self._futures)
        self._n_reported = 0
        # cache hits were resolved before the stream existed: report them
        for future in list(self._futures.values()):
            if future.done():
                self._n_reported += 1
                self._report(future)

    # -- bookkeeping -------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._stream is None or self._stream.remaining == 0

    @property
    def finished(self) -> bool:
        """Whether the campaign was fully assembled (backend finalized)."""
        return self._run_result is not None

    def attach(self, futures: Mapping[int, PricingFuture]) -> None:
        for future in futures.values():
            future._core = self

    def _report(self, future: PricingFuture, cancelled: bool = False) -> None:
        if self._progress is None:
            return
        self._progress(
            StreamProgress(
                done=self._n_reported,
                total=self._total,
                job_id=future.job_id,
                label=future.label,
                result=future.price_result(),
                error=future._error,
                cancelled=cancelled,
            )
        )

    def _resolve_future(
        self, job_id: int, result: dict[str, Any] | None, error: str | None
    ) -> list[PricingFuture]:
        future = self._futures.get(job_id)
        if future is None or future.done():
            return []
        future._resolve(result, error)
        self._n_reported += 1
        self._report(future)
        return [future]

    def _resolve_completed(self, done: "CompletedJob") -> list[PricingFuture]:
        members = self._batch_members.get(done.job_id)
        if members is None:
            return self._resolve_future(done.job_id, done.result, done.error)
        resolved: list[PricingFuture] = []
        result = done.result
        if isinstance(result, dict) and result.get("batch"):
            entries = result.get("results", {})
            for member in members:
                entry = entries.get(str(member), entries.get(member))
                if isinstance(entry, dict) and "error" in entry:
                    resolved += self._resolve_future(member, None, entry["error"])
                else:
                    resolved += self._resolve_future(member, entry, None)
        else:
            # failed (or payload-less) batch job: propagate to every member
            for member in members:
                resolved += self._resolve_future(member, result, done.error)
        return resolved

    # -- cancellation ------------------------------------------------------------
    def cancel_job(self, job_id: int) -> bool:
        if self._stream is None:
            return False
        # a batch member cannot be withdrawn alone: its super-job may carry
        # siblings that were not cancelled
        for members in self._batch_members.values():
            if job_id in members:
                return False
        return self._stream.cancel_job(job_id)

    def _apply_cancel_token(self) -> None:
        if self._cancel is None or not self._cancel.cancelled:
            return
        if self._stream is None:
            return
        for job in self._stream.cancel_pending():
            for member in self._batch_members.get(job.job_id, (job.job_id,)):
                future = self._futures.get(member)
                if future is not None and not future.done():
                    future._mark_cancelled()
                    self._n_reported += 1
                    self._report(future, cancelled=True)

    # -- pumping -----------------------------------------------------------------
    def pump(self, timeout: float | None = None) -> list[PricingFuture]:
        """Collect one event from the stream; return the futures it resolved."""
        self._apply_cancel_token()
        if self.exhausted:
            return []
        assert self._stream is not None
        try:
            done = self._stream.collect_next(timeout)
        except CollectTimeoutError as exc:
            raise FutureTimeoutError(str(exc)) from exc
        resolved = self._resolve_completed(done)
        if self.exhausted and self._finalize_cb is not None:
            # the last event was just collected: stop the workers and
            # finalize the backend now, so campaigns drained through
            # futures/iteration alone never leak worker processes
            self.finish()
        return resolved

    def pump_until(self, future: PricingFuture, timeout: float | None = None) -> None:
        """Pump the stream until ``future`` resolves -- never a full gather."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not future.done():
            if self.exhausted:
                raise ValuationError(
                    f"stream exhausted but job {future.job_id} never resolved"
                )
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FutureTimeoutError(
                        f"job {future.job_id} still pending after {timeout}s"
                    )
            self.pump(remaining)

    def drain(self) -> None:
        while not self.exhausted:
            self.pump()

    def finish(self) -> "RunResult":
        """Drain the stream and assemble the final submission-ordered result."""
        if self._run_result is not None:
            return self._run_result
        self.drain()
        if self._run_result is not None:
            # the drain's last pump auto-finished the campaign already
            return self._run_result
        outcome = None
        cancelled: list["Job"] = []
        if self._stream is not None:
            outcome = self._stream.finish()
            cancelled = self._stream.cancelled_jobs
        assert self._finalize_cb is not None
        self._run_result = self._finalize_cb(outcome, cancelled)
        return self._run_result


class StreamingRun:
    """A live streaming valuation, as returned by :meth:`ValuationSession.stream`.

    Iterating yields one :class:`~repro.api.results.PriceResult` per position
    **in completion order** (positions that failed or carry no price -- the
    simulated backend is timing-only -- are counted but not yielded).  After
    iteration, :meth:`result` returns the deterministic, submission-ordered
    :class:`~repro.api.results.RunResult`; calling :meth:`result` early
    simply drains the rest synchronously.
    """

    def __init__(self, core: _StreamCore, jobs: JobSet) -> None:
        self._core = core
        self._jobs = jobs

    @property
    def jobs(self) -> JobSet:
        """The underlying futures, for ``as_completed``/``wait`` access."""
        return self._jobs

    @property
    def n_total(self) -> int:
        return len(self._jobs)

    @property
    def n_done(self) -> int:
        return self._jobs.n_done

    def __iter__(self) -> Iterator[PriceResult]:
        for future in self._jobs.as_completed():
            result = future.price_result()
            if result is not None:
                yield result

    def cancel(self) -> int:
        """Withdraw every position still queued master-side."""
        return self._jobs.cancel()

    def result(self) -> "RunResult":
        """Drain outstanding work and return the submission-ordered result."""
        return self._core.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"StreamingRun({self.n_done}/{self.n_total} collected)"
