"""The :class:`ValuationSession` facade -- one typed entry point for the stack.

The paper's workflow is *build a Premia-style problem, serialize it,
distribute it over a master/worker cluster, collect speedup tables*.  Before
this module, each step was a separate free function with positional
backend/strategy/scheduler plumbing; a session bundles the choices once and
exposes the whole workflow as methods::

    from repro.api import ValuationSession

    session = ValuationSession(backend="simulated", strategy="serialized_load")
    price   = session.price(model="BlackScholes1D", option="CallEuro",
                            method="CF_Call",
                            model_params={"spot": 100, "rate": 0.05,
                                          "volatility": 0.2},
                            option_params={"strike": 100, "maturity": 1.0})
    run     = session.run(portfolio)                       # -> RunResult
    sweep   = session.sweep(portfolio, cpu_counts=[2, 4, 8])  # -> SweepResult
    tables  = session.compare(portfolio, cpu_counts=[2, 4])   # -> ComparisonResult
    handles = session.submit_many(problems)                # -> [JobHandle, ...]

The legacy free functions in :mod:`repro.core.runner` still exist as thin
shims delegating here, so both spellings stay equivalent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.api.config import BackendSpec, RunConfig, SweepConfig
from repro.api.results import ComparisonResult, PriceResult, RunResult, SweepResult
from repro.cluster.backends import Job, WorkerBackend, create_backend
from repro.cluster.costmodel import CostModel, paper_cost_model
from repro.cluster.simcluster.comm import STRATEGY_NAMES, CommunicationModel
from repro.core.portfolio import Portfolio
from repro.core.runner import RunReport
from repro.core.scheduler import SCHEDULERS, RobinHoodScheduler, Scheduler
from repro.core.strategies import TransmissionStrategy, get_strategy
from repro.errors import SchedulingError, ValuationError
from repro.pricing.engine import PricingProblem
from repro.serial import serialize

__all__ = ["ValuationSession", "JobHandle"]

#: sentinel distinguishing "not yet computed" from a ``None`` result
_UNRESOLVED = object()


class JobHandle:
    """Deferred result of one problem submitted with :meth:`ValuationSession.submit_many`.

    Handles resolve lazily: reading :meth:`result` (or :meth:`error`) on an
    unresolved handle triggers :meth:`ValuationSession.gather` on the owning
    session, which values every pending submission as one batch.
    """

    __slots__ = ("job_id", "label", "_session", "_result", "_error")

    def __init__(self, job_id: int, label: str | None, session: "ValuationSession"):
        self.job_id = job_id
        self.label = label
        self._session = session
        self._result: Any = _UNRESOLVED
        self._error: str | None = None

    def done(self) -> bool:
        """Whether the batch containing this handle has been executed."""
        return self._result is not _UNRESOLVED

    def result(self) -> dict[str, Any] | None:
        """The worker's result dictionary (``None`` for timing-only backends).

        Raises :class:`ValuationError` if the job failed on the worker.
        """
        if not self.done():
            self._session.gather()
        if self._error is not None:
            raise ValuationError(f"job {self.job_id} failed: {self._error}")
        return self._result

    def price(self) -> float:
        """Shortcut to the job's price; raises if the run was timing-only."""
        result = self.result()
        if result is None or "price" not in result:
            raise ValuationError(
                f"job {self.job_id} returned no price (timing-only backend?)"
            )
        return result["price"]

    def error(self) -> str | None:
        """The worker-side error message, or ``None``."""
        if not self.done():
            self._session.gather()
        return self._error

    def _resolve(self, result: dict[str, Any] | None, error: str | None) -> None:
        self._result = result
        self._error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = "pending" if not self.done() else ("error" if self._error else "done")
        return f"JobHandle(job_id={self.job_id}, label={self.label!r}, {state})"


class ValuationSession:
    """Facade bundling backend, strategy, scheduler and cost-model choices.

    Parameters
    ----------
    backend:
        Registered backend name (``"local"``, ``"multiprocessing"``,
        ``"simulated"``), a :class:`~repro.api.config.BackendSpec`, or a
        ready-made :class:`~repro.cluster.backends.WorkerBackend` instance.
        Name/spec sessions build a **fresh** backend per run and are reusable;
        instance sessions are one-shot (backends are finalized by the
        scheduler at the end of a run).
    strategy:
        Default problem-transmission strategy (``full_load``, ``nfs``,
        ``serialized_load``) or a :class:`TransmissionStrategy` instance.
    n_workers:
        Worker count for name/spec backends (ignored for instances).
    scheduler:
        ``None`` (Robin-Hood), a scheduler name from
        :data:`~repro.core.scheduler.SCHEDULERS`, a
        :class:`~repro.core.scheduler.Scheduler` instance, or a zero-argument
        factory returning fresh schedulers.
    cost_model:
        :class:`~repro.cluster.costmodel.CostModel` used to estimate per-job
        compute costs when building jobs from portfolios / submissions
        (default: the paper's calibrated model).
    comm:
        Shared :class:`CommunicationModel` for sweeps (warm NFS cache
        semantics, the paper's experimental artefact).
    comm_factory:
        Factory producing a fresh :class:`CommunicationModel` per sweep run
        or per compared strategy; this is how custom NFS settings survive
        ``share_nfs_cache=False`` runs.
    backend_options:
        Extra keyword options for the backend factory (e.g.
        ``{"start_method": "spawn"}`` for multiprocessing).
    """

    def __init__(
        self,
        backend: str | BackendSpec | WorkerBackend = "simulated",
        strategy: str | TransmissionStrategy = "serialized_load",
        *,
        n_workers: int | None = None,
        scheduler: str | Scheduler | Callable[[], Scheduler] | None = None,
        cost_model: CostModel | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        backend_options: Mapping[str, Any] | None = None,
    ):
        coerced = BackendSpec.coerce(backend, n_workers=n_workers, options=backend_options)
        if isinstance(coerced, WorkerBackend):
            self._backend_spec: BackendSpec | None = None
            self._backend_instance: WorkerBackend | None = coerced
        else:
            self._backend_spec = coerced
            self._backend_instance = None
        self._backend_consumed = False
        self.strategy = strategy
        self.scheduler = scheduler
        self.cost_model = cost_model or paper_cost_model()
        self.comm = comm
        self.comm_factory = comm_factory
        self._pending: list[tuple[PricingProblem, JobHandle, str]] = []
        self._next_job_id = 0
        self._validate()

    # -- configuration helpers ---------------------------------------------------
    def _validate(self) -> None:
        if isinstance(self.strategy, str):
            get_strategy(self.strategy)  # raises SchedulingError on bad names
        if isinstance(self.scheduler, str) and self.scheduler not in SCHEDULERS:
            raise ValuationError(
                f"unknown scheduler {self.scheduler!r}; known: {sorted(SCHEDULERS)}"
            )

    @property
    def backend_spec(self) -> BackendSpec | None:
        """The spec used to build backends (``None`` for instance sessions)."""
        return self._backend_spec

    def with_options(self, **changes: Any) -> "ValuationSession":
        """A new session sharing this one's choices, with ``changes`` applied."""
        current: dict[str, Any] = {
            "backend": self._backend_spec
            if self._backend_spec is not None
            else self._backend_instance,
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "cost_model": self.cost_model,
            "comm": self.comm,
            "comm_factory": self.comm_factory,
        }
        current.update(changes)
        return ValuationSession(**current)

    def _new_scheduler(self) -> Scheduler:
        if self.scheduler is None:
            return RobinHoodScheduler()
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        if isinstance(self.scheduler, str):
            return SCHEDULERS[self.scheduler]()
        return self.scheduler()

    def _strategy_name(self, strategy: str | TransmissionStrategy | None) -> str:
        chosen = strategy if strategy is not None else self.strategy
        return chosen if isinstance(chosen, str) else chosen.name

    def _acquire_backend(self, strategy_name: str) -> WorkerBackend:
        if self._backend_instance is not None:
            if self._backend_consumed:
                raise ValuationError(
                    "this session wraps a backend instance, which the scheduler "
                    "finalizes after one run; pass a backend name or BackendSpec "
                    "for a reusable session"
                )
            self._backend_consumed = True
            return self._backend_instance
        assert self._backend_spec is not None
        extra: dict[str, Any] = {}
        if self._backend_spec.name == "simulated" and self.comm is not None:
            extra["comm"] = self.comm
        return self._backend_spec.create(strategy=strategy_name, **extra)

    # -- the engine --------------------------------------------------------------
    def _execute_jobs(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: str | TransmissionStrategy | None,
        scheduler: Scheduler | None = None,
    ) -> RunReport:
        """Dispatch ``jobs``, check completeness and normalise the report.

        This is the single execution path of the whole package: the legacy
        :func:`repro.core.runner.run_jobs` delegates here.
        """
        chosen = strategy if strategy is not None else self.strategy
        strategy_obj = get_strategy(chosen) if isinstance(chosen, str) else chosen
        runner = scheduler or self._new_scheduler()
        outcome = runner.run(jobs, backend, strategy_obj)
        if len(outcome.completed) != len(jobs):
            raise SchedulingError(
                f"scheduler returned {len(outcome.completed)} results for {len(jobs)} jobs"
            )
        return RunReport.from_outcome(outcome, jobs, strategy_obj.name)

    def _portfolio_jobs(
        self,
        portfolio: Portfolio,
        backend: WorkerBackend,
        store: Any = None,
        attach_problems: bool | None = None,
        cost_model: CostModel | None = None,
    ) -> list[Job]:
        if attach_problems is None:
            attach_problems = getattr(backend, "requires_payload", True) and store is None
        return portfolio.build_jobs(
            cost_model=cost_model or self.cost_model,
            store=store,
            attach_problems=attach_problems,
        )

    # -- pricing -----------------------------------------------------------------
    def price(
        self,
        model: Any = None,
        option: Any = None,
        method: Any = None,
        *,
        model_params: Mapping[str, Any] | None = None,
        option_params: Mapping[str, Any] | None = None,
        method_params: Mapping[str, Any] | None = None,
        asset: str = "equity",
        label: str | None = None,
        problem: PricingProblem | None = None,
    ) -> PriceResult:
        """Price one option and return a :class:`PriceResult`.

        Accepts either registry names plus parameter mappings (the
        Premia-style spelling) or model/option/method *instances*; or a fully
        specified :class:`PricingProblem` via ``problem=``.  Single-option
        pricing always computes in-process -- the session's backend is for
        portfolio-scale work.
        """
        if problem is not None:
            if model is not None or option is not None or method is not None:
                raise ValuationError("pass either problem= or model/option/method, not both")
            return self.price_problem(problem)
        if model is None or option is None or method is None:
            raise ValuationError("price() needs model, option and method (or problem=)")
        names = [isinstance(part, str) for part in (model, option, method)]
        if all(names):
            built = PricingProblem(label=label)
            built.set_asset(asset)
            built.set_model(model, **dict(model_params or {}))
            built.set_option(option, **dict(option_params or {}))
            built.set_method(method, **dict(method_params or {}))
        elif not any(names):
            built = PricingProblem.from_instances(
                model, option, method, asset=asset, label=label
            )
        else:
            raise ValuationError(
                "price() takes either all names or all instances for "
                "model/option/method, not a mix"
            )
        return self.price_problem(built)

    def price_problem(self, problem: PricingProblem) -> PriceResult:
        """Compute a fully specified problem in-process."""
        result = problem.compute()
        return PriceResult.from_pricing(
            result, label=problem.label, method=problem.method_name
        )

    # -- portfolio runs ----------------------------------------------------------
    def run(
        self,
        source: Portfolio | Sequence[Job],
        *,
        strategy: str | TransmissionStrategy | None = None,
        scheduler: Scheduler | None = None,
        store: Any = None,
        attach_problems: bool | None = None,
        config: RunConfig | None = None,
    ) -> RunResult:
        """Value a portfolio (or a prepared job list) on the session backend."""
        cost_model: CostModel | None = None
        if config is not None:
            strategy = strategy if strategy is not None else config.strategy
            if scheduler is None and config.scheduler is not None:
                scheduler = config.scheduler_factory()()
            if attach_problems is None:
                attach_problems = config.attach_problems
            cost_model = config.cost_model
        strategy_name = self._strategy_name(strategy)
        backend = self._acquire_backend(strategy_name)
        if isinstance(source, Portfolio):
            jobs = self._portfolio_jobs(source, backend, store, attach_problems, cost_model)
            portfolio: Portfolio | None = source
        else:
            jobs = list(source)
            portfolio = None
        report = self._execute_jobs(jobs, backend, strategy, scheduler)
        return RunResult(report=report, portfolio=portfolio)

    # -- batch submission --------------------------------------------------------
    def submit_many(
        self,
        problems: Iterable[PricingProblem],
        *,
        category: str = "submitted",
    ) -> list[JobHandle]:
        """Queue problems for batched valuation; returns one handle per problem.

        Nothing executes until :meth:`gather` runs (explicitly, or implicitly
        through the first ``handle.result()`` call), so many ``submit_many``
        calls coalesce into a single master/worker campaign.
        """
        handles: list[JobHandle] = []
        for problem in problems:
            if not isinstance(problem, PricingProblem):
                raise ValuationError(
                    f"submit_many expects PricingProblem items, got {type(problem).__name__}"
                )
            handle = JobHandle(self._next_job_id, problem.label, self)
            self._next_job_id += 1
            self._pending.append((problem, handle, category))
            handles.append(handle)
        return handles

    @property
    def n_pending(self) -> int:
        """Number of submitted problems not yet gathered."""
        return len(self._pending)

    def gather(self) -> RunResult:
        """Value every pending submission as one batch and resolve the handles."""
        if not self._pending:
            raise ValuationError("no pending submissions to gather")
        # keep the queue intact until the batch succeeds: a failure while
        # building jobs or running them leaves the handles pending, with the
        # real exception propagating, instead of stranding them unresolved
        pending = list(self._pending)
        jobs = [
            Job(
                job_id=handle.job_id,
                path=f"/virtual/session/{handle.job_id:06d}.pb",
                file_size=serialize(problem).nbytes + 4,
                compute_cost=self.cost_model.estimate(problem),
                category=category,
                problem=problem,
            )
            for problem, handle, category in pending
        ]
        strategy_name = self._strategy_name(None)
        backend = self._acquire_backend(strategy_name)
        report = self._execute_jobs(jobs, backend, None)
        self._pending = []
        for _, handle, _category in pending:
            handle._resolve(
                report.results.get(handle.job_id), report.errors.get(handle.job_id)
            )
        return RunResult(report=report)

    # -- sweeps and comparisons --------------------------------------------------
    def sweep(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int] | None = None,
        *,
        strategy: str | None = None,
        share_nfs_cache: bool | None = None,
        label: str | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        config: SweepConfig | None = None,
    ) -> SweepResult:
        """Simulate the same workload over several cluster sizes.

        Always runs on the simulated cluster (that is the point of a sweep),
        whatever the session backend is.  ``share_nfs_cache=True`` (default)
        reuses one :class:`CommunicationModel` across the sweep, reproducing
        the paper's warm-NFS-cache artefact; ``False`` gives every CPU count
        an independent cold run built by ``comm_factory`` when provided, or
        by :meth:`CommunicationModel.cold_copy` otherwise -- either way any
        customised NFS settings are preserved.
        """
        if config is not None:
            cpu_counts = cpu_counts if cpu_counts is not None else config.cpu_counts
            strategy = strategy or config.strategy
            if share_nfs_cache is None:
                share_nfs_cache = config.share_nfs_cache
            label = label or config.label
        if share_nfs_cache is None:
            share_nfs_cache = True
        if not cpu_counts:
            raise SchedulingError("cpu_counts must not be empty")
        strategy_name = self._strategy_name(strategy)
        jobs = self._sweep_jobs(source)
        comm_factory = comm_factory or self.comm_factory
        base_comm = comm if comm is not None else self.comm
        if base_comm is None:
            base_comm = comm_factory() if comm_factory else CommunicationModel()
        times: dict[int, float] = {}
        for n_cpus in cpu_counts:
            if share_nfs_cache:
                run_comm = base_comm
            elif comm_factory is not None:
                run_comm = comm_factory()
            else:
                run_comm = base_comm.cold_copy()
            backend = self._simulated_backend(n_cpus, strategy_name, run_comm)
            report = self._execute_jobs(jobs, backend, strategy_name)
            times[n_cpus] = report.total_time
        from repro.core.speedup import SpeedupTable

        return SweepResult(SpeedupTable.from_times(label or strategy_name, times))

    def compare(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int],
        *,
        strategies: Sequence[str] = STRATEGY_NAMES,
        share_nfs_cache: bool = True,
        comm_factory: Callable[[], CommunicationModel] | None = None,
    ) -> ComparisonResult:
        """Run the CPU-count sweep for several transmission strategies.

        Reproduces the full layout of the paper's Tables II and III.  Each
        strategy gets its own communication model (its own NFS cache
        history), built by ``comm_factory`` when provided.
        """
        comm_factory = comm_factory or self.comm_factory
        jobs = self._sweep_jobs(source)
        tables: dict[str, Any] = {}
        for strategy in strategies:
            comm = comm_factory() if comm_factory else CommunicationModel()
            tables[strategy] = self.sweep(
                jobs,
                cpu_counts,
                strategy=strategy,
                share_nfs_cache=share_nfs_cache,
                comm=comm,
                comm_factory=comm_factory,
                label=strategy,
            ).table
        return ComparisonResult(tables)

    def _sweep_jobs(self, source: Portfolio | Sequence[Job]) -> list[Job]:
        if isinstance(source, Portfolio):
            return source.build_jobs(cost_model=self.cost_model)
        return list(source)

    def _simulated_backend(
        self, n_cpus: int, strategy_name: str, comm: CommunicationModel
    ) -> WorkerBackend:
        options: dict[str, Any] = {}
        if self._backend_spec is not None and self._backend_spec.name == "simulated":
            options.update(dict(self._backend_spec.options))
        options.pop("comm", None)
        return create_backend(
            "simulated",
            n_workers=n_cpus - 1,
            strategy=strategy_name,
            comm=comm,
            **options,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        backend = (
            self._backend_spec.name
            if self._backend_spec is not None
            else type(self._backend_instance).__name__
        )
        return (
            f"ValuationSession(backend={backend!r}, "
            f"strategy={self._strategy_name(None)!r}, pending={self.n_pending})"
        )
