"""The :class:`ValuationSession` facade -- one typed entry point for the stack.

The paper's workflow is *build a Premia-style problem, serialize it,
distribute it over a master/worker cluster, collect speedup tables*.  Before
this module, each step was a separate free function with positional
backend/strategy/scheduler plumbing; a session bundles the choices once and
exposes the whole workflow as methods::

    from repro.api import ValuationSession

    session = ValuationSession(backend="simulated", strategy="serialized_load")
    price   = session.price(model="BlackScholes1D", option="CallEuro",
                            method="CF_Call",
                            model_params={"spot": 100, "rate": 0.05,
                                          "volatility": 0.2},
                            option_params={"strike": 100, "maturity": 1.0})
    run     = session.run(portfolio)                       # -> RunResult
    sweep   = session.sweep(portfolio, cpu_counts=[2, 4, 8])  # -> SweepResult
    tables  = session.compare(portfolio, cpu_counts=[2, 4])   # -> ComparisonResult
    handles = session.submit_many(problems)                # -> [JobHandle, ...]

The legacy free functions in :mod:`repro.core.runner` still exist as thin
shims delegating here, so both spellings stay equivalent.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.api.config import BackendSpec, RunConfig, SweepConfig
from repro.api.results import ComparisonResult, PriceResult, RunResult, SweepResult
from repro.cluster.backends import Job, WorkerBackend, create_backend
from repro.cluster.costmodel import CostModel, paper_cost_model
from repro.cluster.simcluster.comm import STRATEGY_NAMES, CommunicationModel
from repro.core.portfolio import Portfolio
from repro.core.runner import RunReport
from repro.core.scheduler import SCHEDULERS, RobinHoodScheduler, Scheduler
from repro.core.strategies import TransmissionStrategy, get_strategy
from repro.errors import SchedulingError, ValuationError
from repro.pricing.batch import ProblemBatch, batch_digest, plan_batches
from repro.pricing.cache import ResultCache, problem_digest
from repro.pricing.engine import PricingProblem
from repro.serial import serialize

__all__ = ["ValuationSession", "JobHandle"]

#: backend names whose workers execute payloads in this process tree and can
#: therefore share an on-disk result cache via the ``cache_dir`` option
_EXECUTING_BACKENDS = ("local", "sequential", "multiprocessing")


def _coerce_cache(cache: "ResultCache | str | Path | bool | None") -> ResultCache | None:
    """Normalise the session ``cache=`` option into a :class:`ResultCache`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(directory=cache)
    raise ValuationError(
        f"cache must be a ResultCache, a directory path or a bool, "
        f"got {type(cache).__name__}"
    )

#: sentinel distinguishing "not yet computed" from a ``None`` result
_UNRESOLVED = object()


class JobHandle:
    """Deferred result of one problem submitted with :meth:`ValuationSession.submit_many`.

    Handles resolve lazily: reading :meth:`result` (or :meth:`error`) on an
    unresolved handle triggers :meth:`ValuationSession.gather` on the owning
    session, which values every pending submission as one batch.
    """

    __slots__ = ("job_id", "label", "_session", "_result", "_error")

    def __init__(self, job_id: int, label: str | None, session: "ValuationSession"):
        self.job_id = job_id
        self.label = label
        self._session = session
        self._result: Any = _UNRESOLVED
        self._error: str | None = None

    def done(self) -> bool:
        """Whether the batch containing this handle has been executed."""
        return self._result is not _UNRESOLVED

    def result(self) -> dict[str, Any] | None:
        """The worker's result dictionary (``None`` for timing-only backends).

        Raises :class:`ValuationError` if the job failed on the worker.
        """
        if not self.done():
            self._session.gather()
        if self._error is not None:
            raise ValuationError(f"job {self.job_id} failed: {self._error}")
        return self._result

    def price(self) -> float:
        """Shortcut to the job's price; raises if the run was timing-only."""
        result = self.result()
        if result is None or "price" not in result:
            raise ValuationError(
                f"job {self.job_id} returned no price (timing-only backend?)"
            )
        return result["price"]

    def error(self) -> str | None:
        """The worker-side error message, or ``None``."""
        if not self.done():
            self._session.gather()
        return self._error

    def _resolve(self, result: dict[str, Any] | None, error: str | None) -> None:
        self._result = result
        self._error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        state = "pending" if not self.done() else ("error" if self._error else "done")
        return f"JobHandle(job_id={self.job_id}, label={self.label!r}, {state})"


class ValuationSession:
    """Facade bundling backend, strategy, scheduler and cost-model choices.

    Parameters
    ----------
    backend:
        Registered backend name (``"local"``, ``"multiprocessing"``,
        ``"simulated"``), a :class:`~repro.api.config.BackendSpec`, or a
        ready-made :class:`~repro.cluster.backends.WorkerBackend` instance.
        Name/spec sessions build a **fresh** backend per run and are reusable;
        instance sessions are one-shot (backends are finalized by the
        scheduler at the end of a run).
    strategy:
        Default problem-transmission strategy (``full_load``, ``nfs``,
        ``serialized_load``) or a :class:`TransmissionStrategy` instance.
    n_workers:
        Worker count for name/spec backends (ignored for instances).
    scheduler:
        ``None`` (Robin-Hood), a scheduler name from
        :data:`~repro.core.scheduler.SCHEDULERS`, a
        :class:`~repro.core.scheduler.Scheduler` instance, or a zero-argument
        factory returning fresh schedulers.
    cost_model:
        :class:`~repro.cluster.costmodel.CostModel` used to estimate per-job
        compute costs when building jobs from portfolios / submissions
        (default: the paper's calibrated model).
    comm:
        Shared :class:`CommunicationModel` for sweeps (warm NFS cache
        semantics, the paper's experimental artefact).
    comm_factory:
        Factory producing a fresh :class:`CommunicationModel` per sweep run
        or per compared strategy; this is how custom NFS settings survive
        ``share_nfs_cache=False`` runs.
    backend_options:
        Extra keyword options for the backend factory (e.g.
        ``{"start_method": "spawn"}`` for multiprocessing).
    cache:
        Digest-keyed result cache (see :mod:`repro.pricing.cache`).
        ``True`` builds an in-memory LRU, a path string / :class:`~pathlib.Path`
        builds a disk-backed cache (also shared with multiprocessing workers
        through the backend's ``cache_dir`` option), a ready-made
        :class:`~repro.pricing.cache.ResultCache` is used as given, and
        ``None``/``False`` (default) disables caching.
    """

    def __init__(
        self,
        backend: str | BackendSpec | WorkerBackend = "simulated",
        strategy: str | TransmissionStrategy = "serialized_load",
        *,
        n_workers: int | None = None,
        scheduler: str | Scheduler | Callable[[], Scheduler] | None = None,
        cost_model: CostModel | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        backend_options: Mapping[str, Any] | None = None,
        cache: ResultCache | str | Path | bool | None = None,
    ):
        coerced = BackendSpec.coerce(backend, n_workers=n_workers, options=backend_options)
        if isinstance(coerced, WorkerBackend):
            self._backend_spec: BackendSpec | None = None
            self._backend_instance: WorkerBackend | None = coerced
        else:
            self._backend_spec = coerced
            self._backend_instance = None
        self._backend_consumed = False
        self.strategy = strategy
        self.scheduler = scheduler
        self.cost_model = cost_model or paper_cost_model()
        self.comm = comm
        self.comm_factory = comm_factory
        self._cache = _coerce_cache(cache)
        self._pending: list[tuple[PricingProblem, JobHandle, str]] = []
        self._next_job_id = 0
        self._validate()

    # -- configuration helpers ---------------------------------------------------
    def _validate(self) -> None:
        if isinstance(self.strategy, str):
            get_strategy(self.strategy)  # raises SchedulingError on bad names
        if isinstance(self.scheduler, str) and self.scheduler not in SCHEDULERS:
            raise ValuationError(
                f"unknown scheduler {self.scheduler!r}; known: {sorted(SCHEDULERS)}"
            )

    @property
    def backend_spec(self) -> BackendSpec | None:
        """The spec used to build backends (``None`` for instance sessions)."""
        return self._backend_spec

    @property
    def cache(self) -> ResultCache | None:
        """The session's result cache (``None`` when caching is disabled)."""
        return self._cache

    def with_options(self, **changes: Any) -> "ValuationSession":
        """A new session sharing this one's choices, with ``changes`` applied."""
        current: dict[str, Any] = {
            "backend": self._backend_spec
            if self._backend_spec is not None
            else self._backend_instance,
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "cost_model": self.cost_model,
            "comm": self.comm,
            "comm_factory": self.comm_factory,
            "cache": self._cache,
        }
        current.update(changes)
        return ValuationSession(**current)

    def _new_scheduler(self) -> Scheduler:
        if self.scheduler is None:
            return RobinHoodScheduler()
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        if isinstance(self.scheduler, str):
            return SCHEDULERS[self.scheduler]()
        return self.scheduler()

    def _strategy_name(self, strategy: str | TransmissionStrategy | None) -> str:
        chosen = strategy if strategy is not None else self.strategy
        return chosen if isinstance(chosen, str) else chosen.name

    def _acquire_backend(
        self, strategy_name: str, cache: ResultCache | None = None
    ) -> WorkerBackend:
        if self._backend_instance is not None:
            if self._backend_consumed:
                raise ValuationError(
                    "this session wraps a backend instance, which the scheduler "
                    "finalizes after one run; pass a backend name or BackendSpec "
                    "for a reusable session"
                )
            self._backend_consumed = True
            return self._backend_instance
        assert self._backend_spec is not None
        extra: dict[str, Any] = {}
        if self._backend_spec.name == "simulated" and self.comm is not None:
            extra["comm"] = self.comm
        if (
            cache is not None
            and cache.directory is not None
            and self._backend_spec.name in _EXECUTING_BACKENDS
            and "cache_dir" not in dict(self._backend_spec.options)
        ):
            # share the run's disk-backed cache with the workers (skipped
            # when the run bypasses caching via cache=False)
            extra["cache_dir"] = str(cache.directory)
        return self._backend_spec.create(strategy=strategy_name, **extra)

    # -- the engine --------------------------------------------------------------
    def _execute_jobs(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: str | TransmissionStrategy | None,
        scheduler: Scheduler | None = None,
    ) -> RunReport:
        """Dispatch ``jobs``, check completeness and normalise the report.

        This is the single execution path of the whole package: the legacy
        :func:`repro.core.runner.run_jobs` delegates here.
        """
        chosen = strategy if strategy is not None else self.strategy
        strategy_obj = get_strategy(chosen) if isinstance(chosen, str) else chosen
        runner = scheduler or self._new_scheduler()
        outcome = runner.run(jobs, backend, strategy_obj)
        if len(outcome.completed) != len(jobs):
            raise SchedulingError(
                f"scheduler returned {len(outcome.completed)} results for {len(jobs)} jobs"
            )
        return RunReport.from_outcome(outcome, jobs, strategy_obj.name)

    def _portfolio_jobs(
        self,
        portfolio: Portfolio,
        backend: WorkerBackend,
        store: Any = None,
        attach_problems: bool | None = None,
        cost_model: CostModel | None = None,
    ) -> list[Job]:
        if attach_problems is None:
            attach_problems = getattr(backend, "requires_payload", True) and store is None
        return portfolio.build_jobs(
            cost_model=cost_model or self.cost_model,
            store=store,
            attach_problems=attach_problems,
        )

    # -- pricing -----------------------------------------------------------------
    def price(
        self,
        model: Any = None,
        option: Any = None,
        method: Any = None,
        *,
        model_params: Mapping[str, Any] | None = None,
        option_params: Mapping[str, Any] | None = None,
        method_params: Mapping[str, Any] | None = None,
        asset: str = "equity",
        label: str | None = None,
        problem: PricingProblem | None = None,
    ) -> PriceResult:
        """Price one option and return a :class:`PriceResult`.

        Accepts either registry names plus parameter mappings (the
        Premia-style spelling) or model/option/method *instances*; or a fully
        specified :class:`PricingProblem` via ``problem=``.  Single-option
        pricing always computes in-process -- the session's backend is for
        portfolio-scale work.
        """
        if problem is not None:
            if model is not None or option is not None or method is not None:
                raise ValuationError("pass either problem= or model/option/method, not both")
            return self.price_problem(problem)
        if model is None or option is None or method is None:
            raise ValuationError("price() needs model, option and method (or problem=)")
        names = [isinstance(part, str) for part in (model, option, method)]
        if all(names):
            built = PricingProblem(label=label)
            built.set_asset(asset)
            built.set_model(model, **dict(model_params or {}))
            built.set_option(option, **dict(option_params or {}))
            built.set_method(method, **dict(method_params or {}))
        elif not any(names):
            built = PricingProblem.from_instances(
                model, option, method, asset=asset, label=label
            )
        else:
            raise ValuationError(
                "price() takes either all names or all instances for "
                "model/option/method, not a mix"
            )
        return self.price_problem(built)

    def price_problem(self, problem: PricingProblem) -> PriceResult:
        """Compute a fully specified problem in-process.

        With a session cache, the problem digest is looked up first and a
        fresh result is stored back, so repeated ``price(...)`` calls over
        identical problems skip pricing entirely.
        """
        if self._cache is not None:
            digest = problem_digest(problem)
            cached = self._cache.get(digest)
            if cached is not None:
                problem._result = cached
                return PriceResult.from_pricing(
                    cached, label=problem.label, method=problem.method_name
                )
            result = problem.compute()
            self._cache.put(digest, result)
        else:
            result = problem.compute()
        return PriceResult.from_pricing(
            result, label=problem.label, method=problem.method_name
        )

    # -- portfolio runs ----------------------------------------------------------
    def run(
        self,
        source: Portfolio | Sequence[Job],
        *,
        strategy: str | TransmissionStrategy | None = None,
        scheduler: Scheduler | None = None,
        store: Any = None,
        attach_problems: bool | None = None,
        config: RunConfig | None = None,
        batch: bool | None = None,
        batch_group_size: int | None = None,
        cache: bool | None = None,
    ) -> RunResult:
        """Value a portfolio (or a prepared job list) on the session backend.

        ``batch=True`` coalesces positions with equal simulation signatures
        into shared-path :class:`~repro.pricing.batch.ProblemBatch` jobs
        (executing backends only); prices are bit-identical to the unbatched
        run.  With a session cache (or ``cache=True`` routed through
        :class:`~repro.api.config.RunConfig`), positions whose digest is
        already stored skip dispatch entirely and fresh results are stored
        back after the run.
        """
        cost_model: CostModel | None = None
        if config is not None:
            strategy = strategy if strategy is not None else config.strategy
            if scheduler is None and config.scheduler is not None:
                scheduler = config.scheduler_factory()()
            if attach_problems is None:
                attach_problems = config.attach_problems
            cost_model = config.cost_model
            if batch is None:
                batch = config.batch
            if batch_group_size is None:
                batch_group_size = config.batch_group_size
            if cache is None:
                cache = config.cache
        batch = bool(batch)
        run_cache = self._resolve_run_cache(cache)
        strategy_name = self._strategy_name(strategy)
        if batch and strategy_name == "nfs":
            raise ValuationError(
                "batch=True cannot be combined with the nfs strategy: "
                "coalesced batch jobs have no per-position problem files"
            )
        backend = self._acquire_backend(strategy_name, cache=run_cache)
        executing = getattr(backend, "requires_payload", True)
        if batch and not executing:
            raise ValuationError(
                "batch=True needs an executing backend (local/multiprocessing); "
                "the simulated backend prices jobs from the cost model and "
                "never runs the shared-path engine"
            )
        if isinstance(source, Portfolio):
            if batch and attach_problems is None and store is None:
                attach_problems = True  # batch planning needs the problems
            jobs = self._portfolio_jobs(source, backend, store, attach_problems, cost_model)
            portfolio: Portfolio | None = source
            problem_by_id = {
                job.job_id: position.problem for job, position in zip(jobs, source)
            }
        else:
            jobs = list(source)
            portfolio = None
            problem_by_id = {
                job.job_id: job.problem for job in jobs if job.problem is not None
            }
        n_jobs_total = len(jobs)

        # cache pass: positions already priced never reach the backend
        cached_results: dict[int, dict[str, Any]] = {}
        digests: dict[int, str] = {}
        if run_cache is not None and executing:
            for job in jobs:
                problem = problem_by_id.get(job.job_id)
                if problem is None:
                    continue
                digest = problem_digest(problem)
                digests[job.job_id] = digest
                hit = run_cache.get(digest)
                if hit is not None:
                    entry = hit.as_dict()
                    entry["cache_hit"] = True
                    cached_results[job.job_id] = entry
            if cached_results:
                jobs = [job for job in jobs if job.job_id not in cached_results]

        batch_members: dict[int, tuple[int, ...]] = {}
        if batch:
            jobs, batch_members = self._coalesce_jobs(jobs, problem_by_id, batch_group_size)

        if jobs or not cached_results:
            report = self._execute_jobs(jobs, backend, strategy, scheduler)
        else:
            # every position was answered from the cache: nothing to dispatch
            stats = backend.finalize()
            report = RunReport(
                n_jobs=0,
                n_workers=stats.n_workers,
                strategy=strategy_name,
                scheduler="cache",
                total_time=stats.total_time,
                master_busy=stats.master_busy,
                worker_busy=dict(stats.worker_busy),
                bytes_sent=stats.bytes_sent,
            )
        if batch_members:
            report = self._expand_batch_report(report, batch_members)
        if cached_results:
            report.results.update(cached_results)
            report.n_jobs = n_jobs_total
        if run_cache is not None and executing:
            self._store_run_results(run_cache, report, digests)
        return RunResult(report=report, portfolio=portfolio)

    # -- batch & cache helpers ---------------------------------------------------
    def _resolve_run_cache(self, cache: bool | None) -> ResultCache | None:
        if cache is False:
            return None
        if cache is True and self._cache is None:
            raise ValuationError(
                "cache=True was requested but the session has no result cache; "
                "construct the session with cache=True / a directory / a ResultCache"
            )
        return self._cache

    def _coalesce_jobs(
        self,
        jobs: list[Job],
        problem_by_id: Mapping[int, PricingProblem],
        batch_group_size: int | None,
    ) -> tuple[list[Job], dict[int, tuple[int, ...]]]:
        """Merge shared-simulation jobs into :class:`ProblemBatch` super-jobs."""
        plan = plan_batches(
            [problem_by_id.get(job.job_id) for job in jobs],
            max_group_size=batch_group_size,
        )
        group_by_first: dict[int, Any] = {g.indices[0]: g for g in plan.groups}
        grouped = {index for group in plan.groups for index in group.indices}
        out: list[Job] = []
        members_map: dict[int, tuple[int, ...]] = {}
        for index, job in enumerate(jobs):
            group = group_by_first.get(index)
            if group is not None:
                member_jobs = [jobs[i] for i in group.indices]
                problems = [problem_by_id[j.job_id] for j in member_jobs]
                bundle = ProblemBatch(problems, keys=[j.job_id for j in member_jobs])
                costs = [j.compute_cost for j in member_jobs]
                peak = max(costs)
                super_job = Job(
                    job_id=job.job_id,
                    path=f"/virtual/batch/{batch_digest(bundle)[:16]}.pb",
                    file_size=sum(j.file_size for j in member_jobs),
                    # one shared simulation plus cheap per-member payoff sweeps
                    compute_cost=peak + 0.02 * (sum(costs) - peak),
                    category=job.category,
                    problem=bundle,
                )
                out.append(super_job)
                members_map[job.job_id] = tuple(j.job_id for j in member_jobs)
            elif index not in grouped:
                out.append(job)
        return out, members_map

    def _expand_batch_report(
        self, report: RunReport, batch_members: Mapping[int, tuple[int, ...]]
    ) -> RunReport:
        """Rewrite a report over super-jobs into per-position results."""
        results: dict[int, dict[str, Any] | None] = {}
        member_errors: dict[int, str] = {}
        for job_id, result in report.results.items():
            members = batch_members.get(job_id)
            if members is None:
                results[job_id] = result
            elif isinstance(result, dict) and result.get("batch"):
                for key, entry in result["results"].items():
                    if isinstance(entry, dict) and "error" in entry:
                        results[int(key)] = None
                        member_errors[int(key)] = entry["error"]
                    else:
                        results[int(key)] = entry
            else:  # failed (or payload-less) batch job: propagate to members
                for member in members:
                    results[member] = None
        errors: dict[int, str] = dict(member_errors)
        for job_id, message in report.errors.items():
            members = batch_members.get(job_id)
            if members is None:
                errors[job_id] = message
            else:
                for member in members:
                    errors[member] = message
        report.results = results
        report.errors = errors
        report.n_jobs += sum(len(members) - 1 for members in batch_members.values())
        return report

    @staticmethod
    def _store_run_results(
        run_cache: ResultCache, report: RunReport, digests: Mapping[int, str]
    ) -> None:
        for job_id, result in report.results.items():
            if (
                result is None
                or result.get("cache_hit")
                or result.get("price") is None
                or job_id in report.errors
                or job_id not in digests
            ):
                continue
            run_cache.put(digests[job_id], result)

    # -- batch submission --------------------------------------------------------
    def submit_many(
        self,
        problems: Iterable[PricingProblem],
        *,
        category: str = "submitted",
    ) -> list[JobHandle]:
        """Queue problems for batched valuation; returns one handle per problem.

        Nothing executes until :meth:`gather` runs (explicitly, or implicitly
        through the first ``handle.result()`` call), so many ``submit_many``
        calls coalesce into a single master/worker campaign.
        """
        handles: list[JobHandle] = []
        for problem in problems:
            if not isinstance(problem, PricingProblem):
                raise ValuationError(
                    f"submit_many expects PricingProblem items, got {type(problem).__name__}"
                )
            handle = JobHandle(self._next_job_id, problem.label, self)
            self._next_job_id += 1
            self._pending.append((problem, handle, category))
            handles.append(handle)
        return handles

    @property
    def n_pending(self) -> int:
        """Number of submitted problems not yet gathered."""
        return len(self._pending)

    def gather(self) -> RunResult:
        """Value every pending submission as one batch and resolve the handles."""
        if not self._pending:
            raise ValuationError("no pending submissions to gather")
        # keep the queue intact until the batch succeeds: a failure while
        # building jobs or running them leaves the handles pending, with the
        # real exception propagating, instead of stranding them unresolved
        pending = list(self._pending)
        jobs = [
            Job(
                job_id=handle.job_id,
                path=f"/virtual/session/{handle.job_id:06d}.pb",
                file_size=serialize(problem).nbytes + 4,
                compute_cost=self.cost_model.estimate(problem),
                category=category,
                problem=problem,
            )
            for problem, handle, category in pending
        ]
        strategy_name = self._strategy_name(None)
        backend = self._acquire_backend(strategy_name, cache=self._cache)
        report = self._execute_jobs(jobs, backend, None)
        self._pending = []
        for _, handle, _category in pending:
            handle._resolve(
                report.results.get(handle.job_id), report.errors.get(handle.job_id)
            )
        return RunResult(report=report)

    # -- sweeps and comparisons --------------------------------------------------
    def sweep(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int] | None = None,
        *,
        strategy: str | None = None,
        share_nfs_cache: bool | None = None,
        label: str | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        config: SweepConfig | None = None,
    ) -> SweepResult:
        """Simulate the same workload over several cluster sizes.

        Always runs on the simulated cluster (that is the point of a sweep),
        whatever the session backend is.  ``share_nfs_cache=True`` (default)
        reuses one :class:`CommunicationModel` across the sweep, reproducing
        the paper's warm-NFS-cache artefact; ``False`` gives every CPU count
        an independent cold run built by ``comm_factory`` when provided, or
        by :meth:`CommunicationModel.cold_copy` otherwise -- either way any
        customised NFS settings are preserved.
        """
        if config is not None:
            cpu_counts = cpu_counts if cpu_counts is not None else config.cpu_counts
            strategy = strategy or config.strategy
            if share_nfs_cache is None:
                share_nfs_cache = config.share_nfs_cache
            label = label or config.label
        if share_nfs_cache is None:
            share_nfs_cache = True
        if not cpu_counts:
            raise SchedulingError("cpu_counts must not be empty")
        strategy_name = self._strategy_name(strategy)
        jobs = self._sweep_jobs(source)
        comm_factory = comm_factory or self.comm_factory
        base_comm = comm if comm is not None else self.comm
        if base_comm is None:
            base_comm = comm_factory() if comm_factory else CommunicationModel()
        times: dict[int, float] = {}
        for n_cpus in cpu_counts:
            if share_nfs_cache:
                run_comm = base_comm
            elif comm_factory is not None:
                run_comm = comm_factory()
            else:
                run_comm = base_comm.cold_copy()
            backend = self._simulated_backend(n_cpus, strategy_name, run_comm)
            report = self._execute_jobs(jobs, backend, strategy_name)
            times[n_cpus] = report.total_time
        from repro.core.speedup import SpeedupTable

        return SweepResult(SpeedupTable.from_times(label or strategy_name, times))

    def compare(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int],
        *,
        strategies: Sequence[str] = STRATEGY_NAMES,
        share_nfs_cache: bool = True,
        comm_factory: Callable[[], CommunicationModel] | None = None,
    ) -> ComparisonResult:
        """Run the CPU-count sweep for several transmission strategies.

        Reproduces the full layout of the paper's Tables II and III.  Each
        strategy gets its own communication model (its own NFS cache
        history), built by ``comm_factory`` when provided.
        """
        comm_factory = comm_factory or self.comm_factory
        jobs = self._sweep_jobs(source)
        tables: dict[str, Any] = {}
        for strategy in strategies:
            comm = comm_factory() if comm_factory else CommunicationModel()
            tables[strategy] = self.sweep(
                jobs,
                cpu_counts,
                strategy=strategy,
                share_nfs_cache=share_nfs_cache,
                comm=comm,
                comm_factory=comm_factory,
                label=strategy,
            ).table
        return ComparisonResult(tables)

    def _sweep_jobs(self, source: Portfolio | Sequence[Job]) -> list[Job]:
        if isinstance(source, Portfolio):
            return source.build_jobs(cost_model=self.cost_model)
        return list(source)

    def _simulated_backend(
        self, n_cpus: int, strategy_name: str, comm: CommunicationModel
    ) -> WorkerBackend:
        options: dict[str, Any] = {}
        if self._backend_spec is not None and self._backend_spec.name == "simulated":
            options.update(dict(self._backend_spec.options))
        options.pop("comm", None)
        return create_backend(
            "simulated",
            n_workers=n_cpus - 1,
            strategy=strategy_name,
            comm=comm,
            **options,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        backend = (
            self._backend_spec.name
            if self._backend_spec is not None
            else type(self._backend_instance).__name__
        )
        return (
            f"ValuationSession(backend={backend!r}, "
            f"strategy={self._strategy_name(None)!r}, pending={self.n_pending})"
        )
