"""The :class:`ValuationSession` facade -- one typed entry point for the stack.

The paper's workflow is *build a Premia-style problem, serialize it,
distribute it over a master/worker cluster, collect speedup tables*.  A
session bundles the backend/strategy/scheduler choices once and exposes the
whole workflow as methods::

    from repro.api import ValuationSession

    session = ValuationSession(backend="simulated", strategy="serialized_load")
    price   = session.price(model="BlackScholes1D", option="CallEuro",
                            method="CF_Call",
                            model_params={"spot": 100, "rate": 0.05,
                                          "volatility": 0.2},
                            option_params={"strike": 100, "maturity": 1.0})
    run     = session.run(portfolio)                       # -> RunResult
    for price in session.stream(portfolio):                # completion order
        ...
    sweep   = session.sweep(portfolio, cpu_counts=[2, 4, 8])  # -> SweepResult
    tables  = session.compare(portfolio, cpu_counts=[2, 4])   # -> ComparisonResult
    futures = session.submit_many(problems)                # -> JobSet of futures

Since the streaming redesign, **every execution path flows through the
incremental master loop** (:class:`~repro.core.scheduler.ScheduleStream`):
``submit_many`` returns real :class:`~repro.api.futures.PricingFuture`
objects whose ``result()`` pumps the loop only until that job answers,
``stream`` yields results in completion order, and the synchronous ``run``
is a thin drain over the same pipeline.  Cache hits resolve their futures
immediately; coalesced :class:`~repro.pricing.batch.ProblemBatch` super-jobs
resolve every member future when the batch is collected.

The legacy free functions in :mod:`repro.core.runner` still exist as thin
shims delegating here, so both spellings stay equivalent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.api.config import BackendSpec, RetryPolicy, RunConfig, SweepConfig
from repro.api.futures import (
    CancelToken,
    JobSet,
    PricingFuture,
    StreamingRun,
    StreamProgress,
    _StreamCore,
)
from repro.api.results import ComparisonResult, PriceResult, RunResult, SweepResult
from repro.cluster.backends import Job, WorkerBackend, create_backend
from repro.cluster.costmodel import CostModel, paper_cost_model
from repro.cluster.simcluster.comm import STRATEGY_NAMES, CommunicationModel
from repro.core.portfolio import Portfolio
from repro.core.runner import RunReport
from repro.core.scheduler import SCHEDULERS, RobinHoodScheduler, Scheduler
from repro.core.strategies import TransmissionStrategy, get_strategy
from repro.errors import ClusterError, SchedulingError, ValuationError, WorkerLostError
from repro.pricing.batch import ProblemBatch, batch_digest, plan_batches
from repro.pricing.cache import ResultCache, problem_digest
from repro.pricing.engine import PricingProblem
from repro.serial import serialize

__all__ = ["ValuationSession", "JobHandle"]

#: backward-compatible name: handles *are* futures since the streaming redesign
JobHandle = PricingFuture

#: backend names whose workers execute payloads in this process tree and can
#: therefore share an on-disk result cache via the ``cache_dir`` option
_EXECUTING_BACKENDS = ("local", "sequential", "multiprocessing")


def _coerce_cache(cache: "ResultCache | str | Path | bool | None") -> ResultCache | None:
    """Normalise the session ``cache=`` option into a :class:`ResultCache`."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(directory=cache)
    raise ValuationError(
        f"cache must be a ResultCache, a directory path or a bool, "
        f"got {type(cache).__name__}"
    )


@dataclass
class _RunPlan:
    """Everything one campaign needs, prepared before anything executes."""

    backend: WorkerBackend
    executing: bool
    strategy_name: str
    #: jobs to dispatch (cache hits removed, batches coalesced)
    jobs: list[Job]
    #: submission-ordered ids of every position (pre-coalescing, pre-cache)
    original_ids: list[int]
    n_total: int
    problem_by_id: dict[int, PricingProblem]
    cached_results: dict[int, dict[str, Any]] = field(default_factory=dict)
    digests: dict[int, str] = field(default_factory=dict)
    batch_members: dict[int, tuple[int, ...]] = field(default_factory=dict)
    run_cache: ResultCache | None = None
    portfolio: Portfolio | None = None


class ValuationSession:
    """Facade bundling backend, strategy, scheduler and cost-model choices.

    Parameters
    ----------
    backend:
        Registered backend name (any entry of
        :func:`~repro.cluster.backends.list_backends` -- e.g. ``"local"``,
        ``"multiprocessing"``, ``"remote"``, ``"simulated"``), a
        :class:`~repro.api.config.BackendSpec`, or a ready-made
        :class:`~repro.cluster.backends.WorkerBackend` instance.
        Name/spec sessions build a **fresh** backend per run and are reusable;
        instance sessions are one-shot (backends are finalized by the
        scheduler at the end of a run).
    strategy:
        Default problem-transmission strategy (``full_load``, ``nfs``,
        ``serialized_load``) or a :class:`TransmissionStrategy` instance.
    n_workers:
        Worker count for name/spec backends (ignored for instances).
    scheduler:
        ``None`` (Robin-Hood), a scheduler name from
        :data:`~repro.core.scheduler.SCHEDULERS`, a
        :class:`~repro.core.scheduler.Scheduler` instance, or a zero-argument
        factory returning fresh schedulers.  Every registered scheduler
        streams (they are all policies over the one incremental master
        loop), so ``stream``/``submit_many``/``progress``/``cancel`` work
        with any of them.
    cost_model:
        :class:`~repro.cluster.costmodel.CostModel` used to estimate per-job
        compute costs when building jobs from portfolios / submissions
        (default: the paper's calibrated model).
    comm:
        Shared :class:`CommunicationModel` for sweeps (warm NFS cache
        semantics, the paper's experimental artefact).
    comm_factory:
        Factory producing a fresh :class:`CommunicationModel` per sweep run
        or per compared strategy; this is how custom NFS settings survive
        ``share_nfs_cache=False`` runs.
    backend_options:
        Extra keyword options for the backend factory (e.g.
        ``{"start_method": "spawn"}`` for multiprocessing).
    cache:
        Digest-keyed result cache (see :mod:`repro.pricing.cache`).
        ``True`` builds an in-memory LRU, a path string / :class:`~pathlib.Path`
        builds a disk-backed cache (also shared with multiprocessing workers
        through the backend's ``cache_dir`` option), a ready-made
        :class:`~repro.pricing.cache.ResultCache` is used as given, and
        ``None``/``False`` (default) disables caching.
    """

    def __init__(
        self,
        backend: str | BackendSpec | WorkerBackend = "simulated",
        strategy: str | TransmissionStrategy = "serialized_load",
        *,
        n_workers: int | None = None,
        scheduler: str | Scheduler | Callable[[], Scheduler] | None = None,
        cost_model: CostModel | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        backend_options: Mapping[str, Any] | None = None,
        cache: ResultCache | str | Path | bool | None = None,
    ) -> None:
        coerced = BackendSpec.coerce(backend, n_workers=n_workers, options=backend_options)
        if isinstance(coerced, WorkerBackend):
            self._backend_spec: BackendSpec | None = None
            self._backend_instance: WorkerBackend | None = coerced
        else:
            self._backend_spec = coerced
            self._backend_instance = None
        self._backend_consumed = False
        self.strategy = strategy
        self.scheduler = scheduler
        self.cost_model = cost_model or paper_cost_model()
        self.comm = comm
        self.comm_factory = comm_factory
        self._cache = _coerce_cache(cache)
        self._pending: list[tuple[PricingProblem, PricingFuture, str]] = []
        self._pending_by_digest: dict[str, PricingFuture] = {}
        self._active_cores: list[_StreamCore] = []
        self._next_job_id = 0
        self._validate()

    # -- configuration helpers ---------------------------------------------------
    def _validate(self) -> None:
        if isinstance(self.strategy, str):
            get_strategy(self.strategy)  # raises SchedulingError on bad names
        if isinstance(self.scheduler, str) and self.scheduler not in SCHEDULERS:
            raise ValuationError(
                f"unknown scheduler {self.scheduler!r}; known: {sorted(SCHEDULERS)}"
            )

    @property
    def backend_spec(self) -> BackendSpec | None:
        """The spec used to build backends (``None`` for instance sessions)."""
        return self._backend_spec

    @property
    def cache(self) -> ResultCache | None:
        """The session's result cache (``None`` when caching is disabled)."""
        return self._cache

    def with_options(self, **changes: Any) -> "ValuationSession":
        """A new session sharing this one's choices, with ``changes`` applied."""
        current: dict[str, Any] = {
            "backend": self._backend_spec
            if self._backend_spec is not None
            else self._backend_instance,
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "cost_model": self.cost_model,
            "comm": self.comm,
            "comm_factory": self.comm_factory,
            "cache": self._cache,
        }
        current.update(changes)
        return ValuationSession(**current)

    def _new_scheduler(self) -> Scheduler:
        if self.scheduler is None:
            return RobinHoodScheduler()
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        if isinstance(self.scheduler, str):
            return SCHEDULERS[self.scheduler]()
        return self.scheduler()

    def _strategy_name(self, strategy: str | TransmissionStrategy | None) -> str:
        chosen = strategy if strategy is not None else self.strategy
        return chosen if isinstance(chosen, str) else chosen.name

    def _acquire_backend(
        self, strategy_name: str, cache: ResultCache | None = None
    ) -> WorkerBackend:
        if self._backend_instance is not None:
            if self._backend_consumed:
                raise ValuationError(
                    "this session wraps a backend instance, which the scheduler "
                    "finalizes after one run; pass a backend name or BackendSpec "
                    "for a reusable session"
                )
            self._backend_consumed = True
            return self._backend_instance
        assert self._backend_spec is not None
        extra: dict[str, Any] = {}
        if self._backend_spec.name == "simulated" and self.comm is not None:
            extra["comm"] = self.comm
        if (
            cache is not None
            and cache.directory is not None
            and self._backend_spec.name in _EXECUTING_BACKENDS
            and "cache_dir" not in dict(self._backend_spec.options)
        ):
            # share the run's disk-backed cache with the workers (skipped
            # when the run bypasses caching via cache=False)
            extra["cache_dir"] = str(cache.directory)
        return self._backend_spec.create(strategy=strategy_name, **extra)

    # -- the synchronous engine (simulated-cluster sweeps) -----------------------
    def _execute_jobs(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: str | TransmissionStrategy | None,
        scheduler: Scheduler | None = None,
    ) -> RunReport:
        """Dispatch ``jobs`` run-to-completion, check and normalise the report.

        Only simulated-cluster sweeps go through here (``run()`` there is
        ``stream().finish()`` anyway); everything else flows through the
        streaming pipeline of :meth:`_make_core`.
        """
        chosen = strategy if strategy is not None else self.strategy
        strategy_obj = get_strategy(chosen) if isinstance(chosen, str) else chosen
        runner = scheduler or self._new_scheduler()
        outcome = runner.run(jobs, backend, strategy_obj)
        if len(outcome.completed) != len(jobs):
            raise SchedulingError(
                f"scheduler returned {len(outcome.completed)} results for {len(jobs)} jobs"
            )
        return RunReport.from_outcome(outcome, jobs, strategy_obj.name)

    def _portfolio_jobs(
        self,
        portfolio: Portfolio,
        backend: WorkerBackend,
        store: Any = None,
        attach_problems: bool | None = None,
        cost_model: CostModel | None = None,
    ) -> list[Job]:
        if attach_problems is None:
            attach_problems = getattr(backend, "requires_payload", True) and store is None
        return portfolio.build_jobs(
            cost_model=cost_model or self.cost_model,
            store=store,
            attach_problems=attach_problems,
        )

    # -- pricing -----------------------------------------------------------------
    def price(
        self,
        model: Any = None,
        option: Any = None,
        method: Any = None,
        *,
        model_params: Mapping[str, Any] | None = None,
        option_params: Mapping[str, Any] | None = None,
        method_params: Mapping[str, Any] | None = None,
        asset: str = "equity",
        label: str | None = None,
        problem: PricingProblem | None = None,
    ) -> PriceResult:
        """Price one option and return a :class:`PriceResult`.

        Accepts either registry names plus parameter mappings (the
        Premia-style spelling) or model/option/method *instances*; or a fully
        specified :class:`PricingProblem` via ``problem=``.  Single-option
        pricing always computes in-process -- the session's backend is for
        portfolio-scale work.
        """
        if problem is not None:
            if model is not None or option is not None or method is not None:
                raise ValuationError("pass either problem= or model/option/method, not both")
            return self.price_problem(problem)
        if model is None or option is None or method is None:
            raise ValuationError("price() needs model, option and method (or problem=)")
        names = [isinstance(part, str) for part in (model, option, method)]
        if all(names):
            built = PricingProblem(label=label)
            built.set_asset(asset)
            built.set_model(model, **dict(model_params or {}))
            built.set_option(option, **dict(option_params or {}))
            built.set_method(method, **dict(method_params or {}))
        elif not any(names):
            built = PricingProblem.from_instances(
                model, option, method, asset=asset, label=label
            )
        else:
            raise ValuationError(
                "price() takes either all names or all instances for "
                "model/option/method, not a mix"
            )
        return self.price_problem(built)

    def price_problem(self, problem: PricingProblem) -> PriceResult:
        """Compute a fully specified problem in-process.

        With a session cache, the problem digest is looked up first and a
        fresh result is stored back, so repeated ``price(...)`` calls over
        identical problems skip pricing entirely.
        """
        if self._cache is not None:
            digest = problem_digest(problem)
            cached = self._cache.get(digest)
            if cached is not None:
                problem._result = cached
                return PriceResult.from_pricing(
                    cached, label=problem.label, method=problem.method_name
                )
            result = problem.compute()
            self._cache.put(digest, result)
        else:
            result = problem.compute()
        return PriceResult.from_pricing(
            result, label=problem.label, method=problem.method_name
        )

    # -- campaign preparation ----------------------------------------------------
    def _prepare_plan(
        self,
        jobs: list[Job],
        problem_by_id: dict[int, PricingProblem],
        *,
        strategy_name: str,
        batch: bool,
        batch_group_size: int | None,
        run_cache: ResultCache | None,
        backend: WorkerBackend,
        portfolio: Portfolio | None,
        cost_model: CostModel | None = None,
        kernel: str = "loop",
        min_group_size: int | None = None,
    ) -> _RunPlan:
        """Apply the cache pass and batch coalescing to a prepared job list."""
        if not jobs:
            raise SchedulingError("cannot schedule an empty job list")
        executing = getattr(backend, "requires_payload", True)
        if batch and strategy_name == "nfs" and executing:
            raise ValuationError(
                "batch=True cannot be combined with the nfs strategy on an "
                "executing backend: coalesced batch jobs have no per-position "
                "problem files"
            )
        plan = _RunPlan(
            backend=backend,
            executing=executing,
            strategy_name=strategy_name,
            jobs=list(jobs),
            original_ids=[job.job_id for job in jobs],
            n_total=len(jobs),
            problem_by_id=problem_by_id,
            run_cache=run_cache,
            portfolio=portfolio,
        )

        # cache pass: positions already priced never reach the backend
        if run_cache is not None and executing:
            for job in plan.jobs:
                problem = problem_by_id.get(job.job_id)
                if problem is None:
                    continue
                digest = problem_digest(problem)
                plan.digests[job.job_id] = digest
                hit = run_cache.get(digest)
                if hit is not None:
                    entry = hit.as_dict()
                    entry["cache_hit"] = True
                    plan.cached_results[job.job_id] = entry
            if plan.cached_results:
                plan.jobs = [
                    job for job in plan.jobs if job.job_id not in plan.cached_results
                ]

        if batch:
            plan.jobs, plan.batch_members = self._coalesce_jobs(
                plan.jobs, problem_by_id, batch_group_size,
                cost_model or self.cost_model, kernel=kernel,
                min_group_size=min_group_size,
            )
        return plan

    def _make_core(
        self,
        plan: _RunPlan,
        scheduler: Scheduler,
        strategy: str | TransmissionStrategy | None,
        progress: Callable[[StreamProgress], None] | None = None,
        cancel: CancelToken | None = None,
    ) -> tuple[_StreamCore, JobSet]:
        """Build the streaming core and fresh futures for a prepared plan."""
        futures: dict[int, PricingFuture] = {}
        for job_id in plan.original_ids:
            problem = plan.problem_by_id.get(job_id)
            futures[job_id] = PricingFuture(
                job_id,
                label=getattr(problem, "label", None),
                method=getattr(problem, "method_name", None),
            )
        core = self._attach_campaign(
            plan, futures, runner=scheduler, strategy=strategy,
            progress=progress, cancel=cancel,
        )
        return core, JobSet([futures[job_id] for job_id in plan.original_ids])

    def _assemble_run_result(
        self,
        plan: _RunPlan,
        dispatched: list[Job],
        outcome: Any,
        cancelled_jobs: list[Job],
    ) -> RunResult:
        """Fold a drained stream back into a deterministic :class:`RunResult`."""
        if outcome is not None:
            if len(outcome.completed) + len(cancelled_jobs) != len(dispatched):
                raise SchedulingError(
                    f"stream collected {len(outcome.completed)} results for "
                    f"{len(dispatched)} dispatched jobs "
                    f"({len(cancelled_jobs)} cancelled)"
                )
            report = RunReport.from_outcome(outcome, dispatched, plan.strategy_name)
        else:
            # every position was answered from the cache: nothing to dispatch
            stats = plan.backend.finalize()
            report = RunReport(
                n_jobs=0,
                n_workers=stats.n_workers,
                strategy=plan.strategy_name,
                scheduler="cache",
                total_time=stats.total_time,
                master_busy=stats.master_busy,
                worker_busy=dict(stats.worker_busy),
                bytes_sent=stats.bytes_sent,
            )
        return self._postprocess_report(report, plan, cancelled_jobs)

    def _postprocess_report(
        self, report: RunReport, plan: _RunPlan, cancelled_jobs: Sequence[Job] = ()
    ) -> RunResult:
        """Expand batches, merge cache hits, mark cancellations, fix ordering."""
        if plan.batch_members:
            report = self._expand_batch_report(report, plan.batch_members)
        for job in cancelled_jobs:
            for member in plan.batch_members.get(job.job_id, (job.job_id,)):
                report.results[member] = None
                report.errors[member] = "cancelled before dispatch"
        if plan.cached_results:
            report.results.update(plan.cached_results)
            report.n_jobs = plan.n_total
        # deterministic submission ordering, whatever order results landed in
        report.results = {
            job_id: report.results[job_id]
            for job_id in plan.original_ids
            if job_id in report.results
        }
        report.errors = {
            job_id: report.errors[job_id]
            for job_id in plan.original_ids
            if job_id in report.errors
        }
        if plan.run_cache is not None and plan.executing:
            self._store_run_results(plan.run_cache, report, plan.digests)
        return RunResult(report=report, portfolio=plan.portfolio)

    def _source_plan(
        self,
        source: Portfolio | Sequence[Job],
        *,
        strategy_name: str,
        batch: bool,
        batch_group_size: int | None,
        run_cache: ResultCache | None,
        store: Any,
        attach_problems: bool | None,
        cost_model: CostModel | None,
        kernel: str = "loop",
        min_group_size: int | None = None,
    ) -> _RunPlan:
        """Build the campaign plan for a portfolio or prepared job list."""
        backend = self._acquire_backend(strategy_name, cache=run_cache)
        if isinstance(source, Portfolio):
            if batch and attach_problems is None and store is None:
                attach_problems = True  # batch execution ships the problems
            jobs = self._portfolio_jobs(source, backend, store, attach_problems, cost_model)
            portfolio: Portfolio | None = source
            problem_by_id = {
                job.job_id: position.problem for job, position in zip(jobs, source)
            }
        else:
            jobs = list(source)
            portfolio = None
            problem_by_id = {
                job.job_id: job.problem for job in jobs if job.problem is not None
            }
        return self._prepare_plan(
            jobs,
            problem_by_id,
            strategy_name=strategy_name,
            batch=batch,
            batch_group_size=batch_group_size,
            run_cache=run_cache,
            backend=backend,
            portfolio=portfolio,
            cost_model=cost_model,
            kernel=kernel,
            min_group_size=min_group_size,
        )

    # -- portfolio runs ----------------------------------------------------------
    def run(
        self,
        source: Portfolio | Sequence[Job],
        *,
        strategy: str | TransmissionStrategy | None = None,
        scheduler: Scheduler | None = None,
        store: Any = None,
        attach_problems: bool | None = None,
        config: RunConfig | None = None,
        batch: bool | None = None,
        batch_group_size: int | None = None,
        kernel: str | None = None,
        min_group_size: int | None = None,
        cache: bool | None = None,
        progress: Callable[[StreamProgress], None] | None = None,
        cancel: CancelToken | None = None,
    ) -> RunResult:
        """Value a portfolio (or a prepared job list) on the session backend.

        A thin synchronous wrapper over the streaming core: the whole
        campaign is streamed through the incremental master loop and drained
        to completion.  ``batch=True`` coalesces positions with equal
        simulation signatures into shared-path
        :class:`~repro.pricing.batch.ProblemBatch` jobs; prices are
        bit-identical to the unbatched run (on the simulated backend the
        batch-aware cost model prices one shared simulation per group).
        ``progress`` is called once per collected position; ``cancel`` (a
        :class:`CancelToken`) withdraws still-queued positions, which the
        result marks as ``"cancelled before dispatch"`` errors.
        """
        cost_model: CostModel | None = None
        scheduler_factory: Callable[[], Scheduler] | None = None
        retry: RetryPolicy | None = None
        if config is not None:
            strategy = strategy if strategy is not None else config.strategy
            if scheduler is None and config.scheduler is not None:
                scheduler_factory = config.scheduler_factory()
            retry = config.retry
            if attach_problems is None:
                attach_problems = config.attach_problems
            cost_model = config.cost_model
            if batch is None:
                batch = config.batch
            if batch_group_size is None:
                batch_group_size = config.batch_group_size
            if kernel is None:
                kernel = config.kernel
            if min_group_size is None:
                min_group_size = config.min_group_size
            if cache is None:
                cache = config.cache
            if progress is None:
                progress = config.progress
            if cancel is None:
                cancel = config.cancel
        batch = bool(batch)
        run_cache = self._resolve_run_cache(cache)
        strategy_name = self._strategy_name(strategy)

        def make_runner() -> Scheduler:
            if scheduler is not None:
                return scheduler
            if scheduler_factory is not None:
                return scheduler_factory()
            return self._new_scheduler()

        plan = self._source_plan(
            source,
            strategy_name=strategy_name,
            batch=batch,
            batch_group_size=batch_group_size,
            run_cache=run_cache,
            store=store,
            attach_problems=attach_problems,
            cost_model=cost_model,
            kernel=kernel or "loop",
            min_group_size=min_group_size,
        )
        core, jobs = self._make_core(plan, make_runner(), strategy, progress, cancel)
        if (
            retry is not None
            and retry.max_attempts > 1
            and self._backend_spec is not None
        ):
            return self._run_with_retry(
                plan, core, jobs, retry, make_runner,
                strategy=strategy, progress=progress, cancel=cancel,
            )
        return core.finish()

    # -- pool-loss retry layer ---------------------------------------------------
    def _run_with_retry(
        self,
        plan: _RunPlan,
        core: _StreamCore,
        jobs: JobSet,
        retry: RetryPolicy,
        make_runner: Callable[[], Scheduler],
        *,
        strategy: str | TransmissionStrategy | None,
        progress: Callable[[StreamProgress], None] | None,
        cancel: CancelToken | None,
    ) -> RunResult:
        """Drain the campaign, resubmitting pool losses per the retry policy.

        Each :class:`~repro.errors.WorkerLostError` consumes one attempt:
        results already collected are harvested from the resolved futures, a
        fresh backend is built from the session's :class:`BackendSpec` after
        the policy's backoff, and only the unresolved positions go back out.
        A backend that cannot even be rebuilt (workers still down at
        connect time) consumes an attempt too, so the backoff schedule also
        paces re-connection storms.  Results from every attempt merge into
        one submission-ordered report, bit-identical to a clean run.
        """
        settled: dict[int, tuple[dict[str, Any] | None, str | None]] = {}
        cur_plan, cur_core = plan, core
        cur_futures: dict[int, PricingFuture] = {f.job_id: f for f in jobs}
        retries = 0
        last_error: Exception | None = None
        for attempt in range(1, retry.max_attempts + 1):
            if cur_core is not None:
                try:
                    result = cur_core.finish()
                except WorkerLostError as exc:
                    last_error = exc
                    for job_id, future in cur_futures.items():
                        if future.done() and job_id not in settled:
                            settled[job_id] = (future._result, future._error)
                    try:
                        cur_plan.backend.finalize()
                    # repro-lint: disable=except-swallow -- best-effort teardown of a pool that WorkerLostError already proved dead; any error here is noise on the retry path
                    except Exception:
                        pass  # the pool is already gone; nothing to release
                else:
                    return self._merge_retry_result(plan, result, settled, retries)
            if attempt == retry.max_attempts:
                break
            delay = retry.delay(attempt)
            if delay > 0:
                time.sleep(delay)
            try:
                cur_plan = self._retry_plan(plan, settled)
                cur_core, retry_jobs = self._make_core(
                    cur_plan, make_runner(), strategy, progress, cancel
                )
                cur_futures = {f.job_id: f for f in retry_jobs}
                retries += 1
            except ClusterError as exc:
                # the replacement pool could not even be dialed: consume the
                # attempt and let the backoff schedule pace the next try
                last_error = exc
                cur_core = None
        assert last_error is not None
        raise last_error

    def _retry_plan(
        self,
        plan: _RunPlan,
        settled: Mapping[int, tuple[dict[str, Any] | None, str | None]],
    ) -> _RunPlan:
        """A fresh-backend plan covering only the still-unresolved positions."""
        unresolved = [jid for jid in plan.original_ids if jid not in settled]
        if not unresolved:
            raise SchedulingError(
                "worker pool lost but every position already resolved"
            )
        unresolved_set = set(unresolved)
        backend = self._acquire_backend(plan.strategy_name, cache=plan.run_cache)
        retry_jobs = [
            job
            for job in plan.jobs
            if any(
                member in unresolved_set
                for member in plan.batch_members.get(job.job_id, (job.job_id,))
            )
        ]
        return _RunPlan(
            backend=backend,
            executing=getattr(backend, "requires_payload", True),
            strategy_name=plan.strategy_name,
            jobs=retry_jobs,
            original_ids=unresolved,
            n_total=len(unresolved),
            problem_by_id=plan.problem_by_id,
            digests={
                jid: digest
                for jid, digest in plan.digests.items()
                if jid in unresolved_set
            },
            batch_members={
                job.job_id: plan.batch_members[job.job_id]
                for job in retry_jobs
                if job.job_id in plan.batch_members
            },
            run_cache=plan.run_cache,
            portfolio=None,
        )

    def _merge_retry_result(
        self,
        plan: _RunPlan,
        result: RunResult,
        settled: Mapping[int, tuple[dict[str, Any] | None, str | None]],
        retries: int,
    ) -> RunResult:
        """Fold earlier attempts' harvested results into the final report."""
        if retries == 0:
            return result
        report = result.report
        results = dict(report.results)
        errors = dict(report.errors)
        for job_id, (entry, error) in settled.items():
            if error is not None:
                errors.setdefault(job_id, error)
                results.setdefault(job_id, None)
            else:
                results.setdefault(job_id, entry)
        report.results = {
            jid: results[jid] for jid in plan.original_ids if jid in results
        }
        report.errors = {
            jid: errors[jid] for jid in plan.original_ids if jid in errors
        }
        report.n_jobs = plan.n_total
        report.extra["retries"] = retries
        return RunResult(report=report, portfolio=plan.portfolio)

    def stream(
        self,
        source: Portfolio | Sequence[Job],
        *,
        strategy: str | TransmissionStrategy | None = None,
        store: Any = None,
        attach_problems: bool | None = None,
        config: RunConfig | None = None,
        batch: bool | None = None,
        batch_group_size: int | None = None,
        kernel: str | None = None,
        min_group_size: int | None = None,
        cache: bool | None = None,
        progress: Callable[[StreamProgress], None] | None = None,
        cancel: CancelToken | None = None,
    ) -> StreamingRun:
        """Value a portfolio incrementally, yielding results as they land.

        Returns a :class:`~repro.api.futures.StreamingRun`: iterate it for
        one :class:`PriceResult` per position **in completion order** (the
        paper's master collecting from any source), then call
        :meth:`~repro.api.futures.StreamingRun.result` for the deterministic
        submission-ordered :class:`RunResult` -- bit-identical to what the
        synchronous :meth:`run` returns for the same inputs.  The underlying
        :class:`~repro.api.futures.JobSet` is reachable as ``.jobs`` for
        ``as_completed()`` / ``wait()`` access to individual futures.
        """
        if config is not None:
            strategy = strategy if strategy is not None else config.strategy
            if attach_problems is None:
                attach_problems = config.attach_problems
            if batch is None:
                batch = config.batch
            if batch_group_size is None:
                batch_group_size = config.batch_group_size
            if kernel is None:
                kernel = config.kernel
            if min_group_size is None:
                min_group_size = config.min_group_size
            if cache is None:
                cache = config.cache
            if progress is None:
                progress = config.progress
            if cancel is None:
                cancel = config.cancel
        runner = self._new_scheduler()
        plan = self._source_plan(
            source,
            strategy_name=self._strategy_name(strategy),
            batch=bool(batch),
            batch_group_size=batch_group_size,
            run_cache=self._resolve_run_cache(cache),
            store=store,
            attach_problems=attach_problems,
            cost_model=config.cost_model if config is not None else None,
            kernel=kernel or "loop",
            min_group_size=min_group_size,
        )
        core, jobs = self._make_core(plan, runner, strategy, progress, cancel)
        return StreamingRun(core, jobs)

    # -- risk campaigns ----------------------------------------------------------
    def _run_scenario_grid(
        self,
        name: str,
        problems: Sequence[PricingProblem],
        scenarios: Sequence[Any],
        *,
        on_missing: str,
        kernel: str,
        config: RunConfig | None,
    ) -> list[dict[str, float]]:
        """Price (problems x scenarios) as one batched campaign on the backend.

        The expanded cells are wrapped into a synthetic portfolio and run with
        ``batch=True, min_group_size=1``: cells sharing a simulation signature
        coalesce into :class:`~repro.pricing.batch.ProblemBatch` super-jobs
        (which ride the shm transport on local backends and the wire protocol
        on remote ones), and the stacked kernel prices each super-job's
        members against one shared path set.  Returns one ``{scenario name:
        price}`` mapping per input problem, exactly like
        :func:`repro.pricing.scenarios.price_scenarios`.
        """
        from repro.core.portfolio import Position
        from repro.pricing.scenarios import collect_cell_prices, expand_scenarios

        expanded, cells = expand_scenarios(problems, scenarios, on_missing=on_missing)
        grid_positions = [
            Position(
                problem=problem,
                quantity=1.0,
                category="scenario",
                label=problem.label or f"cell{index:06d}",
            )
            for index, problem in enumerate(expanded)
        ]
        grid = Portfolio(name=f"{name}_scenarios", positions=grid_positions)
        result = self.run(
            grid, config=config, batch=True,
            kernel=kernel, min_group_size=1,
        )
        prices = result.prices()
        missing = [index for index in range(len(expanded)) if index not in prices]
        if missing:
            details = {i: result.report.errors.get(i) for i in missing[:5]}
            raise ValuationError(
                f"{len(missing)} scenario cells failed to price: {details}"
            )
        flat = [prices[index] for index in range(len(expanded))]
        return collect_cell_prices(flat, cells, scenarios, len(problems))

    def greeks(
        self,
        portfolio: Portfolio,
        *,
        spot_bump: float = 0.01,
        vol_bump: float = 0.01,
        rate_bump: float = 0.0001,
        theta_bump: float = 1.0 / 365.0,
        kernel: str = "stacked",
        config: RunConfig | None = None,
    ) -> "Any":
        """Full finite-difference Greek ladder of a portfolio, batched.

        Expands every position against one
        :func:`~repro.pricing.scenarios.greek_ladder`, runs the cells as a
        single scenario campaign on the session backend and assembles a
        :class:`~repro.core.risk.PortfolioRiskReport`.  Numbers are
        bit-identical to :func:`repro.core.risk.portfolio_greeks` on the
        same book; the campaign parallelises over workers like any other
        batched run.
        """
        from repro.core.risk import _aggregate_greeks
        from repro.pricing.scenarios import (
            VOL_PARAM,
            greek_ladder,
            greeks_from_prices,
        )

        positions = portfolio.positions
        if not positions:
            raise ValuationError("cannot compute Greeks of an empty portfolio")
        ladder = greek_ladder(
            spot_bump=spot_bump, vol_bump=vol_bump, rate_bump=rate_bump,
            theta_bump=theta_bump, vol_param=VOL_PARAM,
        )
        grids = self._run_scenario_grid(
            portfolio.name, [position.problem for position in positions], ladder,
            on_missing="skip", kernel=kernel, config=config,
        )
        pairs = [
            (
                position,
                greeks_from_prices(
                    position.problem.model, position.problem.product, grid,
                    spot_bump=spot_bump, vol_bump=vol_bump,
                    rate_bump=rate_bump, theta_bump=theta_bump,
                ),
            )
            for position, grid in zip(positions, grids)
        ]
        return _aggregate_greeks(pairs)

    def risk(
        self,
        portfolio: Portfolio,
        *,
        spot_returns: Sequence[float] | None = None,
        param: str | None = None,
        bumps: Sequence[float] | None = None,
        relative: bool = True,
        confidence: float = 0.99,
        kernel: str = "stacked",
        config: RunConfig | None = None,
    ) -> dict[Any, Any]:
        """Run a risk campaign (historical VaR or a sensitivity sweep), batched.

        ``spot_returns`` runs a historical VaR campaign (same summary dict as
        :func:`repro.core.risk.historical_var`); ``param`` + ``bumps`` runs a
        sensitivity sweep (same ``{bump: value}`` mapping as
        :func:`repro.core.risk.sensitivity_sweep`).  Either way the whole
        (positions x scenarios) grid prices as one batched campaign on the
        session backend, with positions lacking the bumped parameter valued
        unbumped in every scenario.
        """
        positions = portfolio.positions
        if not positions:
            raise ValuationError("cannot run a risk campaign on an empty portfolio")
        if (spot_returns is None) == (param is None or bumps is None):
            raise ValuationError(
                "risk() needs either spot_returns=... (historical VaR) or "
                "param=... and bumps=... (sensitivity sweep)"
            )
        problems = [position.problem for position in positions]

        if spot_returns is not None:
            from repro.core.risk import _var_summary
            from repro.pricing.scenarios import historical_scenarios

            if not 0.5 < confidence < 1.0:
                raise ValuationError("confidence must lie in (0.5, 1)")
            returns = [float(r) for r in spot_returns]
            if not returns:
                raise ValuationError("need at least one historical return")
            scenarios = historical_scenarios(returns)
            grids = self._run_scenario_grid(
                portfolio.name, problems, scenarios,
                on_missing="base", kernel=kernel, config=config,
            )
            base_value = sum(
                position.quantity * grid["base"]
                for position, grid in zip(positions, grids)
            )
            import numpy as np

            scenario_values = np.asarray([
                sum(
                    position.quantity * grid[scenario.name]
                    for position, grid in zip(positions, grids)
                )
                for scenario in scenarios[1:]
            ])
            return _var_summary(float(base_value), scenario_values, confidence)

        from repro.pricing.scenarios import shock_scenarios

        assert param is not None and bumps is not None
        scenarios = shock_scenarios(bumps, param=param, relative=relative)
        if not scenarios:
            return {}
        grids = self._run_scenario_grid(
            portfolio.name, problems, scenarios,
            on_missing="base", kernel=kernel, config=config,
        )
        return {
            float(bump): sum(
                position.quantity * grid[scenario.name]
                for position, grid in zip(positions, grids)
            )
            for scenario, bump in zip(scenarios, bumps)
        }

    # -- batch & cache helpers ---------------------------------------------------
    def _resolve_run_cache(self, cache: bool | None) -> ResultCache | None:
        if cache is False:
            return None
        if cache is True and self._cache is None:
            raise ValuationError(
                "cache=True was requested but the session has no result cache; "
                "construct the session with cache=True / a directory / a ResultCache"
            )
        return self._cache

    def _coalesce_jobs(
        self,
        jobs: list[Job],
        problem_by_id: Mapping[int, PricingProblem],
        batch_group_size: int | None,
        cost_model: CostModel | None = None,
        kernel: str = "loop",
        min_group_size: int | None = None,
    ) -> tuple[list[Job], dict[int, tuple[int, ...]]]:
        """Merge shared-simulation jobs into :class:`ProblemBatch` super-jobs."""
        model = cost_model or self.cost_model
        plan = plan_batches(
            [problem_by_id.get(job.job_id) for job in jobs],
            min_group_size=min_group_size if min_group_size is not None else 2,
            max_group_size=batch_group_size,
        )
        group_by_first: dict[int, Any] = {g.indices[0]: g for g in plan.groups}
        grouped = {index for group in plan.groups for index in group.indices}
        out: list[Job] = []
        members_map: dict[int, tuple[int, ...]] = {}
        for index, job in enumerate(jobs):
            group = group_by_first.get(index)
            if group is not None:
                member_jobs = [jobs[i] for i in group.indices]
                problems = [problem_by_id[j.job_id] for j in member_jobs]
                bundle = ProblemBatch(
                    problems, keys=[j.job_id for j in member_jobs], kernel=kernel
                )
                super_job = Job(
                    job_id=job.job_id,
                    path=f"/virtual/batch/{batch_digest(bundle)[:16]}.pb",
                    file_size=sum(j.file_size for j in member_jobs),
                    # one shared simulation plus cheap per-member payoff sweeps
                    compute_cost=model.estimate_batch_jobs(
                        [j.compute_cost for j in member_jobs]
                    ),
                    category=job.category,
                    problem=bundle,
                )
                out.append(super_job)
                members_map[job.job_id] = tuple(j.job_id for j in member_jobs)
            elif index not in grouped:
                out.append(job)
        return out, members_map

    def _expand_batch_report(
        self, report: RunReport, batch_members: Mapping[int, tuple[int, ...]]
    ) -> RunReport:
        """Rewrite a report over super-jobs into per-position results."""
        results: dict[int, dict[str, Any] | None] = {}
        member_errors: dict[int, str] = {}
        for job_id, result in report.results.items():
            members = batch_members.get(job_id)
            if members is None:
                results[job_id] = result
            elif isinstance(result, dict) and result.get("batch"):
                for key, entry in result["results"].items():
                    if isinstance(entry, dict) and "error" in entry:
                        results[int(key)] = None
                        member_errors[int(key)] = entry["error"]
                    else:
                        results[int(key)] = entry
            else:  # failed (or payload-less) batch job: propagate to members
                for member in members:
                    results[member] = None
        errors: dict[int, str] = dict(member_errors)
        for job_id, message in report.errors.items():
            members = batch_members.get(job_id)
            if members is None:
                errors[job_id] = message
            else:
                for member in members:
                    errors[member] = message
        report.results = results
        report.errors = errors
        report.n_jobs += sum(len(members) - 1 for members in batch_members.values())
        return report

    @staticmethod
    def _store_run_results(
        run_cache: ResultCache, report: RunReport, digests: Mapping[int, str]
    ) -> None:
        for job_id, result in report.results.items():
            if (
                result is None
                or result.get("cache_hit")
                or result.get("price") is None
                or job_id in report.errors
                or job_id not in digests
            ):
                continue
            run_cache.put(digests[job_id], result)

    # -- futures-based submission ------------------------------------------------
    def submit_many(
        self,
        problems: Iterable[PricingProblem],
        *,
        category: str = "submitted",
    ) -> JobSet:
        """Queue problems for valuation; returns a :class:`JobSet` of futures.

        Nothing executes until a future is read (or :meth:`gather` runs):
        the first ``result()`` starts the campaign and pumps the master loop
        **only until that job answers** -- never a full-batch gather.
        Several ``submit_many`` calls before the first read coalesce into a
        single master/worker campaign.

        Duplicate submissions of the same problem (equal
        :func:`~repro.pricing.cache.problem_digest`) are deduplicated: the
        same :class:`PricingFuture` object is returned for every duplicate
        and the problem is priced once.
        """
        futures: list[PricingFuture] = []
        for problem in problems:
            if not isinstance(problem, PricingProblem):
                raise ValuationError(
                    f"submit_many expects PricingProblem items, got {type(problem).__name__}"
                )
            digest: str | None
            try:
                digest = problem_digest(problem)
            except Exception:
                digest = None  # incomplete problems fail later, at job build
            existing = self._pending_by_digest.get(digest) if digest else None
            if existing is not None and not existing.done():
                futures.append(existing)
                continue
            future = PricingFuture(
                self._next_job_id,
                label=problem.label,
                method=getattr(problem, "method_name", None),
                starter=self._start_pending_campaign,
            )
            self._next_job_id += 1
            self._pending.append((problem, future, category))
            if digest is not None:
                self._pending_by_digest[digest] = future
            futures.append(future)
        return JobSet(futures)

    @property
    def n_pending(self) -> int:
        """Number of submitted problems whose campaign has not started yet."""
        return len(self._pending)

    def _start_pending_campaign(self) -> None:
        """Turn the pending submissions into one campaign (lazy)."""
        if not self._pending:
            return
        # keep the queue intact until the campaign launches: a failure while
        # building jobs leaves the futures pending, with the real exception
        # propagating, instead of stranding them unresolved
        pending = [
            (problem, future, category)
            for problem, future, category in self._pending
            if not future.cancelled()
        ]
        if not pending:
            # everything was cancelled before anything executed
            self._pending = []
            self._pending_by_digest = {}
            return
        jobs = [
            Job(
                job_id=future.job_id,
                path=f"/virtual/session/{future.job_id:06d}.pb",
                file_size=serialize(problem).nbytes + 4,
                compute_cost=self.cost_model.estimate(problem),
                category=category,
                problem=problem,
            )
            for problem, future, category in pending
        ]
        strategy_name = self._strategy_name(None)
        runner = self._new_scheduler()
        backend = self._acquire_backend(strategy_name, cache=self._cache)
        problem_by_id = {future.job_id: problem for problem, future, _ in pending}
        plan = self._prepare_plan(
            jobs,
            problem_by_id,
            strategy_name=strategy_name,
            batch=False,
            batch_group_size=None,
            run_cache=self._cache,
            backend=backend,
            portfolio=None,
        )
        futures = {future.job_id: future for _, future, _ in pending}
        core = self._attach_campaign(plan, futures, runner=runner)
        self._pending = []
        self._pending_by_digest = {}
        self._active_cores = [
            live for live in self._active_cores if not live.finished
        ]
        self._active_cores.append(core)

    def _attach_campaign(
        self,
        plan: _RunPlan,
        futures: dict[int, PricingFuture],
        runner: Scheduler | None = None,
        strategy: str | TransmissionStrategy | None = None,
        progress: Callable[[StreamProgress], None] | None = None,
        cancel: CancelToken | None = None,
    ) -> _StreamCore:
        """Wire futures onto a prepared plan and open the schedule stream."""
        runner = runner or self._new_scheduler()
        # cache hits resolve immediately -- they never enter the stream
        for job_id, entry in plan.cached_results.items():
            futures[job_id]._resolve(entry, None)
        chosen = strategy if strategy is not None else plan.strategy_name
        strategy_obj = get_strategy(chosen) if isinstance(chosen, str) else chosen
        dispatched = list(plan.jobs)
        stream = (
            runner.stream(dispatched, plan.backend, strategy_obj)
            if dispatched
            else None
        )

        def _finalize(outcome: Any, cancelled_jobs: list[Job]) -> RunResult:
            return self._assemble_run_result(plan, dispatched, outcome, cancelled_jobs)

        core = _StreamCore(
            stream,
            futures,
            batch_members=plan.batch_members,
            total=plan.n_total,
            progress=progress,
            cancel=cancel,
            finalize_cb=_finalize,
        )
        core.attach(futures)
        if stream is None:
            # nothing to dispatch (every position answered from the cache):
            # finalize the backend right away instead of waiting for a
            # result()/gather() that may never come
            core.finish()
        return core

    def gather(self) -> RunResult:
        """Drain every submitted problem and return the campaign's result.

        Starts the pending campaign if none is live, then drains the active
        streams to completion.  With several interleaved campaigns, the
        result of the most recent one is returned (every campaign is still
        drained, so all futures resolve).
        """
        if not self._pending and not self._active_cores:
            raise ValuationError("no pending submissions to gather")
        self._start_pending_campaign()
        if not self._active_cores:
            raise ValuationError(
                "every pending submission was cancelled before gathering"
            )
        result: RunResult | None = None
        for core in self._active_cores:
            result = core.finish()
        self._active_cores = []
        assert result is not None
        return result

    # -- sweeps and comparisons --------------------------------------------------
    def sweep(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int] | None = None,
        *,
        strategy: str | None = None,
        share_nfs_cache: bool | None = None,
        label: str | None = None,
        comm: CommunicationModel | None = None,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        config: SweepConfig | None = None,
        batch: bool | None = None,
        batch_group_size: int | None = None,
    ) -> SweepResult:
        """Simulate the same workload over several cluster sizes.

        Always runs on the simulated cluster (that is the point of a sweep),
        whatever the session backend is.  ``share_nfs_cache=True`` (default)
        reuses one :class:`CommunicationModel` across the sweep, reproducing
        the paper's warm-NFS-cache artefact; ``False`` gives every CPU count
        an independent cold run built by ``comm_factory`` when provided, or
        by :meth:`CommunicationModel.cold_copy` otherwise -- either way any
        customised NFS settings are preserved.

        ``batch=True`` coalesces shared-simulation families with the
        batch-aware cost model (one shared path simulation plus per-member
        payoff sweeps), regenerating the paper's tables "with batching".
        """
        if config is not None:
            cpu_counts = cpu_counts if cpu_counts is not None else config.cpu_counts
            strategy = strategy or config.strategy
            if share_nfs_cache is None:
                share_nfs_cache = config.share_nfs_cache
            label = label or config.label
            if batch is None:
                batch = config.batch
            if batch_group_size is None:
                batch_group_size = config.batch_group_size
        if share_nfs_cache is None:
            share_nfs_cache = True
        if not cpu_counts:
            raise SchedulingError("cpu_counts must not be empty")
        strategy_name = self._strategy_name(strategy)
        jobs = self._sweep_jobs(source, batch=bool(batch), batch_group_size=batch_group_size)
        comm_factory = comm_factory or self.comm_factory
        base_comm = comm if comm is not None else self.comm
        if base_comm is None:
            base_comm = comm_factory() if comm_factory else CommunicationModel()
        times: dict[int, float] = {}
        for n_cpus in cpu_counts:
            if share_nfs_cache:
                run_comm = base_comm
            elif comm_factory is not None:
                run_comm = comm_factory()
            else:
                run_comm = base_comm.cold_copy()
            backend = self._simulated_backend(n_cpus, strategy_name, run_comm)
            report = self._execute_jobs(jobs, backend, strategy_name)
            times[n_cpus] = report.total_time
        from repro.core.speedup import SpeedupTable

        return SweepResult(SpeedupTable.from_times(label or strategy_name, times))

    def compare(
        self,
        source: Portfolio | Sequence[Job],
        cpu_counts: Sequence[int],
        *,
        strategies: Sequence[str] = STRATEGY_NAMES,
        share_nfs_cache: bool = True,
        comm_factory: Callable[[], CommunicationModel] | None = None,
        batch: bool = False,
        batch_group_size: int | None = None,
    ) -> ComparisonResult:
        """Run the CPU-count sweep for several transmission strategies.

        Reproduces the full layout of the paper's Tables II and III.  Each
        strategy gets its own communication model (its own NFS cache
        history), built by ``comm_factory`` when provided.  ``batch=True``
        regenerates the tables with shared-simulation batching.
        """
        comm_factory = comm_factory or self.comm_factory
        jobs = self._sweep_jobs(source, batch=batch, batch_group_size=batch_group_size)
        tables: dict[str, Any] = {}
        for strategy in strategies:
            comm = comm_factory() if comm_factory else CommunicationModel()
            tables[strategy] = self.sweep(
                jobs,
                cpu_counts,
                strategy=strategy,
                share_nfs_cache=share_nfs_cache,
                comm=comm,
                comm_factory=comm_factory,
                label=strategy,
            ).table
        return ComparisonResult(tables)

    def _sweep_jobs(
        self,
        source: Portfolio | Sequence[Job],
        batch: bool = False,
        batch_group_size: int | None = None,
    ) -> list[Job]:
        if isinstance(source, Portfolio):
            jobs = source.build_jobs(cost_model=self.cost_model)
            problem_by_id = {
                job.job_id: position.problem for job, position in zip(jobs, source)
            }
        else:
            jobs = list(source)
            problem_by_id = {
                job.job_id: job.problem for job in jobs if job.problem is not None
            }
        if batch:
            jobs, _members = self._coalesce_jobs(jobs, problem_by_id, batch_group_size)
        return jobs

    def _simulated_backend(
        self, n_cpus: int, strategy_name: str, comm: CommunicationModel
    ) -> WorkerBackend:
        options: dict[str, Any] = {}
        if self._backend_spec is not None and self._backend_spec.name == "simulated":
            options.update(dict(self._backend_spec.options))
        options.pop("comm", None)
        return create_backend(
            "simulated",
            n_workers=n_cpus - 1,
            strategy=strategy_name,
            comm=comm,
            **options,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        backend = (
            self._backend_spec.name
            if self._backend_spec is not None
            else type(self._backend_instance).__name__
        )
        return (
            f"ValuationSession(backend={backend!r}, "
            f"strategy={self._strategy_name(None)!r}, pending={self.n_pending})"
        )
