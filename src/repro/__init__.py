"""repro -- a risk-management benchmark for testing parallel architectures.

This package is a from-scratch Python reproduction of the system described in
*"Using Premia and Nsp for Constructing a Risk Management Benchmark for
Testing Parallel Architecture"* (Chancelier, Lapeyre, Lelong).  It provides:

``repro.pricing``
    A self-contained option pricing library (the *Premia* substitute):
    models, products and numerical methods (closed form, PDE, trees,
    Monte-Carlo, Longstaff-Schwartz, Fourier/COS), plus the
    :class:`~repro.pricing.engine.PricingProblem` abstraction mirroring
    Premia's ``PremiaModel`` objects.

``repro.serial``
    Architecture-independent serialization of pricing problems (the *Nsp*
    ``Serial``/XDR substitute) including ``save``/``load``/``sload`` and
    compressed serial buffers.

``repro.cluster``
    An MPI-like message passing API with several execution backends: a
    sequential backend, a real ``multiprocessing`` backend, and a
    discrete-event *simulated cluster* (nodes, Gigabit-Ethernet-like network,
    NFS server with cache) used to reproduce the paper's speedup tables at
    laptop scale.

``repro.core``
    The paper's contribution: portfolio construction, the three
    problem-transmission strategies (*full load*, *NFS*, *serialized load*),
    the Robin-Hood master/worker scheduler and its extensions, the speedup
    harness, the non-regression workload and portfolio risk aggregation.

Quickstart
----------

>>> from repro.pricing import PricingProblem
>>> p = PricingProblem()
>>> p.set_asset("equity")
>>> p.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
>>> p.set_option("CallEuro", strike=100.0, maturity=1.0)
>>> p.set_method("CF_Call")
>>> p.compute()
>>> round(p.get_method_results().price, 4)
10.4506
"""

from repro._version import __version__

__all__ = ["__version__"]
