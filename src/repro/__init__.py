"""repro -- a risk-management benchmark for testing parallel architectures.

This package is a from-scratch Python reproduction of the system described in
*"Using Premia and Nsp for Constructing a Risk Management Benchmark for
Testing Parallel Architecture"* (Chancelier, Lapeyre, Lelong).  It provides:

``repro.api``
    The **unified entry point**: the :class:`~repro.api.session.ValuationSession`
    facade plus typed configuration (``BackendSpec``, ``RunConfig``,
    ``SweepConfig``) and a normalized result hierarchy, unifying pricing,
    portfolio runs, batch submission and cluster sweeps the way Premia's
    ``PremiaModel`` object unified pricing.

``repro.pricing``
    A self-contained option pricing library (the *Premia* substitute):
    models, products and numerical methods (closed form, PDE, trees,
    Monte-Carlo, Longstaff-Schwartz, Fourier/COS), plus the
    :class:`~repro.pricing.engine.PricingProblem` abstraction mirroring
    Premia's ``PremiaModel`` objects.

``repro.serial``
    Architecture-independent serialization of pricing problems (the *Nsp*
    ``Serial``/XDR substitute) including ``save``/``load``/``sload`` and
    compressed serial buffers.

``repro.cluster``
    An MPI-like message passing API with several execution backends,
    resolvable by registered name (:func:`~repro.cluster.backends.list_backends`
    enumerates them; the built-ins run in-process, on local worker
    processes, on remote ``repro-worker`` TCP servers, and on a
    discrete-event *simulated cluster* -- nodes, Gigabit-Ethernet-like
    network, NFS server with cache -- used to reproduce the paper's speedup
    tables at laptop scale).

``repro.core``
    The paper's contribution: portfolio construction, the three
    problem-transmission strategies (*full load*, *NFS*, *serialized load*),
    the Robin-Hood master/worker scheduler and its extensions, the speedup
    harness, the non-regression workload and portfolio risk aggregation.

Quickstart
----------

One session object drives the whole workflow:

>>> import repro
>>> session = repro.ValuationSession(backend="simulated",
...                                  strategy="serialized_load")
>>> result = session.price(
...     model="BlackScholes1D", option="CallEuro", method="CF_Call",
...     model_params={"spot": 100.0, "rate": 0.05, "volatility": 0.2},
...     option_params={"strike": 100.0, "maturity": 1.0})
>>> round(result.price, 4)
10.4506
>>> portfolio = repro.build_toy_portfolio(n_options=100)
>>> sweep = session.sweep(portfolio, cpu_counts=[2, 4, 8])
>>> sweep.cpu_counts()
[2, 4, 8]

The Premia-style :class:`~repro.pricing.engine.PricingProblem` spelling from
the paper's scripts still works unchanged:

>>> p = repro.PricingProblem()
>>> p.set_asset("equity")
>>> p.set_model("BlackScholes1D", spot=100.0, rate=0.05, volatility=0.2)
>>> p.set_option("CallEuro", strike=100.0, maturity=1.0)
>>> p.set_method("CF_Call")
>>> _ = p.compute()
>>> round(p.get_method_results().price, 4)
10.4506

Every name below is re-exported lazily: ``import repro`` stays fast (only the
version is loaded eagerly) and subpackages are imported on first attribute
access.
"""

from repro._version import __version__

#: top-level name -> defining module, resolved lazily by ``__getattr__``
_LAZY_EXPORTS = {
    # unified API (repro.api)
    "ValuationSession": "repro.api",
    "JobHandle": "repro.api",
    "PricingFuture": "repro.api",
    "JobSet": "repro.api",
    "StreamingRun": "repro.api",
    "StreamProgress": "repro.api",
    "CancelToken": "repro.api",
    "BackendSpec": "repro.api",
    "RunConfig": "repro.api",
    "SweepConfig": "repro.api",
    "ValuationResult": "repro.api",
    "PriceResult": "repro.api",
    "RunResult": "repro.api",
    "SweepResult": "repro.api",
    "ComparisonResult": "repro.api",
    # pricing (repro.pricing)
    "PricingProblem": "repro.pricing",
    "premia_create": "repro.pricing",
    "ResultCache": "repro.pricing",
    "problem_digest": "repro.pricing",
    "ProblemBatch": "repro.pricing",
    "plan_batches": "repro.pricing",
    "price_problems": "repro.pricing",
    "list_models": "repro.pricing",
    "list_products": "repro.pricing",
    "list_methods": "repro.pricing",
    "compatible_methods": "repro.pricing",
    # serialization (repro.serial)
    "save": "repro.serial",
    "load": "repro.serial",
    "sload": "repro.serial",
    "serialize": "repro.serial",
    "unserialize": "repro.serial",
    # cluster backends (repro.cluster.backends)
    "create_backend": "repro.cluster.backends",
    "list_backends": "repro.cluster.backends",
    "register_backend": "repro.cluster.backends",
    "SequentialBackend": "repro.cluster.backends",
    "MultiprocessingBackend": "repro.cluster.backends",
    # remote worker pool (repro.cluster.worker)
    "spawn_local_workers": "repro.cluster.worker",
    "LocalWorkerPool": "repro.cluster.worker",
    # benchmark core (repro.core)
    "Portfolio": "repro.core",
    "Position": "repro.core",
    "build_toy_portfolio": "repro.core",
    "build_realistic_portfolio": "repro.core",
    "build_regression_portfolio": "repro.core",
    "RunReport": "repro.core",
    "run_jobs": "repro.core",
    "run_portfolio": "repro.core",
    "sweep_cpu_counts": "repro.core",
    "compare_strategies": "repro.core",
    "SpeedupTable": "repro.core",
    "format_comparison_table": "repro.core",
    "portfolio_value": "repro.core",
    # subpackages exposed as attributes
    "errors": "repro",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    """Resolve re-exported names on first access (PEP 562 lazy imports)."""
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    if module_name == "repro":
        value = importlib.import_module(f"repro.{name}")
    else:
        value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
