"""Content-addressed result caching for pricing problems.

A pricing problem is fully described by the plain parameter dictionaries of
its ``(model, option, method)`` triple -- exactly what the :mod:`repro.serial`
layer ships across the cluster.  This module derives a **stable SHA-256
digest** from that description (:func:`problem_digest`) and keeps computed
:class:`~repro.pricing.methods.base.PricingResult` objects in a
digest-keyed store (:class:`ResultCache`):

* an in-memory LRU (bounded by ``max_entries``), and
* an optional on-disk JSON store (one ``<digest>.json`` file per result),
  shared between processes -- the multiprocessing workers open the same
  directory, so a warm sweep skips pricing entirely.

Digests are *content* addresses: two problems built independently, or round
tripped through ``to_params()`` / ``from_params()`` / the XDR serializer,
produce the same digest.  Methods whose results depend on anything outside
``to_params()`` (wall-clock, global state) must not be cached; everything in
the library keys its randomness on an explicit ``seed`` parameter, so results
are deterministic functions of the digest.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import PricingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pricing.engine import PricingProblem
    from repro.pricing.methods.base import PricingResult

__all__ = [
    "stable_digest",
    "model_digest",
    "problem_digest",
    "CacheStats",
    "ResultCache",
]


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types with a deterministic layout."""
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_canonical(item) for item in value.tolist()]
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        # repr round-trips doubles exactly, so 0.1 rebuilt from params
        # hashes identically to the original 0.1
        return float(value)
    if value is None or isinstance(value, str):
        return value
    raise PricingError(
        f"cannot build a stable digest from a {type(value).__name__} value"
    )


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of ``value``.

    Accepts anything made of dicts with sortable keys, lists/tuples, NumPy
    arrays/scalars, numbers, strings and ``None``.  The digest is stable
    across processes, sessions and ``to_params`` round-trips.
    """
    payload = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def model_digest(model: Any) -> str:
    """Stable digest of a model (name + parameters)."""
    return stable_digest({"model": model.model_name, "params": model.to_params()})


def problem_digest(problem: "PricingProblem") -> str:
    """Stable digest of a fully specified pricing problem (memoized).

    Keyed on the ``(model, option, method)`` names and ``to_params()``
    dictionaries -- the same description the serializer writes to problem
    files, so a problem loaded from disk digests identically to the one that
    produced the file.  The model leg reuses the memoized
    :meth:`~repro.pricing.models.base.Model.param_digest` (models carry the
    bulk of the parameters -- e.g. a 40x40 correlation matrix), and the full
    digest is cached on the problem until one of its legs is replaced.
    """
    cached = problem.__dict__.get("_digest_cache")
    if cached is not None:
        return cached
    model, product, method = problem.model, problem.product, problem.method
    digest = stable_digest(
        {
            "model": model.param_digest(),
            "option": {"name": product.option_name, "params": product.to_params()},
            "method": {"name": method.method_name, "params": method.to_params()},
        }
    )
    problem.__dict__["_digest_cache"] = digest
    return digest


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Digest-keyed store of pricing results (in-memory LRU + optional disk).

    Parameters
    ----------
    max_entries:
        Bound on the in-memory LRU; the least recently used entry is evicted
        when the bound is exceeded.  The disk store (when configured) is not
        bounded -- one small JSON file per result.
    directory:
        Optional directory for the on-disk JSON store.  Results evicted from
        memory remain readable from disk; several processes may share one
        directory (files are written atomically via ``os.replace`` of a
        per-process temporary, so readers only ever see complete entries).
        A corrupt / truncated entry file -- e.g. left behind by a crashed
        writer -- is treated as a miss: it is deleted (the next ``put``
        rewrites it) and counted in :attr:`CacheStats.corrupt`.

    Instances are thread-safe: a long-lived daemon may share one cache
    between concurrent request handlers.
    """

    max_entries: int = 4096
    directory: str | Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise PricingError("ResultCache.max_entries must be >= 1")
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.RLock()
        if self.directory is not None:
            self.directory = Path(self.directory)
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- core mapping ------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries or self._disk_path(digest) is not None

    def get(self, digest: str) -> "PricingResult | None":
        """Return the cached result for ``digest`` or ``None`` on a miss."""
        from repro.pricing.methods.base import PricingResult

        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                entry = self._read_disk(digest)
                if entry is not None:
                    self.stats.disk_hits += 1
                    self._remember(digest, entry, write_disk=False)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.stats.hits += 1
            return PricingResult.from_dict(entry)

    def put(self, digest: str, result: "PricingResult | dict[str, Any]") -> None:
        """Store ``result`` (a :class:`PricingResult` or its ``as_dict()``)."""
        entry = dict(result) if isinstance(result, dict) else result.as_dict()
        entry.pop("cache_hit", None)  # transport marker, not part of the result
        if entry.get("price") is None:
            raise PricingError("refusing to cache a result without a price")
        with self._lock:
            self.stats.puts += 1
            self._remember(digest, entry, write_disk=True)

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left in place)."""
        with self._lock:
            self._entries.clear()

    # -- problem-level convenience -------------------------------------------------
    def get_problem(self, problem: "PricingProblem") -> "PricingResult | None":
        """Cache lookup keyed on :func:`problem_digest`."""
        return self.get(problem_digest(problem))

    def put_problem(self, problem: "PricingProblem", result: "PricingResult") -> None:
        self.put(problem_digest(problem), result)

    # -- internals ----------------------------------------------------------------
    def _remember(self, digest: str, entry: dict[str, Any], write_disk: bool) -> None:
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        if write_disk and self.directory is not None:
            self._write_disk(digest, entry)

    def _disk_file(self, digest: str) -> Path | None:
        if self.directory is None:
            return None
        return Path(self.directory) / f"{digest}.json"

    def _disk_path(self, digest: str) -> Path | None:
        path = self._disk_file(digest)
        if path is not None and path.exists():
            return path
        return None

    def _read_disk(self, digest: str) -> dict[str, Any] | None:
        path = self._disk_path(digest)
        if path is None:
            return None
        try:
            entry = json.loads(path.read_text())
        except OSError:
            return None
        except json.JSONDecodeError:
            entry = None
        if not isinstance(entry, dict) or entry.get("price") is None:
            # truncated / partially-written / garbage entry: a daemon sharing
            # one cache dir across requests must treat this as a miss, not an
            # error -- delete the file so the next put rewrites it cleanly
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already removed by a peer
                pass
            return None
        return entry

    def _write_disk(self, digest: str, entry: dict[str, Any]) -> None:
        path = self._disk_file(digest)
        assert path is not None
        # per-process temporary: two processes putting the same digest must
        # not interleave writes into one tmp file before the atomic rename
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry))
        os.replace(tmp, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        where = f", directory={str(self.directory)!r}" if self.directory else ""
        return (
            f"ResultCache(entries={len(self._entries)}/{self.max_entries}{where}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
