"""Bump-and-revalue Greeks for arbitrary (model, product, method) triples.

Closed-form and lattice methods return a delta directly; for the others --
and for higher-order or cross sensitivities required by the risk layer
("delta, gamma, vega, ...") -- this module recomputes prices under bumped
model parameters.  The same mechanism powers the parameter sensitivity sweeps
of :mod:`repro.core.risk` ("it is necessary to price the contingent claims
for various values of these model parameters to measure their sensibilities
to the parameters").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod
from repro.pricing.models.base import Model
from repro.pricing.products.base import Product

__all__ = ["GreekReport", "bump_model", "compute_greeks"]

#: model parameters recognised as "volatility-like" for vega bumps, in the
#: order they are looked up
_VOL_PARAMS = ("volatility", "base_volatility", "volatilities", "v0")


@dataclass
class GreekReport:
    """First and second order sensitivities of a price."""

    price: float
    delta: float
    gamma: float
    vega: float | None
    rho: float | None
    theta: float | None = None

    def as_dict(self) -> dict[str, float | None]:
        return {
            "price": self.price,
            "delta": self.delta,
            "gamma": self.gamma,
            "vega": self.vega,
            "rho": self.rho,
            "theta": self.theta,
        }


def bump_model(model: Model, param: str, bump: float, relative: bool = False) -> Model:
    """Return a copy of ``model`` with ``param`` bumped by ``bump``.

    ``param`` must be a key of ``model.to_params()``.  Vector-valued
    parameters (multi-asset spots and volatilities) are bumped element-wise.
    ``relative=True`` multiplies by ``(1 + bump)`` instead of adding.
    """
    params = model.to_params()
    if param not in params:
        raise PricingError(
            f"model {model.model_name!r} has no parameter {param!r}; "
            f"available: {sorted(params)}"
        )
    value = params[param]
    if isinstance(value, (list, tuple, np.ndarray)):
        arr = np.asarray(value, dtype=float)
        params[param] = (arr * (1.0 + bump) if relative else arr + bump).tolist()
    else:
        params[param] = value * (1.0 + bump) if relative else value + bump
    return type(model).from_params(params)


def _vol_param(model: Model) -> str | None:
    params = model.to_params()
    for name in _VOL_PARAMS:
        if name in params:
            return name
    return None


def compute_greeks(
    model: Model,
    product: Product,
    method: PricingMethod,
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    rate_bump: float = 0.0001,
    compute_vega: bool = True,
    compute_rho: bool = True,
) -> GreekReport:
    """Bump-and-revalue Greeks.

    Parameters
    ----------
    spot_bump:
        Relative spot bump used for delta and gamma (default 1%).
    vol_bump:
        Absolute bump of the volatility-like parameter (default 1 vol point).
    rate_bump:
        Absolute bump of the interest rate (default 1 basis point).

    Notes
    -----
    For Monte-Carlo methods the same seed is used on every revaluation so
    that the bumped estimates share the random numbers (common random
    numbers), which keeps the finite-difference Greeks usable despite the
    statistical noise.
    """
    base = method.price(model, product).price

    up = bump_model(model, "spot", spot_bump, relative=True)
    down = bump_model(model, "spot", -spot_bump, relative=True)
    price_up = method.price(up, product).price
    price_down = method.price(down, product).price
    h = float(np.asarray(model.spot).mean()) * spot_bump
    delta = (price_up - price_down) / (2.0 * h)
    gamma = (price_up - 2.0 * base + price_down) / h**2

    vega = None
    if compute_vega:
        vol_param = _vol_param(model)
        if vol_param is not None:
            vol_up = bump_model(model, vol_param, vol_bump)
            vol_down = bump_model(model, vol_param, -vol_bump)
            vega = (
                method.price(vol_up, product).price - method.price(vol_down, product).price
            ) / (2.0 * vol_bump)

    rho = None
    if compute_rho:
        rate_up = bump_model(model, "rate", rate_bump)
        rate_down = bump_model(model, "rate", -rate_bump)
        rho = (
            method.price(rate_up, product).price - method.price(rate_down, product).price
        ) / (2.0 * rate_bump)

    return GreekReport(price=base, delta=float(delta), gamma=float(gamma),
                       vega=None if vega is None else float(vega),
                       rho=None if rho is None else float(rho))
