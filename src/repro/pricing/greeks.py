"""Bump-and-revalue Greeks for arbitrary (model, product, method) triples.

Closed-form and lattice methods return a delta directly; for the others --
and for higher-order or cross sensitivities required by the risk layer
("delta, gamma, vega, ...") -- this module recomputes prices under bumped
model parameters.  The same mechanism powers the parameter sensitivity sweeps
of :mod:`repro.core.risk` ("it is necessary to price the contingent claims
for various values of these model parameters to measure their sensibilities
to the parameters").

Two engines evaluate the same ladder:

* ``engine="batched"`` (default) expands the bumps through
  :mod:`repro.pricing.scenarios` and prices them as one
  ``kernel="stacked"`` campaign -- Monte-Carlo bumps share **one** draw
  cohort with the base (common random numbers by construction), so a full
  ladder costs two simulations instead of ten;
* ``engine="serial"`` is the pre-batch bump-and-revalue loop, kept verbatim
  as the differential oracle (``tests/differential`` compares the two with
  ``==`` on base prices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod
from repro.pricing.models.base import Model
from repro.pricing.products.base import Product

__all__ = ["GreekReport", "bump_model", "maturity_step", "compute_greeks"]

#: model parameters recognised as "volatility-like" for vega bumps, in the
#: order they are looked up
_VOL_PARAMS = ("volatility", "base_volatility", "volatilities", "v0")

#: the ladder evaluation engines (serial is the differential oracle)
_ENGINES = ("batched", "serial")


@dataclass
class GreekReport:
    """First and second order sensitivities of a price."""

    price: float
    delta: float
    gamma: float
    vega: float | None
    rho: float | None
    theta: float | None = None

    def as_dict(self) -> dict[str, float | None]:
        return {
            "price": self.price,
            "delta": self.delta,
            "gamma": self.gamma,
            "vega": self.vega,
            "rho": self.rho,
            "theta": self.theta,
        }


def bump_model(model: Model, param: str, bump: float, relative: bool = False) -> Model:
    """Return a copy of ``model`` with ``param`` bumped by ``bump``.

    ``param`` must be a key of ``model.to_params()``.  Vector-valued
    parameters (multi-asset spots and volatilities) are bumped element-wise.
    ``relative=True`` multiplies by ``(1 + bump)`` instead of adding.
    """
    params = model.to_params()
    if param not in params:
        raise PricingError(
            f"model {model.model_name!r} has no parameter {param!r}; "
            f"available: {sorted(params)}"
        )
    value = params[param]
    if isinstance(value, (list, tuple, np.ndarray)):
        arr = np.asarray(value, dtype=float)
        params[param] = (arr * (1.0 + bump) if relative else arr + bump).tolist()
    else:
        params[param] = value * (1.0 + bump) if relative else value + bump
    return type(model).from_params(params)


def maturity_step(maturity: float, theta_bump: float) -> float:
    """Calendar step of the theta scenario, clamped to keep maturity positive."""
    return min(float(theta_bump), float(maturity) / 2.0)


def _vol_param(model: Model) -> str | None:
    params = model.to_params()
    for name in _VOL_PARAMS:
        if name in params:
            return name
    return None


def compute_greeks(
    model: Model,
    product: Product,
    method: PricingMethod,
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    rate_bump: float = 0.0001,
    compute_vega: bool = True,
    compute_rho: bool = True,
    *,
    theta_bump: float = 1.0 / 365.0,
    compute_theta: bool = True,
    engine: str = "batched",
    kernel: str = "stacked",
) -> GreekReport:
    """Bump-and-revalue Greeks.

    Parameters
    ----------
    spot_bump:
        Relative spot bump used for delta and gamma (default 1%).
    vol_bump:
        Absolute bump of the volatility-like parameter (default 1 vol point).
    rate_bump:
        Absolute bump of the interest rate (default 1 basis point).
    theta_bump:
        Calendar step of the theta scenario (default one day), clamped to
        half the maturity so the rolled-down product stays alive.  Theta is
        the one-sided difference ``(price(T - dt) - price(T)) / dt`` --
        negative for plain long options, as time decay should be.
    engine:
        ``"batched"`` prices the whole ladder as one stacked-kernel scenario
        campaign; ``"serial"`` reprices bump by bump (the oracle path).
    kernel:
        Plan-level kernel of the batched engine (``"stacked"`` or ``"loop"``).

    Notes
    -----
    For Monte-Carlo methods the bumped estimates share random numbers with
    the base (common random numbers), which keeps the finite-difference
    Greeks usable despite the statistical noise.  Under the batched engine
    this is structural, not conventional: all bump scenarios of a stackable
    model join the base problem's **draw cohort** in the stacked kernel
    (:func:`repro.pricing.kernel.run_groups`), so every estimate consumes
    the *same* normal stream object with per-scenario drift/vol broadcast.
    The serial path achieves the same stream only because each revaluation
    re-draws from an identically-seeded generator; the prices agree bit for
    bit either way, which is exactly what the differential suite enforces.
    """
    if engine not in _ENGINES:
        raise PricingError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if engine == "batched":
        return _compute_greeks_batched(
            model, product, method, spot_bump=spot_bump, vol_bump=vol_bump,
            rate_bump=rate_bump, theta_bump=theta_bump, compute_vega=compute_vega,
            compute_rho=compute_rho, compute_theta=compute_theta, kernel=kernel,
        )

    base = method.price(model, product).price

    up = bump_model(model, "spot", spot_bump, relative=True)
    down = bump_model(model, "spot", -spot_bump, relative=True)
    price_up = method.price(up, product).price
    price_down = method.price(down, product).price
    h = float(np.asarray(model.spot).mean()) * spot_bump
    delta = (price_up - price_down) / (2.0 * h)
    gamma = (price_up - 2.0 * base + price_down) / h**2

    vega = None
    if compute_vega:
        vol_param = _vol_param(model)
        if vol_param is not None:
            vol_up = bump_model(model, vol_param, vol_bump)
            vol_down = bump_model(model, vol_param, -vol_bump)
            vega = (
                method.price(vol_up, product).price - method.price(vol_down, product).price
            ) / (2.0 * vol_bump)

    rho = None
    if compute_rho:
        rate_up = bump_model(model, "rate", rate_bump)
        rate_down = bump_model(model, "rate", -rate_bump)
        rho = (
            method.price(rate_up, product).price - method.price(rate_down, product).price
        ) / (2.0 * rate_bump)

    theta = None
    if compute_theta:
        step = maturity_step(product.maturity, theta_bump)
        params = product.to_params()
        params["maturity"] = product.maturity - step
        shorter = type(product).from_params(params)
        theta = (method.price(model, shorter).price - base) / step

    return GreekReport(price=base, delta=float(delta), gamma=float(gamma),
                       vega=None if vega is None else float(vega),
                       rho=None if rho is None else float(rho),
                       theta=None if theta is None else float(theta))


def _compute_greeks_batched(
    model: Model,
    product: Product,
    method: PricingMethod,
    *,
    spot_bump: float,
    vol_bump: float,
    rate_bump: float,
    theta_bump: float,
    compute_vega: bool,
    compute_rho: bool,
    compute_theta: bool,
    kernel: str,
) -> GreekReport:
    """One-position ladder through the scenario-grid engine."""
    # imported lazily: scenarios builds on this module (no import cycle)
    from repro.pricing.engine import PricingProblem
    from repro.pricing.scenarios import (
        greek_ladder,
        greeks_from_prices,
        price_scenarios,
    )

    problem = PricingProblem.from_instances(model, product, method)
    scenarios = greek_ladder(
        spot_bump=spot_bump, vol_bump=vol_bump, rate_bump=rate_bump,
        theta_bump=theta_bump, compute_vega=compute_vega, compute_rho=compute_rho,
        compute_theta=compute_theta, vol_param=_vol_param(model),
    )
    prices = price_scenarios([problem], scenarios, kernel=kernel)[0]
    return greeks_from_prices(
        model, product, prices, spot_bump=spot_bump, vol_bump=vol_bump,
        rate_bump=rate_bump, theta_bump=theta_bump,
    )
