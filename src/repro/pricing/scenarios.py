"""Scenario-grid planning: common-random-numbers bump campaigns on the batch engine.

The paper's motivating workload is daily portfolio risk -- "price the
contingent claims for various values of these model parameters ... a huge
number of atomic computations (around 10^6)".  Bump-and-revalue risk is a
*scenario grid*: (portfolio positions) x (bumped market states), where every
cell prices the same product under a slightly perturbed model.  Priced
naively, every cell re-simulates its own path set; priced through this
module, the grid is expanded into :func:`~repro.pricing.batch.plan_batches`
groups tagged with their scenario coordinates and evaluated by
``price_problems(kernel="stacked")`` -- and because the stacked kernel's
draw cohorts (:func:`repro.pricing.kernel.run_groups`) key on the *method*
(rng kind, seed, antithetic, path counts) and the time grid but **not** on
the model parameters of stackable schemes, every bumped variant of a
position lands in the same cohort as its base and consumes the **one**
shared normal stream with its own drift/vol broadcast.

Common random numbers therefore hold *by construction*: the bumped and base
estimates differ only in the deterministic per-group arithmetic applied to
one shared draw, not by the convention that re-seeding reproduces the same
stream.  A full Greek ladder over a single-model book collapses to two
simulations (one cohort for the spot/vol/rate bumps, one for the
shorter-maturity theta scenario, which changes the time grid) instead of
one simulation per (position, bump) cell.

Building blocks:

* :class:`Scenario` -- one named market perturbation (a model-parameter
  bump, a maturity roll-down, or the base state);
* :func:`greek_ladder` / :func:`shock_scenarios` /
  :func:`historical_scenarios` -- standard scenario sets;
* :func:`apply_scenario` / :func:`expand_scenarios` -- expand (problems x
  scenarios) into a flat problem list plus :class:`ScenarioCell`
  coordinates (the round-trip from flat index back to (position, scenario)
  is what the property tests pin);
* :func:`price_scenarios` -- expand, price through the batch planner with
  ``min_group_size=1`` (every cell is its own signature group; the stacked
  kernel still clusters them into shared-draw cohorts), and return one
  ``{scenario name: price}`` mapping per input problem;
* :func:`greeks_from_prices` -- assemble finite-difference Greeks from a
  priced ladder with exactly the serial path's IEEE expressions, so the
  batched Greeks match the serial oracle bit for bit when the prices do.

This module is under the repro-lint determinism contract: it never reads a
wall clock or an entropy source.  All randomness is the seeded generators
of the methods it prices; elapsed-time stamping happens inside the
Monte-Carlo layer, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import PricingError
from repro.pricing.batch import price_problems
from repro.pricing.engine import PricingProblem
from repro.pricing.greeks import GreekReport, _vol_param, bump_model, maturity_step

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pricing.cache import ResultCache
    from repro.pricing.models.base import Model
    from repro.pricing.products.base import Product

__all__ = [
    "VOL_PARAM",
    "Scenario",
    "ScenarioCell",
    "greek_ladder",
    "shock_scenarios",
    "historical_scenarios",
    "apply_scenario",
    "expand_scenarios",
    "collect_cell_prices",
    "price_scenarios",
    "maturity_step",
    "greeks_from_prices",
]

#: symbolic volatility parameter: resolved per model against the
#: volatility-like names of :mod:`repro.pricing.greeks` at expansion time,
#: so one ladder serves a book mixing 1d, basket and stochastic-vol models
VOL_PARAM = "__vol__"

#: scenario targets: the unbumped state, a model-parameter bump, or a
#: calendar roll-down of the product maturity (the theta scenario)
_TARGETS = ("base", "model", "maturity")

#: how expansion treats a scenario a problem cannot realise (see
#: :func:`expand_scenarios`)
_ON_MISSING = ("raise", "skip", "base")


@dataclass(frozen=True)
class Scenario:
    """One named perturbation of the market state.

    ``target="base"`` is the unbumped state (the cell reuses the original
    problem instance).  ``target="model"`` bumps one model parameter --
    ``param`` may be the symbolic :data:`VOL_PARAM`, resolved per model.
    ``target="maturity"`` rolls the product maturity *down* by
    ``maturity_step(maturity, bump)`` (clamped so maturity stays positive),
    which is the calendar-time theta scenario.
    """

    name: str
    target: str = "base"
    param: str | None = None
    bump: float = 0.0
    relative: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise PricingError("a scenario needs a non-empty name")
        if self.target not in _TARGETS:
            raise PricingError(
                f"unknown scenario target {self.target!r}; expected one of {_TARGETS}"
            )
        if self.target == "model" and not self.param:
            raise PricingError("a model scenario needs the bumped parameter name")
        if self.target == "maturity" and not self.bump > 0.0:
            raise PricingError("a maturity scenario needs a positive calendar step")


@dataclass(frozen=True)
class ScenarioCell:
    """Coordinates of one expanded problem: (input problem, scenario)."""

    problem_index: int
    scenario_index: int


# -- standard scenario sets ------------------------------------------------------


def greek_ladder(
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    rate_bump: float = 0.0001,
    theta_bump: float = 1.0 / 365.0,
    compute_vega: bool = True,
    compute_rho: bool = True,
    compute_theta: bool = True,
    vol_param: str | None = VOL_PARAM,
) -> tuple[Scenario, ...]:
    """The bump set behind a full finite-difference Greek report.

    Base + up/down spot (relative), up/down volatility (absolute, on
    ``vol_param``; pass ``None`` to drop the vega axis entirely), up/down
    rate (absolute) and the one-sided maturity roll-down for theta.
    """
    scenarios = [
        Scenario(name="base"),
        Scenario(name="spot_up", target="model", param="spot",
                 bump=spot_bump, relative=True),
        Scenario(name="spot_down", target="model", param="spot",
                 bump=-spot_bump, relative=True),
    ]
    if compute_vega and vol_param is not None:
        scenarios += [
            Scenario(name="vol_up", target="model", param=vol_param, bump=vol_bump),
            Scenario(name="vol_down", target="model", param=vol_param, bump=-vol_bump),
        ]
    if compute_rho:
        scenarios += [
            Scenario(name="rate_up", target="model", param="rate", bump=rate_bump),
            Scenario(name="rate_down", target="model", param="rate", bump=-rate_bump),
        ]
    if compute_theta:
        scenarios.append(Scenario(name="theta_down", target="maturity", bump=theta_bump))
    return tuple(scenarios)


def shock_scenarios(
    bumps: Sequence[float], param: str = "spot", relative: bool = True
) -> tuple[Scenario, ...]:
    """One scenario per bump of one model parameter (sensitivity surfaces).

    Names carry the grid index so duplicate bump values stay distinct cells.
    """
    return tuple(
        Scenario(name=f"{param}[{index}]{float(bump):+g}", target="model",
                 param=param, bump=float(bump), relative=relative)
        for index, bump in enumerate(bumps)
    )


def historical_scenarios(spot_returns: Sequence[float]) -> tuple[Scenario, ...]:
    """Base + one relative spot shock per historical return (VaR campaigns)."""
    shocks = tuple(
        Scenario(name=f"hist{index:04d}", target="model", param="spot",
                 bump=float(shock), relative=True)
        for index, shock in enumerate(spot_returns)
    )
    return (Scenario(name="base"),) + shocks


# -- expansion -------------------------------------------------------------------


def apply_scenario(problem: PricingProblem, scenario: Scenario) -> PricingProblem:
    """The problem priced under ``scenario``.

    The base scenario returns the *original instance* (its result slot is
    where ``price_problems`` stores the base price); bump scenarios return
    a fresh clone sharing the unbumped components, so the input problem is
    never mutated.  Raises :class:`~repro.errors.PricingError` when the
    problem cannot realise the scenario (unknown model parameter, no
    volatility-like parameter for :data:`VOL_PARAM`).
    """
    if not problem.is_complete:
        raise PricingError("scenario expansion needs fully-specified problems")
    if scenario.target == "base":
        return problem
    label = f"{problem.label}|{scenario.name}" if problem.label else scenario.name
    if scenario.target == "model":
        param = scenario.param
        if param == VOL_PARAM:
            resolved = _vol_param(problem.model)
            if resolved is None:
                raise PricingError(
                    f"model {problem.model.model_name!r} has no volatility-like "
                    f"parameter to bump"
                )
            param = resolved
        assert param is not None
        bumped = bump_model(problem.model, param, scenario.bump,
                            relative=scenario.relative)
        return PricingProblem.from_instances(
            bumped, problem.product, problem.method, asset=problem.asset, label=label
        )
    # maturity roll-down: clone the product one calendar step closer to expiry
    product = problem.product
    step = maturity_step(product.maturity, scenario.bump)
    params = product.to_params()
    params["maturity"] = product.maturity - step
    shorter = type(product).from_params(params)
    return PricingProblem.from_instances(
        problem.model, shorter, problem.method, asset=problem.asset, label=label
    )


def expand_scenarios(
    problems: Sequence[PricingProblem],
    scenarios: Sequence[Scenario],
    on_missing: str = "raise",
) -> tuple[list[PricingProblem], list[ScenarioCell]]:
    """Expand (problems x scenarios) into a flat list plus cell coordinates.

    Cells are emitted problem-major then scenario-major, so the flat list is
    a row-major walk of the grid.  ``on_missing`` controls cells whose
    scenario the problem cannot realise: ``"raise"`` propagates the error,
    ``"skip"`` drops the cell (its Greek assembles to ``None``), ``"base"``
    prices the *unbumped* problem in the cell (mixed-portfolio sweeps and
    VaR keep every position's value in every scenario total).
    """
    if on_missing not in _ON_MISSING:
        raise PricingError(
            f"unknown on_missing {on_missing!r}; expected one of {_ON_MISSING}"
        )
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise PricingError("scenario names must be unique within one grid")
    expanded: list[PricingProblem] = []
    cells: list[ScenarioCell] = []
    for i, problem in enumerate(problems):
        for j, scenario in enumerate(scenarios):
            try:
                cell_problem = apply_scenario(problem, scenario)
            except PricingError:
                if on_missing == "raise":
                    raise
                if on_missing == "skip":
                    continue
                cell_problem = problem
            expanded.append(cell_problem)
            cells.append(ScenarioCell(problem_index=i, scenario_index=j))
    return expanded, cells


def collect_cell_prices(
    prices: Sequence[float],
    cells: Sequence[ScenarioCell],
    scenarios: Sequence[Scenario],
    n_problems: int,
) -> list[dict[str, float]]:
    """Fold flat cell prices back into one ``{scenario name: price}`` per problem."""
    if len(prices) != len(cells):
        raise PricingError("need exactly one price per scenario cell")
    grid: list[dict[str, float]] = [{} for _ in range(n_problems)]
    for cell, price in zip(cells, prices):
        grid[cell.problem_index][scenarios[cell.scenario_index].name] = float(price)
    return grid


def price_scenarios(
    problems: Sequence[PricingProblem],
    scenarios: Sequence[Scenario],
    kernel: str = "stacked",
    on_missing: str = "raise",
    min_group_size: int = 1,
    max_group_size: int | None = None,
    cache: "ResultCache | None" = None,
) -> list[dict[str, float]]:
    """Price a whole scenario grid as one batched campaign.

    The expanded cells go through :func:`~repro.pricing.batch.price_problems`
    with ``min_group_size=1``: bumped cells carry distinct model digests, so
    each is its own plan group, and the stacked kernel clusters all groups
    that share (scheme, time grid, rng kind, seed, antithetic, path counts)
    into **one draw cohort** -- base and bumps consume the same normal
    stream (common random numbers by construction).  Non-Monte-Carlo cells
    (closed forms, trees, PDEs) fall through to per-problem pricing
    unchanged, so grids over mixed books are always safe.
    """
    problems = list(problems)
    expanded, cells = expand_scenarios(problems, scenarios, on_missing=on_missing)
    results = price_problems(
        expanded,
        min_group_size=min_group_size,
        max_group_size=max_group_size,
        cache=cache,
        kernel=kernel,
    )
    return collect_cell_prices(
        [result.price for result in results], cells, scenarios, len(problems)
    )


# -- Greek assembly --------------------------------------------------------------


def greeks_from_prices(
    model: "Model",
    product: "Product",
    prices: Mapping[str, float],
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    rate_bump: float = 0.0001,
    theta_bump: float = 1.0 / 365.0,
) -> GreekReport:
    """Finite-difference Greeks from a priced :func:`greek_ladder`.

    The expressions replicate the serial bump-and-revalue path operation for
    operation (same differences, same parenthesisation), so when the ladder
    prices are bit-identical to serial repricing -- which the stacked
    kernel's CRN cohorts guarantee -- the assembled Greeks are too.
    Scenarios absent from ``prices`` (skipped cells, trimmed ladders)
    assemble to ``None``.
    """
    base = float(prices["base"])
    price_up = float(prices["spot_up"])
    price_down = float(prices["spot_down"])
    h = float(np.asarray(model.spot).mean()) * spot_bump
    delta = (price_up - price_down) / (2.0 * h)
    gamma = (price_up - 2.0 * base + price_down) / h**2

    vega = None
    if "vol_up" in prices and "vol_down" in prices:
        vega = (float(prices["vol_up"]) - float(prices["vol_down"])) / (2.0 * vol_bump)

    rho = None
    if "rate_up" in prices and "rate_down" in prices:
        rho = (float(prices["rate_up"]) - float(prices["rate_down"])) / (2.0 * rate_bump)

    theta = None
    if "theta_down" in prices:
        step = maturity_step(product.maturity, theta_bump)
        theta = (float(prices["theta_down"]) - base) / step

    return GreekReport(price=base, delta=float(delta), gamma=float(gamma),
                       vega=vega, rho=rho, theta=theta)
