"""The pricing-problem engine: the analogue of Premia's ``PremiaModel``.

In the paper, a pricing problem is described at the Nsp level by creating a
``PremiaModel`` object and setting its asset class, model, option and method::

    P = premia_create()
    P.set_asset[str="equity"]
    P.set_model[str="Heston1dim"]
    P.set_option[str="PutAmer"]
    P.set_method[str="MC_AM_Alfonsi_LongstaffSchwartz"]
    save('fic', P)

:class:`PricingProblem` mirrors that interface: ``set_asset``, ``set_model``,
``set_option``, ``set_method``, ``compute`` and ``get_method_results``.  The
(model, option, method) names are resolved through module-level registries so
that new models, products and methods can be plugged in without touching the
engine ("it is an easy task to add any new pricing algorithms using the
Premia framework").

A :class:`PricingProblem` is fully described by a plain dictionary
(:meth:`PricingProblem.to_dict`), which is what the :mod:`repro.serial` layer
encodes into architecture-independent problem files.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.errors import ProblemStateError, RegistryError
from repro.pricing.methods import METHOD_CLASSES, PricingMethod, PricingResult
from repro.pricing.methods.longstaff_schwartz import LongstaffSchwartz
from repro.pricing.models import MODEL_CLASSES, Model
from repro.pricing.products import PRODUCT_CLASSES, Product

__all__ = [
    "PricingProblem",
    "premia_create",
    "register_model",
    "register_product",
    "register_method",
    "register_method_alias",
    "list_models",
    "list_products",
    "list_methods",
    "compatible_methods",
    "ASSET_CLASSES",
]

#: asset classes recognised by :meth:`PricingProblem.set_asset`; the paper's
#: experiments are restricted to equity derivatives but Premia also covers
#: rates, credit, commodities and inflation.
ASSET_CLASSES = ("equity", "interest_rate", "credit", "commodity", "inflation")

# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

_MODEL_REGISTRY: dict[str, type[Model]] = dict(MODEL_CLASSES)
_PRODUCT_REGISTRY: dict[str, type[Product]] = dict(PRODUCT_CLASSES)
_METHOD_REGISTRY: dict[str, type[PricingMethod]] = dict(METHOD_CLASSES)
#: aliases map a Premia-style method name to (registry name, default params)
_METHOD_ALIASES: dict[str, tuple[str, dict[str, Any]]] = {}


def register_model(cls: type[Model]) -> type[Model]:
    """Register a new model class (usable as a decorator)."""
    if not getattr(cls, "model_name", None) or cls.model_name == "abstract":
        raise RegistryError("model classes must define a non-abstract model_name")
    _MODEL_REGISTRY[cls.model_name] = cls
    return cls


def register_product(cls: type[Product]) -> type[Product]:
    """Register a new product class (usable as a decorator)."""
    if not getattr(cls, "option_name", None) or cls.option_name == "abstract":
        raise RegistryError("product classes must define a non-abstract option_name")
    _PRODUCT_REGISTRY[cls.option_name] = cls
    return cls


def register_method(cls: type[PricingMethod]) -> type[PricingMethod]:
    """Register a new pricing method class (usable as a decorator)."""
    if not getattr(cls, "method_name", None) or cls.method_name == "abstract":
        raise RegistryError("method classes must define a non-abstract method_name")
    _METHOD_REGISTRY[cls.method_name] = cls
    return cls


def register_method_alias(alias: str, method_name: str, **default_params: Any) -> None:
    """Register a Premia-style alias for a method with default parameters.

    Example: ``MC_AM_Alfonsi_LongstaffSchwartz`` (the paper's example method)
    aliases :class:`LongstaffSchwartz` with the Alfonsi variance scheme.
    """
    if method_name not in _METHOD_REGISTRY:
        raise RegistryError(f"unknown method {method_name!r} for alias {alias!r}")
    _METHOD_ALIASES[alias] = (method_name, dict(default_params))


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(_MODEL_REGISTRY)


def list_products() -> list[str]:
    """Names of all registered products."""
    return sorted(_PRODUCT_REGISTRY)


def list_methods(include_aliases: bool = True) -> list[str]:
    """Names of all registered methods (and aliases)."""
    names = set(_METHOD_REGISTRY)
    if include_aliases:
        names |= set(_METHOD_ALIASES)
    return sorted(names)


def _build_model(name: str, params: dict[str, Any]) -> Model:
    if name not in _MODEL_REGISTRY:
        raise RegistryError(f"unknown model {name!r}; known models: {list_models()}")
    return _MODEL_REGISTRY[name].from_params(params)


def _build_product(name: str, params: dict[str, Any]) -> Product:
    if name not in _PRODUCT_REGISTRY:
        raise RegistryError(f"unknown option {name!r}; known options: {list_products()}")
    return _PRODUCT_REGISTRY[name].from_params(params)


def _build_method(name: str, params: dict[str, Any]) -> PricingMethod:
    if name in _METHOD_ALIASES:
        target, defaults = _METHOD_ALIASES[name]
        merged = dict(defaults)
        merged.update(params)
        return _METHOD_REGISTRY[target].from_params(merged)
    if name not in _METHOD_REGISTRY:
        raise RegistryError(f"unknown method {name!r}; known methods: {list_methods()}")
    return _METHOD_REGISTRY[name].from_params(params)


def compatible_methods(model: Model, product: Product) -> list[str]:
    """Names of registered methods (with default parameters) that can price
    ``product`` under ``model``."""
    names = []
    for name, cls in _METHOD_REGISTRY.items():
        try:
            method = cls()
        except TypeError:  # pragma: no cover - methods requiring parameters
            continue
        if method.supports(model, product):
            names.append(name)
    return sorted(names)


# the alias named in the paper's example script
register_method_alias(
    "MC_AM_Alfonsi_LongstaffSchwartz",
    LongstaffSchwartz.method_name,
    heston_scheme="alfonsi",
)
# a few convenience aliases with Premia-flavoured names
register_method_alias("CF_CallEuro_BlackScholes", "CF_Call")
register_method_alias("CF_PutEuro_BlackScholes", "CF_Put")
register_method_alias("FD_CrankNicolson", "FD_European", theta=0.5)
register_method_alias("FD_Implicit", "FD_European", theta=1.0)
register_method_alias("MC_Standard", "MC_European")
register_method_alias("MC_Sobol", "MC_European", rng_kind="sobol")


# ---------------------------------------------------------------------------
# the PricingProblem object
# ---------------------------------------------------------------------------


class PricingProblem:
    """A fully specified pricing problem (asset, model, option, method).

    The object supports two construction styles:

    * Premia/Nsp style, by name::

        p = PricingProblem()
        p.set_asset("equity")
        p.set_model("BlackScholes1D", spot=100, rate=0.05, volatility=0.2)
        p.set_option("CallEuro", strike=100, maturity=1.0)
        p.set_method("CF_Call")

    * directly from instances::

        p = PricingProblem.from_instances(model, product, method)

    ``compute()`` runs the method and stores the :class:`PricingResult`;
    ``get_method_results()`` returns it.
    """

    def __init__(self, label: str | None = None):
        self.asset: str = "equity"
        self.label = label
        self._model_name: str | None = None
        self._model_params: dict[str, Any] = {}
        self._product_name: str | None = None
        self._product_params: dict[str, Any] = {}
        self._method_name: str | None = None
        self._method_params: dict[str, Any] = {}
        self._model: Model | None = None
        self._product: Product | None = None
        self._method: PricingMethod | None = None
        self._result: PricingResult | None = None

    # -- setters ----------------------------------------------------------------
    def set_asset(self, name: str) -> "PricingProblem":
        if name not in ASSET_CLASSES:
            raise RegistryError(
                f"unknown asset class {name!r}; known classes: {ASSET_CLASSES}"
            )
        self.asset = name
        return self

    def set_model(self, name: str | Model, **params: Any) -> "PricingProblem":
        if isinstance(name, Model):
            self._model = name
            self._model_name = name.model_name
            self._model_params = name.to_params()
        else:
            self._model_name = name
            self._model_params = params
            self._model = _build_model(name, params)
        self._result = None
        self._digest_cache = None  # invalidate the memoized problem digest
        return self

    def set_option(self, name: str | Product, **params: Any) -> "PricingProblem":
        if isinstance(name, Product):
            self._product = name
            self._product_name = name.option_name
            self._product_params = name.to_params()
        else:
            self._product_name = name
            self._product_params = params
            self._product = _build_product(name, params)
        self._result = None
        self._digest_cache = None  # invalidate the memoized problem digest
        return self

    def set_method(self, name: str | PricingMethod, **params: Any) -> "PricingProblem":
        if isinstance(name, PricingMethod):
            self._method = name
            self._method_name = name.method_name
            self._method_params = name.to_params()
        else:
            self._method_name = name
            self._method_params = params
            self._method = _build_method(name, params)
        self._result = None
        self._digest_cache = None  # invalidate the memoized problem digest
        return self

    @classmethod
    def from_instances(
        cls,
        model: Model,
        product: Product,
        method: PricingMethod,
        asset: str = "equity",
        label: str | None = None,
    ) -> "PricingProblem":
        problem = cls(label=label)
        problem.set_asset(asset)
        problem.set_model(model)
        problem.set_option(product)
        problem.set_method(method)
        return problem

    # -- accessors ----------------------------------------------------------------
    @property
    def model(self) -> Model:
        if self._model is None:
            raise ProblemStateError("the problem has no model; call set_model first")
        return self._model

    @property
    def product(self) -> Product:
        if self._product is None:
            raise ProblemStateError("the problem has no option; call set_option first")
        return self._product

    @property
    def method(self) -> PricingMethod:
        if self._method is None:
            raise ProblemStateError("the problem has no method; call set_method first")
        return self._method

    @property
    def model_name(self) -> str | None:
        return self._model_name

    @property
    def option_name(self) -> str | None:
        return self._product_name

    @property
    def method_name(self) -> str | None:
        return self._method_name

    @property
    def is_complete(self) -> bool:
        """Whether the problem has a model, an option and a method."""
        return (
            self._model is not None
            and self._product is not None
            and self._method is not None
        )

    @property
    def has_result(self) -> bool:
        return self._result is not None

    # -- computation ---------------------------------------------------------------
    def compute(self) -> PricingResult:
        """Run the pricing method and store (and return) its result."""
        if not self.is_complete:
            missing = [
                name
                for name, value in (
                    ("model", self._model),
                    ("option", self._product),
                    ("method", self._method),
                )
                if value is None
            ]
            raise ProblemStateError(f"problem is incomplete, missing: {missing}")
        self._result = self.method.price(self.model, self.product)
        return self._result

    def get_method_results(self) -> PricingResult:
        """Return the stored result of the last :meth:`compute` call."""
        if self._result is None:
            raise ProblemStateError("no results available; call compute() first")
        return self._result

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dictionary description (model/option/method names + params).

        The dictionary only contains numbers, strings, lists and nested
        dictionaries, so the :mod:`repro.serial` XDR encoder can write it
        without type-specific hooks.
        """
        return {
            "asset": self.asset,
            "label": self.label,
            "model": {"name": self._model_name, "params": copy.deepcopy(self._model_params)},
            "option": {
                "name": self._product_name,
                "params": copy.deepcopy(self._product_params),
            },
            "method": {
                "name": self._method_name,
                "params": copy.deepcopy(self._method_params),
            },
            "result": None if self._result is None else self._result.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PricingProblem":
        problem = cls(label=data.get("label"))
        problem.set_asset(data.get("asset", "equity"))
        model = data.get("model") or {}
        if model.get("name"):
            problem.set_model(model["name"], **(model.get("params") or {}))
        option = data.get("option") or {}
        if option.get("name"):
            problem.set_option(option["name"], **(option.get("params") or {}))
        method = data.get("method") or {}
        if method.get("name"):
            problem.set_method(method["name"], **(method.get("params") or {}))
        result = data.get("result")
        if result is not None:
            problem._result = PricingResult.from_dict(result)
        return problem

    # -- misc --------------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PricingProblem):
            return NotImplemented
        a, b = self.to_dict(), other.to_dict()
        a.pop("result"), b.pop("result")
        return a == b

    def __repr__(self) -> str:
        return (
            f"PricingProblem(asset={self.asset!r}, model={self._model_name!r}, "
            f"option={self._product_name!r}, method={self._method_name!r}, "
            f"label={self.label!r})"
        )


def premia_create(label: str | None = None) -> PricingProblem:
    """Premia-flavoured factory function, mirroring the paper's scripts."""
    return PricingProblem(label=label)
