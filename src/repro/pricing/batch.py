"""Shared-path batch pricing: plan, group and evaluate problem families.

The paper's realistic portfolio is dominated by huge *families* of
near-identical problems -- 525 puts on the same 40-dimensional basket, 1025
calls under the same local-volatility model -- each priced by Monte-Carlo
with the same model, generator and time grid.  Priced one by one, the path
simulation (by far the dominant cost) is repeated once per position; priced
as a family, the paths can be simulated **once** and every member payoff
evaluated against the shared path array.

This module provides the planning layer on top of
:meth:`~repro.pricing.methods.montecarlo.MonteCarloEuropean.price_many`:

* :func:`simulation_signature` -- the grouping key: model parameters, rng
  kind/seed, antithetic flag, path counts/batching and the effective time
  grid.  Problems with equal signatures consume identical random-number
  streams, so the shared paths are *bit-identical* to the paths each problem
  would simulate alone;
* :func:`plan_batches` -- partition a problem list into shared-simulation
  groups and left-over singletons, preserving input order;
* :class:`ProblemBatch` -- a serializable bundle of grouped problems that
  cluster workers price as one unit (registered with the XDR codec registry,
  so it ships over every transmission strategy that serializes problems);
* :func:`price_problems` -- the one-call convenience: plan, price groups via
  the shared-path engine, price singletons individually, return results in
  input order.

Grouping applies when (and only when) two problems use the *same* model
parameters, a shared-simulation-capable method (``MC_European``) with equal
parameters, and products inducing the same time grid and sampling mode.
Everything else -- closed forms, PDEs, trees, Longstaff-Schwartz, mixed
grids -- falls back to per-problem pricing, so batch mode is always safe to
enable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import PricingError
from repro.pricing.cache import problem_digest, stable_digest
from repro.pricing.engine import PricingProblem
from repro.pricing.kernel import resolve_kernel
from repro.pricing.methods.base import PricingResult
from repro.pricing.methods.montecarlo import MonteCarloEuropean, price_groups_stacked

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pricing.cache import ResultCache

__all__ = [
    "SimulationSignature",
    "simulation_signature",
    "BatchGroup",
    "BatchPlan",
    "plan_batches",
    "ProblemBatch",
    "price_problems",
]


@dataclass(frozen=True)
class SimulationSignature:
    """Everything that determines the simulated path set of one problem.

    Two problems with equal signatures use bit-equal model parameters and
    **fully equal method parameters** (rng kind/seed, antithetic flag, path
    counts/batching, control variate, barrier correction, ... -- the whole
    ``method.to_params()`` dictionary, folded into ``method_digest``), and
    induce the same effective time grid and sampling mode.  They therefore
    draw identical random numbers through identical model sampling calls --
    only their payoff evaluation differs.
    """

    model_digest: str
    method_name: str
    method_digest: str
    mode: str  # "paths" (full path simulation) or "terminal" (exact law)
    n_steps: int
    maturity: float


def simulation_signature(problem: PricingProblem) -> SimulationSignature | None:
    """The problem's shared-simulation grouping key, or ``None``.

    ``None`` means the problem cannot take part in shared-path pricing (not a
    Monte-Carlo European method, incomplete problem, unsupported pair); it is
    then priced individually by the fallback path of :func:`price_problems`.
    """
    if not problem.is_complete:
        return None
    method = problem.method
    if not isinstance(method, MonteCarloEuropean):
        return None
    model, product = problem.model, problem.product
    if not method.supports(model, product):
        return None
    n_steps = method._effective_steps(model, product)
    mode = "paths" if (product.path_dependent or n_steps > 1) else "terminal"
    return SimulationSignature(
        model_digest=model.param_digest(),
        method_name=method.method_name,
        method_digest=stable_digest(method.to_params()),
        mode=mode,
        n_steps=n_steps,
        maturity=product.maturity,
    )


@dataclass(frozen=True)
class BatchGroup:
    """One shared-simulation group of a :class:`BatchPlan` (input indices)."""

    signature: SimulationSignature
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class BatchPlan:
    """Partition of a problem list into shared groups and singletons."""

    groups: tuple[BatchGroup, ...]
    singles: tuple[int, ...]

    @property
    def n_grouped(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def n_simulations_saved(self) -> int:
        """Path simulations avoided versus per-problem pricing."""
        return sum(len(group) - 1 for group in self.groups)


def plan_batches(
    problems: Sequence[PricingProblem | None],
    min_group_size: int = 2,
    max_group_size: int | None = None,
) -> BatchPlan:
    """Group ``problems`` by simulation signature.

    ``None`` entries (jobs without an in-memory problem) and problems without
    a signature become singletons.  Groups smaller than ``min_group_size``
    degrade to singletons (a one-member "group" would only add overhead);
    ``max_group_size`` splits huge families into several groups so a parallel
    backend can spread them over workers -- splitting never changes any price
    because members are statistically independent read-only consumers of the
    shared paths.

    ``min_group_size=1`` keeps size-1 families as real groups.  That is the
    scenario-grid configuration (:mod:`repro.pricing.scenarios`): bumped
    model variants have *distinct* signatures (the bump changes the model
    digest) but stackable schemes share one draw cohort across groups, so
    even one-member groups belong in the stacked plan rather than the
    per-problem fallback.
    """
    if min_group_size < 1:
        raise PricingError("min_group_size must be >= 1")
    if max_group_size is not None and max_group_size < min_group_size:
        raise PricingError("max_group_size must be >= min_group_size")
    by_signature: dict[SimulationSignature, list[int]] = {}
    singles: list[int] = []
    for index, problem in enumerate(problems):
        signature = None if problem is None else simulation_signature(problem)
        if signature is None:
            singles.append(index)
        else:
            by_signature.setdefault(signature, []).append(index)

    groups: list[BatchGroup] = []
    for signature, indices in by_signature.items():
        if len(indices) < min_group_size:
            singles.extend(indices)
            continue
        chunk = max_group_size or len(indices)
        for start in range(0, len(indices), chunk):
            part = indices[start : start + chunk]
            if len(part) < min_group_size:
                singles.extend(part)
            else:
                groups.append(BatchGroup(signature=signature, indices=tuple(part)))
    groups.sort(key=lambda group: group.indices[0])
    return BatchPlan(groups=tuple(groups), singles=tuple(sorted(singles)))


class ProblemBatch:
    """A bundle of problems sharing one simulation signature.

    The batch is what the master ships to a worker in batch mode: one message
    carrying a whole family.  ``compute()`` prices every member against the
    shared path set and returns one :class:`PricingResult` per member, in
    member order.  The class round-trips through the XDR serializer (codec
    registered in :mod:`repro.serial`), so every transmission strategy that
    serializes problems can carry batches unchanged.
    """

    def __init__(
        self,
        problems: Sequence[PricingProblem],
        keys: Sequence[int] | None = None,
        kernel: str = "loop",
    ):
        problems = list(problems)
        if len(problems) < 1:
            raise PricingError("a ProblemBatch needs at least one problem")
        if keys is None:
            keys = list(range(len(problems)))
        keys = [int(key) for key in keys]
        if len(keys) != len(problems):
            raise PricingError("ProblemBatch keys must match the problems one-to-one")
        reference = simulation_signature(problems[0])
        if reference is None:
            raise PricingError(
                "ProblemBatch members must support shared-path simulation "
                "(Monte-Carlo European problems with a simulation signature)"
            )
        for problem in problems[1:]:
            if simulation_signature(problem) != reference:
                raise PricingError(
                    "all ProblemBatch members must share one simulation signature"
                )
        self.problems = problems
        self.keys = keys
        self.signature = reference
        #: evaluation strategy for the shared pass -- never part of the
        #: simulation signature or any digest (both kernels are bit-equal)
        self.kernel = resolve_kernel(kernel)

    def __len__(self) -> int:
        return len(self.problems)

    @property
    def label(self) -> str:
        return f"batch[{len(self.problems)}]@{self.signature.model_digest[:12]}"

    # -- pricing -----------------------------------------------------------------
    def compute(self, cache: "ResultCache | None" = None) -> dict[int, dict[str, Any]]:
        """Price all members and return ``{key: result_dict}``.

        With a ``cache``, members whose digest is already stored are answered
        from the cache and **excluded from the simulation** -- dropping
        members never changes the other members' prices, because each payoff
        is an independent read-only consumer of the shared paths.  Freshly
        computed results are written back to the cache.

        If the shared pass fails (e.g. one member's payoff produces a
        non-finite price), the batch degrades to per-member pricing so a
        single bad member cannot fail its whole family: healthy members
        still return results, the bad one returns an ``{"error": ...}``
        entry (matching what an unbatched run would have reported).
        """
        out: dict[int, dict[str, Any]] = {}
        pending: list[tuple[int, PricingProblem]] = []
        for key, problem in zip(self.keys, self.problems):
            cached = cache.get(problem_digest(problem)) if cache is not None else None
            if cached is not None:
                problem._result = cached
                entry = cached.as_dict()
                entry["cache_hit"] = True
                out[key] = entry
            else:
                pending.append((key, problem))
        if not pending:
            return out
        method = pending[0][1].method
        model = pending[0][1].model
        try:
            results = method.price_many(
                model, [p.product for _, p in pending], kernel=self.kernel
            )
        except Exception:  # noqa: BLE001 - isolate the failing member below
            results = None
        if results is not None:
            for (key, problem), result in zip(pending, results):
                problem._result = result
                if cache is not None:
                    cache.put(problem_digest(problem), result)
                out[key] = result.as_dict()
            return out
        # shared pass failed: price members individually so only the bad
        # one(s) error (bit-identical either way -- same seeds, same code)
        for key, problem in pending:
            try:
                result = problem.compute()
            except Exception as exc:  # noqa: BLE001 - per-member error capture
                out[key] = {"error": f"{type(exc).__name__}: {exc}"}
                continue
            if cache is not None:
                cache.put(problem_digest(problem), result)
            out[key] = result.as_dict()
        return out

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "problems": [problem.to_dict() for problem in self.problems],
            "keys": list(self.keys),
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProblemBatch":
        problems = [PricingProblem.from_dict(entry) for entry in data["problems"]]
        return cls(problems, keys=data.get("keys"), kernel=data.get("kernel", "loop"))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ProblemBatch(n={len(self.problems)}, signature={self.signature.mode!r})"


def batch_digest(batch: ProblemBatch) -> str:
    """Stable digest of a whole batch (used for virtual job paths)."""
    return stable_digest([problem_digest(problem) for problem in batch.problems])


def price_problems(
    problems: Sequence[PricingProblem],
    min_group_size: int = 2,
    max_group_size: int | None = None,
    cache: "ResultCache | None" = None,
    kernel: str = "loop",
) -> list[PricingResult]:
    """Price ``problems`` with shared-path grouping, in input order.

    Grouped members go through the shared-path engine; singletons fall back
    to ``problem.compute()``.  Every result is also stored on its problem
    (``problem.get_method_results()`` works afterwards), and prices are
    bit-identical to per-problem pricing for any grouping.

    ``kernel="stacked"`` evaluates **all** groups of the plan as one
    stacked-array computation (:func:`~repro.pricing.methods.montecarlo.
    price_groups_stacked`): groups with identical simulation signatures up
    to model parameters share one normal-draw cohort instead of each
    re-drawing the same stream.  Prices stay bit-identical to the loop
    kernel; with a ``cache`` (per-member hit accounting) the stacked path
    degrades to per-group evaluation.
    """
    kernel = resolve_kernel(kernel)
    problems = list(problems)
    plan = plan_batches(problems, min_group_size=min_group_size,
                        max_group_size=max_group_size)
    results: dict[int, PricingResult] = {}
    batches = [
        ProblemBatch([problems[i] for i in group.indices],
                     keys=list(group.indices), kernel=kernel)
        for group in plan.groups
    ]
    stacked_done = False
    if kernel == "stacked" and cache is None and batches:
        try:
            per_group = price_groups_stacked(
                [
                    (batch.problems[0].method, batch.problems[0].model,
                     [problem.product for problem in batch.problems])
                    for batch in batches
                ]
            )
        except Exception:  # noqa: BLE001 - degrade to per-group evaluation
            per_group = None
        if per_group is not None:
            for batch, group_results in zip(batches, per_group):
                for key, problem, result in zip(batch.keys, batch.problems, group_results):
                    problem._result = result
                    results[key] = result
            stacked_done = True
    if not stacked_done:
        for batch in batches:
            for key, entry in batch.compute(cache=cache).items():
                if "error" in entry:
                    # match unbatched semantics: computing this problem raises
                    raise PricingError(
                        f"problem {problems[key].label or key!r} failed in a "
                        f"shared-path batch: {entry['error']}"
                    )
                # compute() stored the full PricingResult on each member problem
                results[key] = problems[key].get_method_results()
    for index in plan.singles:
        problem = problems[index]
        cached = cache.get(problem_digest(problem)) if cache is not None else None
        if cached is not None:
            problem._result = cached
            results[index] = cached
        else:
            results[index] = problem.compute()
            if cache is not None:
                cache.put(problem_digest(problem), results[index])
    return [results[index] for index in range(len(problems))]
