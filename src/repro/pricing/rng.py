"""Random number generation for the Monte-Carlo pricers.

Premia ships several random number generators (pseudo-random and
quasi-random/low-discrepancy) that are selected as method parameters.  This
module provides the equivalent abstraction on top of NumPy:

* :class:`PseudoRandomGenerator` -- wraps :class:`numpy.random.Generator`
  (PCG64) and offers Gaussian/uniform sampling with reproducible seeding and
  independent sub-streams (one per job/path-block, used by the parallel
  Monte-Carlo pricers).
* :class:`SobolGenerator` -- quasi-Monte-Carlo sampling using
  :class:`scipy.stats.qmc.Sobol` with inverse-CDF Gaussian transformation.

Both expose the same small interface (:meth:`normals`, :meth:`uniforms`,
:meth:`spawn`) so a pricing method can swap generators without changing its
sampling code.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np
from scipy import stats
from scipy.stats import qmc

__all__ = [
    "RandomGenerator",
    "PseudoRandomGenerator",
    "SobolGenerator",
    "AntitheticGenerator",
    "cholesky_factor",
    "create_generator",
]


def cholesky_factor(correlation: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a correlation matrix, with jitter fallback.

    The matrix must be symmetric positive semi-definite; semi-definite
    matrices (e.g. perfectly correlated assets) get a tiny diagonal jitter
    before factorisation.  Both :meth:`RandomGenerator.correlated_normals`
    and the stacked kernel's multi-asset sampler go through this one
    function, so the factor (including the fallback branch) is bit-identical
    wherever correlated draws are produced.
    """
    correlation = np.asarray(correlation, dtype=float)
    d = correlation.shape[0]
    if correlation.shape != (d, d):
        raise ValueError("correlation matrix must be square")
    try:
        return np.linalg.cholesky(correlation)
    except np.linalg.LinAlgError:
        # semi-definite fallback: jitter the diagonal very slightly
        jitter = 1e-12 * np.eye(d)
        return np.linalg.cholesky(correlation + jitter)


class RandomGenerator(abc.ABC):
    """Common interface for Gaussian/uniform sample generation."""

    #: human readable generator family name
    name: str = "abstract"

    @abc.abstractmethod
    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        """Return an array of i.i.d. standard normal samples of ``shape``."""

    @abc.abstractmethod
    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        """Return an array of i.i.d. U(0, 1) samples of ``shape``."""

    @abc.abstractmethod
    def spawn(self, n: int) -> list["RandomGenerator"]:
        """Return ``n`` statistically independent child generators.

        Used to give each worker of a parallel Monte-Carlo run its own
        stream so that results do not depend on the number of workers.
        """

    def correlated_normals(self, n_samples: int, correlation: np.ndarray) -> np.ndarray:
        """Return ``(n_samples, d)`` normals with the given correlation matrix.

        The correlation matrix must be symmetric positive semi-definite; a
        Cholesky factorisation (with a tiny jitter fallback for semi-definite
        matrices) is used to induce the correlation.
        """
        chol = cholesky_factor(correlation)
        z = self.normals((n_samples, chol.shape[0]))
        return z @ chol.T


class PseudoRandomGenerator(RandomGenerator):
    """Pseudo-random generator backed by NumPy's PCG64 bit generator.

    Parameters
    ----------
    seed:
        Integer seed or :class:`numpy.random.SeedSequence`.  Two generators
        built with the same seed produce identical streams, which is what the
        non-regression workload (Table I of the paper) relies on.
    """

    name = "pcg64"

    def __init__(self, seed: int | np.random.SeedSequence | None = 0):
        if isinstance(seed, np.random.SeedSequence):
            self._seed_seq = seed
        else:
            self._seed_seq = np.random.SeedSequence(seed)
        self._rng = np.random.Generator(np.random.PCG64(self._seed_seq))

    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        return self._rng.standard_normal(shape)

    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        return self._rng.random(shape)

    def spawn(self, n: int) -> list["PseudoRandomGenerator"]:
        return [PseudoRandomGenerator(s) for s in self._seed_seq.spawn(n)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PseudoRandomGenerator(seed_entropy={self._seed_seq.entropy})"


class SobolGenerator(RandomGenerator):
    """Quasi-Monte-Carlo generator based on scrambled Sobol sequences.

    The generator is dimensioned at construction time: every call to
    :meth:`normals` or :meth:`uniforms` with shape ``(n, d)`` must use the
    same ``d`` (the problem dimension, e.g. ``n_steps * n_assets``).  One
    dimensional requests ``(n,)`` are accepted when ``dimension == 1``.
    """

    name = "sobol"

    def __init__(self, dimension: int, seed: int = 0, scramble: bool = True):
        if dimension < 1:
            raise ValueError("Sobol dimension must be >= 1")
        self.dimension = int(dimension)
        self.seed = int(seed)
        self.scramble = bool(scramble)
        self._sampler = qmc.Sobol(d=self.dimension, scramble=scramble, seed=seed)

    def _draw(self, n: int) -> np.ndarray:
        # qmc.Sobol warns when n is not a power of two; the statistical
        # properties are still fine for pricing, so silence by sampling the
        # next power of two and truncating.
        m = max(1, int(math.ceil(math.log2(max(n, 1)))))
        samples = self._sampler.random(2**m)[:n]
        # guard against exact 0/1 which break the inverse CDF transform
        eps = np.finfo(float).tiny
        return np.clip(samples, eps, 1.0 - 1e-16)

    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        n, d = self._normalise_shape(shape)
        u = self._draw(n)[:, :d]
        return u.reshape(shape)

    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        u = self.uniforms(shape)
        return stats.norm.ppf(u)

    def spawn(self, n: int) -> list["SobolGenerator"]:
        return [
            SobolGenerator(self.dimension, seed=self.seed + 7919 * (i + 1), scramble=self.scramble)
            for i in range(n)
        ]

    def _normalise_shape(self, shape: tuple[int, ...]) -> tuple[int, int]:
        if len(shape) == 1:
            if self.dimension != 1:
                raise ValueError(
                    f"1-d request incompatible with Sobol dimension {self.dimension}"
                )
            return shape[0], 1
        if len(shape) == 2:
            if shape[1] != self.dimension:
                raise ValueError(
                    f"requested dimension {shape[1]} != Sobol dimension {self.dimension}"
                )
            return shape[0], shape[1]
        raise ValueError("SobolGenerator supports 1-d or 2-d sample shapes only")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SobolGenerator(dimension={self.dimension}, seed={self.seed})"


class AntitheticGenerator(RandomGenerator):
    """Antithetic wrapper: returns mirrored pairs of samples.

    For a request of ``n`` samples (``n`` even), the first ``n/2`` come from
    the wrapped generator and the second half are their negatives (normals)
    or reflections ``1 - u`` (uniforms).  Wrapping the generator keeps the
    antithetic coupling model-agnostic: any model that consumes one row of
    random numbers per path automatically becomes antithetic.
    """

    name = "antithetic"

    def __init__(self, base: RandomGenerator):
        self.base = base

    @staticmethod
    def _check_even(n: int) -> None:
        if n % 2 != 0:
            raise ValueError("antithetic sampling requires an even number of samples")

    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        n = shape[0]
        self._check_even(n)
        half = self.base.normals((n // 2,) + tuple(shape[1:]))
        return np.concatenate([half, -half], axis=0)

    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        n = shape[0]
        self._check_even(n)
        half = self.base.uniforms((n // 2,) + tuple(shape[1:]))
        return np.concatenate([half, 1.0 - half], axis=0)

    def spawn(self, n: int) -> list["AntitheticGenerator"]:
        return [AntitheticGenerator(g) for g in self.base.spawn(n)]

    def correlated_normals(self, n_samples: int, correlation: np.ndarray) -> np.ndarray:
        self._check_even(n_samples)
        half = self.base.correlated_normals(n_samples // 2, correlation)
        return np.concatenate([half, -half], axis=0)


@dataclass(frozen=True)
class _GeneratorSpec:
    """Parsed generator specification (kind + seed)."""

    kind: str
    seed: int


def create_generator(
    kind: str = "pcg64", seed: int = 0, dimension: int = 1
) -> RandomGenerator:
    """Factory used by pricing methods to build a generator from parameters.

    Parameters
    ----------
    kind:
        ``"pcg64"`` (default pseudo-random) or ``"sobol"`` (quasi-random).
    seed:
        Reproducibility seed.
    dimension:
        Problem dimension, only used for Sobol sequences.
    """
    kind = kind.lower()
    if kind in ("pcg64", "pseudo", "mt", "random"):
        return PseudoRandomGenerator(seed)
    if kind in ("sobol", "qmc", "quasi"):
        return SobolGenerator(dimension=dimension, seed=seed)
    raise ValueError(f"unknown random generator kind: {kind!r}")
