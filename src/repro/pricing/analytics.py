"""Closed-form Black-Scholes analytics.

Pure functions implementing the standard Black-Scholes / Black-76 formulas,
their Greeks, cash-or-nothing digitals and the Reiner-Rubinstein single
barrier formulas (continuous monitoring).  They are used by

* the closed-form pricing methods (:mod:`repro.pricing.methods.closed_form`),
* the Monte-Carlo control variates,
* the test-suite, as ground truth for PDE / tree / Monte-Carlo validation.

All functions are vectorised over their first arguments (NumPy broadcasting).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

__all__ = [
    "d1",
    "d2",
    "bs_call_price",
    "bs_put_price",
    "bs_call_delta",
    "bs_put_delta",
    "bs_gamma",
    "bs_vega",
    "bs_call_theta",
    "bs_put_theta",
    "bs_call_rho",
    "bs_put_rho",
    "digital_call_price",
    "digital_put_price",
    "black_formula",
    "barrier_call_price",
    "barrier_put_price",
    "bs_implied_volatility",
]


def _validate(spot, strike, maturity, volatility):
    spot = np.asarray(spot, dtype=float)
    strike = np.asarray(strike, dtype=float)
    maturity = np.asarray(maturity, dtype=float)
    volatility = np.asarray(volatility, dtype=float)
    if np.any(spot <= 0) or np.any(strike <= 0):
        raise ValueError("spot and strike must be strictly positive")
    if np.any(maturity <= 0):
        raise ValueError("maturity must be strictly positive")
    if np.any(volatility <= 0):
        raise ValueError("volatility must be strictly positive")
    return spot, strike, maturity, volatility


def d1(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Black-Scholes ``d1`` term."""
    spot, strike, maturity, volatility = _validate(spot, strike, maturity, volatility)
    return (
        np.log(spot / strike) + (rate - dividend + 0.5 * volatility**2) * maturity
    ) / (volatility * np.sqrt(maturity))


def d2(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Black-Scholes ``d2 = d1 - sigma * sqrt(T)`` term."""
    return d1(spot, strike, rate, volatility, maturity, dividend) - np.asarray(
        volatility
    ) * np.sqrt(np.asarray(maturity))


def bs_call_price(spot, strike, rate, volatility, maturity, dividend=0.0):
    """European call price in the Black-Scholes model."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    _d2 = _d1 - volatility * np.sqrt(maturity)
    return spot * np.exp(-dividend * maturity) * norm.cdf(_d1) - strike * np.exp(
        -rate * maturity
    ) * norm.cdf(_d2)


def bs_put_price(spot, strike, rate, volatility, maturity, dividend=0.0):
    """European put price in the Black-Scholes model."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    _d2 = _d1 - volatility * np.sqrt(maturity)
    return strike * np.exp(-rate * maturity) * norm.cdf(-_d2) - spot * np.exp(
        -dividend * maturity
    ) * norm.cdf(-_d1)


def bs_call_delta(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Delta of a European call."""
    return np.exp(-dividend * maturity) * norm.cdf(
        d1(spot, strike, rate, volatility, maturity, dividend)
    )


def bs_put_delta(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Delta of a European put."""
    return np.exp(-dividend * maturity) * (
        norm.cdf(d1(spot, strike, rate, volatility, maturity, dividend)) - 1.0
    )


def bs_gamma(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Gamma (identical for calls and puts)."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    return (
        np.exp(-dividend * maturity)
        * norm.pdf(_d1)
        / (np.asarray(spot) * volatility * np.sqrt(maturity))
    )


def bs_vega(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Vega (identical for calls and puts), per unit of volatility."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    return np.asarray(spot) * np.exp(-dividend * maturity) * norm.pdf(_d1) * np.sqrt(maturity)


def bs_call_theta(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Theta of a European call (per year, derivative w.r.t. calendar time)."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    _d2 = _d1 - volatility * np.sqrt(maturity)
    term1 = (
        -np.asarray(spot)
        * np.exp(-dividend * maturity)
        * norm.pdf(_d1)
        * volatility
        / (2.0 * np.sqrt(maturity))
    )
    term2 = dividend * np.asarray(spot) * np.exp(-dividend * maturity) * norm.cdf(_d1)
    term3 = -rate * strike * np.exp(-rate * maturity) * norm.cdf(_d2)
    return term1 + term2 + term3


def bs_put_theta(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Theta of a European put (per year)."""
    _d1 = d1(spot, strike, rate, volatility, maturity, dividend)
    _d2 = _d1 - volatility * np.sqrt(maturity)
    term1 = (
        -np.asarray(spot)
        * np.exp(-dividend * maturity)
        * norm.pdf(_d1)
        * volatility
        / (2.0 * np.sqrt(maturity))
    )
    term2 = -dividend * np.asarray(spot) * np.exp(-dividend * maturity) * norm.cdf(-_d1)
    term3 = rate * strike * np.exp(-rate * maturity) * norm.cdf(-_d2)
    return term1 + term2 + term3


def bs_call_rho(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Rho of a European call (derivative w.r.t. the interest rate)."""
    _d2 = d2(spot, strike, rate, volatility, maturity, dividend)
    return strike * maturity * np.exp(-rate * maturity) * norm.cdf(_d2)


def bs_put_rho(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Rho of a European put."""
    _d2 = d2(spot, strike, rate, volatility, maturity, dividend)
    return -strike * maturity * np.exp(-rate * maturity) * norm.cdf(-_d2)


def digital_call_price(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Cash-or-nothing digital call (pays 1 if ``S_T > K``)."""
    _d2 = d2(spot, strike, rate, volatility, maturity, dividend)
    return np.exp(-rate * maturity) * norm.cdf(_d2)


def digital_put_price(spot, strike, rate, volatility, maturity, dividend=0.0):
    """Cash-or-nothing digital put (pays 1 if ``S_T < K``)."""
    _d2 = d2(spot, strike, rate, volatility, maturity, dividend)
    return np.exp(-rate * maturity) * norm.cdf(-_d2)


def black_formula(forward, strike, volatility, maturity, discount_factor, is_call=True):
    """Black-76 formula on a forward: used by the moment-matched basket proxy."""
    forward = np.asarray(forward, dtype=float)
    strike = np.asarray(strike, dtype=float)
    if np.any(forward <= 0) or np.any(strike <= 0):
        raise ValueError("forward and strike must be strictly positive")
    stddev = volatility * np.sqrt(maturity)
    _d1 = (np.log(forward / strike) + 0.5 * stddev**2) / stddev
    _d2 = _d1 - stddev
    if is_call:
        return discount_factor * (forward * norm.cdf(_d1) - strike * norm.cdf(_d2))
    return discount_factor * (strike * norm.cdf(-_d2) - forward * norm.cdf(-_d1))


# ---------------------------------------------------------------------------
# Reiner-Rubinstein barrier formulas (continuous monitoring)
# ---------------------------------------------------------------------------

def _barrier_terms(spot, strike, barrier, rate, volatility, maturity, dividend, phi, eta):
    """Common A/B/C/D terms of the Reiner-Rubinstein barrier pricing formulas.

    ``phi`` is +1 for calls and -1 for puts; ``eta`` is +1 for down barriers
    and -1 for up barriers.
    """
    sigma_sqrt = volatility * np.sqrt(maturity)
    mu = (rate - dividend - 0.5 * volatility**2) / volatility**2
    lam = mu + 1.0
    x1 = np.log(spot / strike) / sigma_sqrt + lam * sigma_sqrt
    x2 = np.log(spot / barrier) / sigma_sqrt + lam * sigma_sqrt
    y1 = np.log(barrier**2 / (spot * strike)) / sigma_sqrt + lam * sigma_sqrt
    y2 = np.log(barrier / spot) / sigma_sqrt + lam * sigma_sqrt
    df_div = np.exp(-dividend * maturity)
    df_rate = np.exp(-rate * maturity)
    hs = barrier / spot

    a = phi * spot * df_div * norm.cdf(phi * x1) - phi * strike * df_rate * norm.cdf(
        phi * (x1 - sigma_sqrt)
    )
    b = phi * spot * df_div * norm.cdf(phi * x2) - phi * strike * df_rate * norm.cdf(
        phi * (x2 - sigma_sqrt)
    )
    c = phi * spot * df_div * hs ** (2 * lam) * norm.cdf(eta * y1) - phi * strike * df_rate * hs ** (
        2 * mu
    ) * norm.cdf(eta * (y1 - sigma_sqrt))
    d = phi * spot * df_div * hs ** (2 * lam) * norm.cdf(eta * y2) - phi * strike * df_rate * hs ** (
        2 * mu
    ) * norm.cdf(eta * (y2 - sigma_sqrt))
    return a, b, c, d


def barrier_call_price(
    spot, strike, barrier, rate, volatility, maturity, dividend=0.0, barrier_type="down-out"
):
    """Continuously monitored single-barrier call price (no rebate).

    Supported ``barrier_type`` values: ``"down-out"``, ``"down-in"``,
    ``"up-out"``, ``"up-in"``.  An already knocked-out option (spot beyond
    the barrier) is worth 0; an already knocked-in option is the vanilla.
    """
    spot, strike, maturity, volatility = _validate(spot, strike, maturity, volatility)
    if barrier <= 0:
        raise ValueError("barrier must be strictly positive")
    vanilla = bs_call_price(spot, strike, rate, volatility, maturity, dividend)
    is_down = barrier_type.startswith("down")
    is_out = barrier_type.endswith("out")
    if is_down and np.any(spot <= barrier):
        knocked = True
    elif not is_down and np.any(spot >= barrier):
        knocked = True
    else:
        knocked = False
    if knocked:
        return np.zeros_like(vanilla) if is_out else vanilla

    eta = 1.0 if is_down else -1.0
    phi = 1.0
    a, b, c, d = _barrier_terms(
        spot, strike, barrier, rate, volatility, maturity, dividend, phi, eta
    )
    if is_down:
        # down-and-in call
        knock_in = c if barrier <= strike else a - b + d
    else:
        # up-and-in call
        knock_in = a if barrier <= strike else b - c + d
    knock_in = np.maximum(knock_in, 0.0)
    if is_out:
        return np.maximum(vanilla - knock_in, 0.0)
    return knock_in


def barrier_put_price(
    spot, strike, barrier, rate, volatility, maturity, dividend=0.0, barrier_type="down-out"
):
    """Continuously monitored single-barrier put price (no rebate)."""
    spot, strike, maturity, volatility = _validate(spot, strike, maturity, volatility)
    if barrier <= 0:
        raise ValueError("barrier must be strictly positive")
    vanilla = bs_put_price(spot, strike, rate, volatility, maturity, dividend)
    is_down = barrier_type.startswith("down")
    is_out = barrier_type.endswith("out")
    if is_down and np.any(spot <= barrier):
        knocked = True
    elif not is_down and np.any(spot >= barrier):
        knocked = True
    else:
        knocked = False
    if knocked:
        return np.zeros_like(vanilla) if is_out else vanilla

    eta = 1.0 if is_down else -1.0
    phi = -1.0
    a, b, c, d = _barrier_terms(
        spot, strike, barrier, rate, volatility, maturity, dividend, phi, eta
    )
    if is_down:
        # down-and-in put
        knock_in = b - c + d if barrier <= strike else a
    else:
        # up-and-in put
        knock_in = a - b + d if barrier <= strike else c
    knock_in = np.maximum(knock_in, 0.0)
    if is_out:
        return np.maximum(vanilla - knock_in, 0.0)
    return knock_in


def bs_implied_volatility(
    price, spot, strike, rate, maturity, dividend=0.0, is_call=True, tol=1e-10, max_iter=100
):
    """Implied Black-Scholes volatility via a safeguarded Newton iteration.

    Raises ``ValueError`` when the target price lies outside the no-arbitrage
    bounds of the option.
    """
    price = float(price)
    intrinsic_call = max(spot * np.exp(-dividend * maturity) - strike * np.exp(-rate * maturity), 0.0)
    intrinsic_put = max(strike * np.exp(-rate * maturity) - spot * np.exp(-dividend * maturity), 0.0)
    upper = spot * np.exp(-dividend * maturity) if is_call else strike * np.exp(-rate * maturity)
    lower = intrinsic_call if is_call else intrinsic_put
    if not lower - 1e-12 <= price <= upper + 1e-12:
        raise ValueError("price outside no-arbitrage bounds; no implied volatility exists")

    sigma = 0.3
    lo, hi = 1e-8, 5.0
    for _ in range(max_iter):
        model_price = (
            bs_call_price(spot, strike, rate, sigma, maturity, dividend)
            if is_call
            else bs_put_price(spot, strike, rate, sigma, maturity, dividend)
        )
        diff = model_price - price
        if abs(diff) < tol:
            return float(sigma)
        if diff > 0:
            hi = sigma
        else:
            lo = sigma
        vega = bs_vega(spot, strike, rate, sigma, maturity, dividend)
        if vega > 1e-12:
            newton = sigma - diff / vega
        else:
            newton = 0.5 * (lo + hi)
        # Keep the Newton step inside the bracketing interval
        sigma = newton if lo < newton < hi else 0.5 * (lo + hi)
    return float(sigma)
