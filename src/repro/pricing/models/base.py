"""Base classes for the asset-dynamics models of the pricing library.

A *model* describes the risk-neutral dynamics of one or several underlying
assets.  Every model exposes:

* static market data: ``spot``, ``rate`` (continuously compounded risk-free
  rate), ``dividend`` (continuous dividend yield);
* Monte-Carlo sampling primitives (:meth:`Model.sample_terminal`,
  :meth:`Model.simulate_paths`) used by the Monte-Carlo and
  Longstaff-Schwartz pricers;
* optional analytic structure -- a local volatility function for PDE pricers
  (:class:`DiffusionModel1D.local_volatility`) and a characteristic function
  for Fourier pricers (:meth:`Model.log_char_function`).

Parameter dictionaries returned by :meth:`Model.to_params` are plain
``dict[str, float | list]`` so they can be serialized by :mod:`repro.serial`
without custom hooks.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.rng import RandomGenerator

__all__ = ["Model", "DiffusionModel1D", "MultiAssetModel"]


class Model(abc.ABC):
    """Abstract base class of all models."""

    #: registry identifier, e.g. ``"BlackScholes1D"``
    model_name: str = "abstract"
    #: number of underlying assets
    dimension: int = 1

    def __init__(self, spot: float, rate: float, dividend: float = 0.0):
        if np.any(np.asarray(spot, dtype=float) <= 0):
            raise PricingError("spot price(s) must be strictly positive")
        self.spot = spot
        self.rate = float(rate)
        self.dividend = float(dividend)

    # -- market data -------------------------------------------------------
    def discount_factor(self, maturity: float) -> float:
        """Risk-free discount factor ``exp(-r * T)``."""
        return float(np.exp(-self.rate * maturity))

    def forward(self, maturity: float) -> float | np.ndarray:
        """Forward price(s) of the underlying(s) at ``maturity``."""
        return np.asarray(self.spot) * np.exp((self.rate - self.dividend) * maturity)

    # -- Monte-Carlo interface --------------------------------------------
    @abc.abstractmethod
    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        """Sample the asset value(s) at ``maturity``.

        Returns an array of shape ``(n_paths,)`` for one-dimensional models
        and ``(n_paths, dimension)`` for multi-asset models.  Models without
        an exact terminal law fall back to a fine Euler discretisation.
        """

    @abc.abstractmethod
    def simulate_paths(
        self, rng: RandomGenerator, n_paths: int, times: np.ndarray
    ) -> np.ndarray:
        """Simulate full paths on the grid ``times`` (which must include 0).

        Returns ``(n_paths, len(times))`` for 1-d models and
        ``(n_paths, len(times), dimension)`` for multi-asset models.
        ``paths[:, 0]`` equals the spot.
        """

    # -- analytic structure -------------------------------------------------
    def log_char_function(self, u: np.ndarray, maturity: float) -> np.ndarray:
        """Characteristic function of ``log(S_T / S_0)`` under the pricing
        measure, evaluated at ``u``.  Models without a known characteristic
        function raise :class:`PricingError`; Fourier pricers check
        compatibility through this call.
        """
        raise PricingError(
            f"model {self.model_name!r} has no known characteristic function"
        )

    # -- serialization helpers ----------------------------------------------
    @abc.abstractmethod
    def to_params(self) -> dict[str, Any]:
        """Return the constructor parameters as a plain dictionary."""

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "Model":
        """Rebuild a model from :meth:`to_params` output."""
        return cls(**params)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        if self.model_name != other.model_name:
            return False
        pa, pb = self.to_params(), other.to_params()
        if pa.keys() != pb.keys():
            return False
        for key in pa:
            if not np.allclose(np.asarray(pa[key], dtype=float),
                               np.asarray(pb[key], dtype=float)):
                return False
        return True

    def __hash__(self) -> int:  # models are used as dict keys in caches
        # memoized: serializing every parameter array via tobytes() on each
        # call is far too slow for the hot batch/cache lookups, and models
        # are treated as immutable once constructed
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            items = []
            for key, value in sorted(self.to_params().items()):
                arr = np.asarray(value, dtype=float)
                items.append((key, arr.tobytes()))
            cached = hash((self.model_name, tuple(items)))
            self.__dict__["_hash_cache"] = cached
        return cached

    def param_digest(self) -> str:
        """Memoized stable SHA-256 digest of (model name, parameters).

        Shared by the batch planner (grouping key) and the result cache
        (content address); see :mod:`repro.pricing.cache`.
        """
        cached = self.__dict__.get("_digest_cache")
        if cached is None:
            from repro.pricing.cache import model_digest

            cached = model_digest(self)
            self.__dict__["_digest_cache"] = cached
        return cached

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.to_params().items())
        return f"{type(self).__name__}({params})"


class DiffusionModel1D(Model):
    """One-dimensional diffusion ``dS = (r - q) S dt + sigma(t, S) S dW``.

    Subclasses provide :meth:`local_volatility`; path simulation defaults to a
    log-Euler scheme which is exact for constant volatility and first-order
    accurate otherwise.  PDE pricers only need :meth:`local_volatility` and
    the market data.
    """

    dimension = 1

    @abc.abstractmethod
    def local_volatility(self, t: float, s: np.ndarray) -> np.ndarray:
        """Return ``sigma(t, S)`` evaluated element-wise on ``s``."""

    # -- Monte-Carlo defaults ----------------------------------------------
    def simulate_paths(
        self, rng: RandomGenerator, n_paths: int, times: np.ndarray
    ) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        n_steps = len(times) - 1
        paths = np.empty((n_paths, n_steps + 1), dtype=float)
        paths[:, 0] = self.spot
        if n_steps == 0:
            return paths
        normals = rng.normals((n_paths, n_steps))
        drift = self.rate - self.dividend
        dts = np.diff(times)
        sqrt_dts = np.sqrt(dts)  # hoisted: one vectorized sqrt for the grid
        for k in range(n_steps):
            s = paths[:, k]
            sigma = self.local_volatility(times[k], s)
            paths[:, k + 1] = s * np.exp(
                (drift - 0.5 * sigma**2) * dts[k] + sigma * sqrt_dts[k] * normals[:, k]
            )
        return paths

    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        # generic fallback: Euler scheme with ~100 steps per year, streamed --
        # only the current spot slice is held in memory instead of the full
        # (n_paths, n_steps + 1) path matrix whose last column was all the
        # caller wanted
        n_steps = max(16, int(np.ceil(100 * maturity)))
        dt = maturity / n_steps
        sqrt_dt = float(np.sqrt(dt))
        drift = self.rate - self.dividend
        s = np.full(n_paths, float(self.spot))
        for k in range(n_steps):
            z = rng.normals((n_paths,))
            sigma = self.local_volatility(k * dt, s)
            s *= np.exp((drift - 0.5 * sigma**2) * dt + sigma * sqrt_dt * z)
        return s

    # -- stacked sampling (shared-draw kernel) ------------------------------
    @staticmethod
    def stacked_simulate_paths(
        models: "list[DiffusionModel1D]",
        rng: RandomGenerator,
        n_paths: int,
        times: np.ndarray,
    ) -> np.ndarray:
        """Log-Euler paths for several models from **one** shared normal draw.

        Returns a ``(len(models), n_paths, len(times))`` array whose row ``g``
        is bit-identical to ``models[g].simulate_paths(rng_g, n_paths, times)``
        with a fresh generator ``rng_g`` in the same state: the single
        ``(n_paths, n_steps)`` draw below is exactly what each solo call would
        draw, and every arithmetic step applies the same scalar/row operations
        in the same order (only broadcast over the leading group axis).
        """
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        n_steps = len(times) - 1
        n_groups = len(models)
        paths = np.empty((n_groups, n_paths, n_steps + 1), dtype=float)
        for g, model in enumerate(models):
            paths[g, :, 0] = model.spot
        if n_steps == 0:
            return paths
        normals = rng.normals((n_paths, n_steps))
        drifts = np.array([model.rate - model.dividend for model in models])
        dts = np.diff(times)
        sqrt_dts = np.sqrt(dts)
        for k in range(n_steps):
            s = paths[:, :, k]
            sigma = np.stack(
                [model.local_volatility(times[k], s[g]) for g, model in enumerate(models)]
            )
            paths[:, :, k + 1] = s * np.exp(
                (drifts[:, None] - 0.5 * sigma**2) * dts[k]
                + sigma * sqrt_dts[k] * normals[None, :, k]
            )
        return paths

    @staticmethod
    def stacked_sample_terminal(
        models: "list[DiffusionModel1D]",
        rng: RandomGenerator,
        n_paths: int,
        maturity: float,
    ) -> np.ndarray:
        """Streamed-Euler terminal values for several models, shared draws.

        Returns ``(len(models), n_paths)``; row ``g`` is bit-identical to the
        solo :meth:`sample_terminal` of ``models[g]`` (same per-step draw
        sequence, same update expression broadcast over the group axis).
        """
        n_steps = max(16, int(np.ceil(100 * maturity)))
        dt = maturity / n_steps
        sqrt_dt = float(np.sqrt(dt))
        drifts = np.array([model.rate - model.dividend for model in models])
        s = np.empty((len(models), n_paths), dtype=float)
        for g, model in enumerate(models):
            s[g, :] = float(model.spot)
        for k in range(n_steps):
            z = rng.normals((n_paths,))
            sigma = np.stack(
                [model.local_volatility(k * dt, s[g]) for g, model in enumerate(models)]
            )
            s *= np.exp((drifts[:, None] - 0.5 * sigma**2) * dt + sigma * sqrt_dt * z[None, :])
        return s


class MultiAssetModel(Model):
    """Base class for models driving several correlated assets."""

    def __init__(
        self,
        spot: np.ndarray,
        rate: float,
        dividend: np.ndarray | float = 0.0,
        correlation: np.ndarray | None = None,
    ):
        spot = np.atleast_1d(np.asarray(spot, dtype=float))
        super().__init__(spot=spot, rate=rate, dividend=0.0)
        self.dimension = len(spot)
        dividend = np.broadcast_to(
            np.asarray(dividend, dtype=float), (self.dimension,)
        ).copy()
        self.dividend_vector = dividend
        if correlation is None:
            correlation = np.eye(self.dimension)
        correlation = np.asarray(correlation, dtype=float)
        if correlation.shape != (self.dimension, self.dimension):
            raise PricingError(
                "correlation matrix shape does not match the number of assets"
            )
        if not np.allclose(correlation, correlation.T):
            raise PricingError("correlation matrix must be symmetric")
        if not np.allclose(np.diag(correlation), 1.0):
            raise PricingError("correlation matrix must have unit diagonal")
        eigvals = np.linalg.eigvalsh(correlation)
        if eigvals.min() < -1e-10:
            raise PricingError("correlation matrix must be positive semi-definite")
        self.correlation = correlation

    def forward(self, maturity: float) -> np.ndarray:
        return np.asarray(self.spot) * np.exp(
            (self.rate - self.dividend_vector) * maturity
        )
