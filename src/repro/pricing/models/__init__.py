"""Asset-dynamics models (the model layer of the Premia substitute).

Every model registered here can be referred to by name through
:class:`repro.pricing.engine.PricingProblem.set_model`.
"""

from repro.pricing.models.base import DiffusionModel1D, Model, MultiAssetModel
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.models.heston import HestonModel
from repro.pricing.models.local_vol import CEVModel, SmileLocalVolModel
from repro.pricing.models.merton import MertonJumpModel
from repro.pricing.models.multi_asset import MultiAssetBlackScholesModel, flat_correlation

#: name -> class mapping used by the engine registry
MODEL_CLASSES: dict[str, type[Model]] = {
    cls.model_name: cls
    for cls in (
        BlackScholesModel,
        CEVModel,
        SmileLocalVolModel,
        HestonModel,
        MertonJumpModel,
        MultiAssetBlackScholesModel,
    )
}

__all__ = [
    "Model",
    "DiffusionModel1D",
    "MultiAssetModel",
    "BlackScholesModel",
    "CEVModel",
    "SmileLocalVolModel",
    "HestonModel",
    "MertonJumpModel",
    "MultiAssetBlackScholesModel",
    "flat_correlation",
    "MODEL_CLASSES",
]
