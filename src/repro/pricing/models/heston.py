"""The Heston stochastic volatility model.

The paper's example problem file (Section 3.3) prices an American option in
the one-dimensional Heston model with the Longstaff-Schwartz Monte-Carlo
algorithm (``MC_AM_Alfonsi_LongstaffSchwartz``).  This module provides the
model dynamics:

``dS_t = (r - q) S_t dt + sqrt(V_t) S_t dW^S_t``
``dV_t = kappa (theta - V_t) dt + sigma_v sqrt(V_t) dW^V_t``
``d<W^S, W^V>_t = rho dt``

Path simulation uses a full-truncation Euler scheme by default and an
Alfonsi-style implicit scheme for the variance when requested; the exact
characteristic function (Gatheral's "little trap" formulation, numerically
stable for long maturities) is also exposed for Fourier/COS pricing which the
tests use to validate the Monte-Carlo methods.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.models.base import Model
from repro.pricing.rng import RandomGenerator

__all__ = ["HestonModel"]


class HestonModel(Model):
    """Heston (1993) stochastic volatility model.

    Parameters
    ----------
    spot, rate, dividend:
        Usual market data.
    v0:
        Initial instantaneous variance ``V_0 > 0``.
    kappa:
        Mean-reversion speed of the variance.
    theta:
        Long-run variance level.
    sigma_v:
        Volatility of variance ("vol of vol").
    rho:
        Correlation between the asset and variance Brownian motions,
        ``-1 <= rho <= 1``.
    """

    model_name = "Heston1D"
    dimension = 1

    def __init__(
        self,
        spot: float,
        rate: float,
        v0: float,
        kappa: float,
        theta: float,
        sigma_v: float,
        rho: float,
        dividend: float = 0.0,
    ):
        super().__init__(spot=float(spot), rate=rate, dividend=dividend)
        if v0 <= 0 or theta <= 0:
            raise PricingError("initial and long-run variance must be positive")
        if kappa <= 0 or sigma_v <= 0:
            raise PricingError("kappa and sigma_v must be positive")
        if not -1.0 <= rho <= 1.0:
            raise PricingError("rho must lie in [-1, 1]")
        self.v0 = float(v0)
        self.kappa = float(kappa)
        self.theta = float(theta)
        self.sigma_v = float(sigma_v)
        self.rho = float(rho)

    @property
    def feller_satisfied(self) -> bool:
        """Whether the Feller condition ``2 kappa theta >= sigma_v^2`` holds
        (variance stays strictly positive in continuous time)."""
        return 2.0 * self.kappa * self.theta >= self.sigma_v**2

    # -- characteristic function ---------------------------------------------
    def log_char_function(self, u: np.ndarray, maturity: float) -> np.ndarray:
        """Characteristic function of ``log(S_T / S_0)``.

        Uses the formulation of Gatheral / Albrecher et al. that avoids the
        branch-cut discontinuity of the original Heston formula.
        """
        u = np.asarray(u, dtype=complex)
        kappa, theta, sigma, rho, v0 = (
            self.kappa,
            self.theta,
            self.sigma_v,
            self.rho,
            self.v0,
        )
        t = maturity
        mu = self.rate - self.dividend

        d = np.sqrt((rho * sigma * 1j * u - kappa) ** 2 + sigma**2 * (1j * u + u**2))
        g = (kappa - rho * sigma * 1j * u - d) / (kappa - rho * sigma * 1j * u + d)

        exp_dt = np.exp(-d * t)
        c = (
            kappa
            * theta
            / sigma**2
            * (
                (kappa - rho * sigma * 1j * u - d) * t
                - 2.0 * np.log((1.0 - g * exp_dt) / (1.0 - g))
            )
        )
        dfun = (
            (kappa - rho * sigma * 1j * u - d)
            / sigma**2
            * ((1.0 - exp_dt) / (1.0 - g * exp_dt))
        )
        return np.exp(1j * u * mu * t + c + dfun * v0)

    # -- path simulation --------------------------------------------------------
    def simulate_paths(
        self,
        rng: RandomGenerator,
        n_paths: int,
        times: np.ndarray,
        scheme: str = "full_truncation",
        return_variance: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Simulate asset paths (and optionally variance paths).

        Parameters
        ----------
        scheme:
            ``"full_truncation"`` (Lord et al. Euler scheme, default) or
            ``"alfonsi"`` (implicit drift scheme for the variance, the scheme
            named in the paper's example method).
        return_variance:
            When ``True`` return ``(asset_paths, variance_paths)``.
        """
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        if scheme not in ("full_truncation", "alfonsi"):
            raise PricingError(f"unknown Heston simulation scheme: {scheme!r}")
        n_steps = len(times) - 1
        s = np.full(n_paths, float(self.spot))
        v = np.full(n_paths, self.v0)
        s_paths = np.empty((n_paths, n_steps + 1))
        v_paths = np.empty((n_paths, n_steps + 1))
        s_paths[:, 0] = s
        v_paths[:, 0] = v
        drift = self.rate - self.dividend
        rho = self.rho
        rho_bar = np.sqrt(max(1.0 - rho**2, 0.0))
        for k in range(n_steps):
            dt = times[k + 1] - times[k]
            sqrt_dt = np.sqrt(dt)
            z = rng.normals((n_paths, 2))
            dw_v = z[:, 0] * sqrt_dt
            dw_s = (rho * z[:, 0] + rho_bar * z[:, 1]) * sqrt_dt

            v_plus = np.maximum(v, 0.0)
            if scheme == "full_truncation":
                v_next = (
                    v
                    + self.kappa * (self.theta - v_plus) * dt
                    + self.sigma_v * np.sqrt(v_plus) * dw_v
                )
            else:  # alfonsi: implicit in the mean-reversion drift
                sqrt_v = np.sqrt(v_plus)
                numerator = (
                    sqrt_v
                    + self.sigma_v * dw_v / 2.0
                )
                v_next = (
                    numerator**2
                    + self.kappa * (self.theta - v_plus) * dt
                    - self.sigma_v**2 * dt / 4.0
                ) / (1.0 + self.kappa * dt / 2.0) + v_plus * self.kappa * dt / 2.0 / (
                    1.0 + self.kappa * dt / 2.0
                )
            s = s * np.exp((drift - 0.5 * v_plus) * dt + np.sqrt(v_plus) * dw_s)
            v = v_next
            s_paths[:, k + 1] = s
            v_paths[:, k + 1] = np.maximum(v, 0.0)
        if return_variance:
            return s_paths, v_paths
        return s_paths

    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        n_steps = max(32, int(np.ceil(100 * maturity)))
        times = np.linspace(0.0, maturity, n_steps + 1)
        return self.simulate_paths(rng, n_paths, times)[:, -1]

    # -- serialization -----------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        return {
            "spot": self.spot,
            "rate": self.rate,
            "v0": self.v0,
            "kappa": self.kappa,
            "theta": self.theta,
            "sigma_v": self.sigma_v,
            "rho": self.rho,
            "dividend": self.dividend,
        }
