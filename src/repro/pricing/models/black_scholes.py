"""The standard one-dimensional Black-Scholes model.

This is the workhorse model of the benchmark: the toy portfolio of Table II
and the plain-vanilla / barrier / American slices of the realistic portfolio
of Table III are all priced under this model.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.models.base import DiffusionModel1D
from repro.pricing.rng import RandomGenerator

__all__ = ["BlackScholesModel"]


class BlackScholesModel(DiffusionModel1D):
    """Geometric Brownian motion ``dS = (r - q) S dt + sigma S dW``.

    Parameters
    ----------
    spot:
        Current asset price ``S_0 > 0``.
    rate:
        Continuously compounded risk-free interest rate.
    volatility:
        Constant lognormal volatility ``sigma > 0``.
    dividend:
        Continuous dividend yield ``q`` (default 0).
    """

    model_name = "BlackScholes1D"

    def __init__(self, spot: float, rate: float, volatility: float, dividend: float = 0.0):
        super().__init__(spot=float(spot), rate=rate, dividend=dividend)
        if volatility <= 0:
            raise PricingError("volatility must be strictly positive")
        self.volatility = float(volatility)

    # -- analytic structure -------------------------------------------------
    def local_volatility(self, t: float, s: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(s, dtype=float), self.volatility)

    def log_char_function(self, u: np.ndarray, maturity: float) -> np.ndarray:
        """Characteristic function of ``log(S_T / S_0)``."""
        u = np.asarray(u, dtype=complex)
        mu = (self.rate - self.dividend - 0.5 * self.volatility**2) * maturity
        var = self.volatility**2 * maturity
        return np.exp(1j * u * mu - 0.5 * var * u**2)

    # -- exact sampling ------------------------------------------------------
    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        """Exact lognormal sampling of ``S_T`` (no discretisation error)."""
        z = rng.normals((n_paths,))
        drift = (self.rate - self.dividend - 0.5 * self.volatility**2) * maturity
        return self.spot * np.exp(drift + self.volatility * np.sqrt(maturity) * z)

    def simulate_paths(
        self, rng: RandomGenerator, n_paths: int, times: np.ndarray
    ) -> np.ndarray:
        """Exact simulation on an arbitrary time grid.

        Because increments of the driving Brownian motion are independent,
        the scheme is exact at the grid points (unlike the generic Euler
        fallback of :class:`DiffusionModel1D`).
        """
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        dts = np.diff(times)
        if np.any(dts <= 0):
            raise PricingError("time grid must be strictly increasing")
        n_steps = len(dts)
        z = rng.normals((n_paths, n_steps))
        drift = (self.rate - self.dividend - 0.5 * self.volatility**2) * dts
        diffusion = self.volatility * np.sqrt(dts) * z
        log_increments = drift[None, :] + diffusion
        log_paths = np.concatenate(
            [np.zeros((n_paths, 1)), np.cumsum(log_increments, axis=1)], axis=1
        )
        return self.spot * np.exp(log_paths)

    # -- stacked sampling (shared-draw kernel) ------------------------------
    @staticmethod
    def stacked_sample_terminal(
        models: "list[BlackScholesModel]",
        rng: RandomGenerator,
        n_paths: int,
        maturity: float,
    ) -> np.ndarray:
        """Exact terminal sampling for several models from one shared draw.

        Returns ``(len(models), n_paths)``; row ``g`` is bit-identical to
        ``models[g].sample_terminal`` with a fresh generator in the same
        state -- the expression below is the solo expression with the scalar
        drift/volatility broadcast down the group axis.
        """
        z = rng.normals((n_paths,))
        spots = np.array([model.spot for model in models])
        vols = np.array([model.volatility for model in models])
        drifts = np.array(
            [
                (model.rate - model.dividend - 0.5 * model.volatility**2) * maturity
                for model in models
            ]
        )
        return spots[:, None] * np.exp(
            drifts[:, None] + (vols * np.sqrt(maturity))[:, None] * z[None, :]
        )

    @staticmethod
    def stacked_simulate_paths(
        models: "list[BlackScholesModel]",
        rng: RandomGenerator,
        n_paths: int,
        times: np.ndarray,
    ) -> np.ndarray:
        """Exact path simulation for several models from one shared draw.

        Returns ``(len(models), n_paths, len(times))``; row ``g`` mirrors the
        solo :meth:`simulate_paths` operation for operation (same cumulative
        sum along the step axis, same exp/scale), so it is bit-identical to
        what ``models[g]`` would simulate alone.
        """
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        dts = np.diff(times)
        if np.any(dts <= 0):
            raise PricingError("time grid must be strictly increasing")
        n_steps = len(dts)
        n_groups = len(models)
        z = rng.normals((n_paths, n_steps))
        spots = np.array([model.spot for model in models])
        vols = np.array([model.volatility for model in models])
        coefs = np.array(
            [model.rate - model.dividend - 0.5 * model.volatility**2 for model in models]
        )
        drift = coefs[:, None] * dts[None, :]  # (G, n_steps)
        diffusion = (vols[:, None] * np.sqrt(dts)[None, :])[:, None, :] * z[None, :, :]
        log_increments = drift[:, None, :] + diffusion
        log_paths = np.concatenate(
            [np.zeros((n_groups, n_paths, 1)), np.cumsum(log_increments, axis=2)], axis=2
        )
        return spots[:, None, None] * np.exp(log_paths)

    # -- serialization -------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        return {
            "spot": self.spot,
            "rate": self.rate,
            "volatility": self.volatility,
            "dividend": self.dividend,
        }

    # -- convenience ----------------------------------------------------------
    def with_spot(self, spot: float) -> "BlackScholesModel":
        """Return a copy of the model with a bumped spot (used for Greeks)."""
        return BlackScholesModel(
            spot=spot, rate=self.rate, volatility=self.volatility, dividend=self.dividend
        )

    def with_volatility(self, volatility: float) -> "BlackScholesModel":
        """Return a copy of the model with a bumped volatility (vega bumps)."""
        return BlackScholesModel(
            spot=self.spot, rate=self.rate, volatility=volatility, dividend=self.dividend
        )
