"""Merton jump-diffusion model (a simple Lévy model).

Premia's public release "contains ... models going from the standard
Black-Scholes model to more complex models such as local and stochastic
volatility models and even Lévy models".  The Merton (1976) lognormal
jump-diffusion is the canonical Lévy example and is included so the
non-regression workload (Table I) exercises a jump model too.

``dS/S = (r - q - lambda * kbar) dt + sigma dW + (e^J - 1) dN``

where ``N`` is a Poisson process of intensity ``lambda`` and jump sizes
``J ~ N(jump_mean, jump_std^2)``; ``kbar = E[e^J - 1]``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.models.base import Model
from repro.pricing.rng import RandomGenerator

__all__ = ["MertonJumpModel"]


class MertonJumpModel(Model):
    """Merton lognormal jump-diffusion."""

    model_name = "MertonJump1D"
    dimension = 1

    def __init__(
        self,
        spot: float,
        rate: float,
        volatility: float,
        jump_intensity: float,
        jump_mean: float,
        jump_std: float,
        dividend: float = 0.0,
    ):
        super().__init__(spot=float(spot), rate=rate, dividend=dividend)
        if volatility <= 0:
            raise PricingError("volatility must be strictly positive")
        if jump_intensity < 0:
            raise PricingError("jump intensity must be non-negative")
        if jump_std < 0:
            raise PricingError("jump size standard deviation must be non-negative")
        self.volatility = float(volatility)
        self.jump_intensity = float(jump_intensity)
        self.jump_mean = float(jump_mean)
        self.jump_std = float(jump_std)

    @property
    def mean_relative_jump(self) -> float:
        """``kbar = E[e^J - 1]`` -- the drift compensator."""
        return float(np.exp(self.jump_mean + 0.5 * self.jump_std**2) - 1.0)

    # -- characteristic function ---------------------------------------------
    def log_char_function(self, u: np.ndarray, maturity: float) -> np.ndarray:
        u = np.asarray(u, dtype=complex)
        sigma2 = self.volatility**2
        kbar = self.mean_relative_jump
        drift = self.rate - self.dividend - 0.5 * sigma2 - self.jump_intensity * kbar
        jump_cf = np.exp(1j * u * self.jump_mean - 0.5 * self.jump_std**2 * u**2)
        exponent = (
            1j * u * drift * maturity
            - 0.5 * sigma2 * u**2 * maturity
            + self.jump_intensity * maturity * (jump_cf - 1.0)
        )
        return np.exp(exponent)

    # -- sampling ----------------------------------------------------------------
    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        """Exact terminal sampling: Brownian part + compound Poisson jumps."""
        z = rng.normals((n_paths,))
        # Poisson counts via inverse transform on uniforms so that Sobol
        # generators remain usable.
        u = rng.uniforms((n_paths,))
        from scipy import stats

        counts = stats.poisson.ppf(u, self.jump_intensity * maturity).astype(int)
        jump_sum = np.zeros(n_paths)
        max_count = int(counts.max()) if n_paths else 0
        if max_count > 0:
            jump_normals = rng.normals((n_paths, max_count))
            mask = np.arange(max_count)[None, :] < counts[:, None]
            jumps = self.jump_mean + self.jump_std * jump_normals
            jump_sum = np.where(mask, jumps, 0.0).sum(axis=1)
        sigma = self.volatility
        drift = (
            self.rate
            - self.dividend
            - 0.5 * sigma**2
            - self.jump_intensity * self.mean_relative_jump
        ) * maturity
        return self.spot * np.exp(drift + sigma * np.sqrt(maturity) * z + jump_sum)

    def simulate_paths(
        self, rng: RandomGenerator, n_paths: int, times: np.ndarray
    ) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        dts = np.diff(times)
        n_steps = len(dts)
        paths = np.empty((n_paths, n_steps + 1))
        paths[:, 0] = self.spot
        sigma = self.volatility
        comp_drift = (
            self.rate
            - self.dividend
            - 0.5 * sigma**2
            - self.jump_intensity * self.mean_relative_jump
        )
        from scipy import stats

        for k, dt in enumerate(dts):
            z = rng.normals((n_paths,))
            u = rng.uniforms((n_paths,))
            counts = stats.poisson.ppf(u, self.jump_intensity * dt).astype(int)
            jump_sum = np.zeros(n_paths)
            max_count = int(counts.max()) if n_paths else 0
            if max_count > 0:
                jn = rng.normals((n_paths, max_count))
                mask = np.arange(max_count)[None, :] < counts[:, None]
                jump_sum = np.where(mask, self.jump_mean + self.jump_std * jn, 0.0).sum(axis=1)
            paths[:, k + 1] = paths[:, k] * np.exp(
                comp_drift * dt + sigma * np.sqrt(dt) * z + jump_sum
            )
        return paths

    # -- serialization -------------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        return {
            "spot": self.spot,
            "rate": self.rate,
            "volatility": self.volatility,
            "jump_intensity": self.jump_intensity,
            "jump_mean": self.jump_mean,
            "jump_std": self.jump_std,
            "dividend": self.dividend,
        }
