"""Multi-asset Black-Scholes model for basket and high-dimensional products.

The realistic portfolio of Section 4.3 contains 525 put options on a
40-dimensional basket (Cac 40-like index baskets) and 525 American put
options on a 7-dimensional basket.  Both are priced by (American)
Monte-Carlo under a correlated multi-asset geometric Brownian motion, which
this module provides.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.models.base import MultiAssetModel
from repro.pricing.rng import AntitheticGenerator, RandomGenerator, cholesky_factor

__all__ = ["MultiAssetBlackScholesModel", "flat_correlation"]


def flat_correlation(dimension: int, rho: float) -> np.ndarray:
    """Build an equicorrelation matrix ``(1 - rho) I + rho 11^T``.

    Such a matrix is positive semi-definite iff
    ``-1 / (d - 1) <= rho <= 1``; the bound is checked here so that model
    construction fails fast on invalid configurations.
    """
    if dimension < 1:
        raise PricingError("dimension must be >= 1")
    if dimension > 1:
        low = -1.0 / (dimension - 1)
    else:
        low = -1.0
    if not low - 1e-12 <= rho <= 1.0 + 1e-12:
        raise PricingError(
            f"equicorrelation {rho} outside the admissible range [{low:.4f}, 1]"
        )
    corr = np.full((dimension, dimension), rho, dtype=float)
    np.fill_diagonal(corr, 1.0)
    return corr


class MultiAssetBlackScholesModel(MultiAssetModel):
    """Correlated multi-asset geometric Brownian motion.

    ``dS_i = (r - q_i) S_i dt + sigma_i S_i dW_i``, with
    ``d<W_i, W_j> = rho_ij dt``.

    Parameters
    ----------
    spot:
        Vector of initial asset prices (length ``d``).
    rate:
        Common risk-free rate.
    volatilities:
        Vector of lognormal volatilities (length ``d``), or a scalar
        broadcast to all assets.
    correlation:
        ``d x d`` correlation matrix (default: identity).
    dividends:
        Vector of dividend yields or scalar (default 0).
    """

    model_name = "BlackScholesND"

    def __init__(
        self,
        spot: np.ndarray,
        rate: float,
        volatilities: np.ndarray | float,
        correlation: np.ndarray | None = None,
        dividends: np.ndarray | float = 0.0,
    ):
        super().__init__(spot=spot, rate=rate, dividend=dividends, correlation=correlation)
        vols = np.broadcast_to(
            np.asarray(volatilities, dtype=float), (self.dimension,)
        ).copy()
        if np.any(vols <= 0):
            raise PricingError("all volatilities must be strictly positive")
        self.volatilities = vols

    # -- exact sampling -----------------------------------------------------
    def sample_terminal(
        self, rng: RandomGenerator, n_paths: int, maturity: float
    ) -> np.ndarray:
        """Exact sampling of the terminal vector ``S_T`` -- shape ``(n, d)``."""
        z = rng.correlated_normals(n_paths, self.correlation)
        drift = (
            self.rate - self.dividend_vector - 0.5 * self.volatilities**2
        ) * maturity
        diffusion = self.volatilities * np.sqrt(maturity) * z
        return np.asarray(self.spot)[None, :] * np.exp(drift[None, :] + diffusion)

    def simulate_paths(
        self, rng: RandomGenerator, n_paths: int, times: np.ndarray
    ) -> np.ndarray:
        """Exact simulation on a grid -- shape ``(n_paths, n_times, d)``."""
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        dts = np.diff(times)
        if np.any(dts <= 0):
            raise PricingError("time grid must be strictly increasing")
        n_steps = len(dts)
        d = self.dimension
        paths = np.empty((n_paths, n_steps + 1, d))
        paths[:, 0, :] = np.asarray(self.spot)[None, :]
        log_s = np.log(np.asarray(self.spot, dtype=float))[None, :].repeat(n_paths, axis=0)
        drift_rate = self.rate - self.dividend_vector - 0.5 * self.volatilities**2
        sqrt_dts = np.sqrt(dts)  # hoisted out of the step loop
        for k, dt in enumerate(dts):
            z = rng.correlated_normals(n_paths, self.correlation)
            log_s = log_s + (drift_rate * dt)[None, :] + self.volatilities * sqrt_dts[k] * z
            paths[:, k + 1, :] = np.exp(log_s)
        return paths

    # -- stacked sampling (shared-draw kernel) ------------------------------
    @staticmethod
    def _stacked_correlated(
        models: "list[MultiAssetBlackScholesModel]", rng: RandomGenerator, n_paths: int
    ) -> "list[np.ndarray]":
        """One raw normal draw, correlated per model via its Cholesky factor.

        Mirrors :meth:`RandomGenerator.correlated_normals` (and its
        antithetic wrapper) exactly: the raw ``(n, d)`` draw is shared, and
        each model's correlation is induced by the same ``z @ chol.T``
        product (same :func:`~repro.pricing.rng.cholesky_factor`, including
        the jitter fallback) that a solo simulation would compute.
        """
        chols = [cholesky_factor(model.correlation) for model in models]
        d = models[0].dimension
        # models with bit-equal correlation matrices get bit-equal factors,
        # so the (expensive) product is computed once per distinct factor
        # and the result shared -- downstream code only reads the draws
        products: dict[bytes, np.ndarray] = {}

        def correlate(raw: np.ndarray, chol: np.ndarray) -> np.ndarray:
            key = chol.tobytes()
            z = products.get(key)
            if z is None:
                z = raw @ chol.T
                products[key] = z
            return z

        if isinstance(rng, AntitheticGenerator):
            AntitheticGenerator._check_even(n_paths)
            raw = rng.base.normals((n_paths // 2, d))
            mirrored: dict[bytes, np.ndarray] = {}
            out = []
            for chol in chols:
                key = chol.tobytes()
                full = mirrored.get(key)
                if full is None:
                    half = correlate(raw, chol)
                    full = np.concatenate([half, -half], axis=0)
                    mirrored[key] = full
                out.append(full)
            return out
        raw = rng.normals((n_paths, d))
        return [correlate(raw, chol) for chol in chols]

    @staticmethod
    def stacked_sample_terminal(
        models: "list[MultiAssetBlackScholesModel]",
        rng: RandomGenerator,
        n_paths: int,
        maturity: float,
    ) -> "list[np.ndarray]":
        """Exact terminal sampling for several models from one raw draw.

        Returns one ``(n_paths, d)`` array per model, each bit-identical to
        the solo :meth:`sample_terminal` with a fresh generator in the same
        state; only the underlying standard-normal draw is shared, the
        per-model correlation/drift/diffusion arithmetic is the solo code.
        """
        zs = MultiAssetBlackScholesModel._stacked_correlated(models, rng, n_paths)
        out = []
        for model, z in zip(models, zs):
            drift = (
                model.rate - model.dividend_vector - 0.5 * model.volatilities**2
            ) * maturity
            diffusion = model.volatilities * np.sqrt(maturity) * z
            out.append(np.asarray(model.spot)[None, :] * np.exp(drift[None, :] + diffusion))
        return out

    @staticmethod
    def stacked_simulate_paths(
        models: "list[MultiAssetBlackScholesModel]",
        rng: RandomGenerator,
        n_paths: int,
        times: np.ndarray,
    ) -> "list[np.ndarray]":
        """Exact path simulation for several models from shared raw draws.

        Returns one ``(n_paths, n_times, d)`` array per model; the per-step
        raw draw is shared, everything else is the solo update expression.
        """
        times = np.asarray(times, dtype=float)
        if times[0] != 0.0:
            raise PricingError("time grid must start at 0")
        dts = np.diff(times)
        if np.any(dts <= 0):
            raise PricingError("time grid must be strictly increasing")
        n_steps = len(dts)
        d = models[0].dimension
        paths = []
        log_s = []
        for model in models:
            arr = np.empty((n_paths, n_steps + 1, d))
            arr[:, 0, :] = np.asarray(model.spot)[None, :]
            paths.append(arr)
            log_s.append(
                np.log(np.asarray(model.spot, dtype=float))[None, :].repeat(n_paths, axis=0)
            )
        sqrt_dts = np.sqrt(dts)
        for k, dt in enumerate(dts):
            zs = MultiAssetBlackScholesModel._stacked_correlated(models, rng, n_paths)
            for g, model in enumerate(models):
                drift_rate = (
                    model.rate - model.dividend_vector - 0.5 * model.volatilities**2
                )
                log_s[g] = (
                    log_s[g] + (drift_rate * dt)[None, :] + model.volatilities * sqrt_dts[k] * zs[g]
                )
                paths[g][:, k + 1, :] = np.exp(log_s[g])
        return paths

    # -- analytic helpers ------------------------------------------------------
    def basket_forward(self, weights: np.ndarray, maturity: float) -> float:
        """Forward value of the weighted basket ``sum_i w_i S_i``."""
        weights = np.asarray(weights, dtype=float)
        return float(np.sum(weights * self.forward(maturity)))

    def basket_lognormal_proxy(
        self, weights: np.ndarray, maturity: float
    ) -> tuple[float, float]:
        """Moment-matched lognormal proxy for the basket value at maturity.

        Returns ``(forward, volatility)`` of a lognormal random variable with
        the same first two moments as the basket.  Used by the approximate
        closed-form basket pricer (a control variate and sanity check for the
        Monte-Carlo basket pricers).
        """
        weights = np.asarray(weights, dtype=float)
        fwd_i = np.asarray(self.forward(maturity), dtype=float)
        m1 = float(np.sum(weights * fwd_i))
        if m1 <= 0:
            raise PricingError("basket forward must be positive for the lognormal proxy")
        cov = (
            np.outer(self.volatilities, self.volatilities) * self.correlation * maturity
        )
        weighted = np.outer(weights * fwd_i, weights * fwd_i) * np.exp(cov)
        m2 = float(np.sum(weighted))
        var_log = np.log(max(m2, m1**2 * (1 + 1e-16)) / m1**2)
        vol = float(np.sqrt(max(var_log, 1e-16) / maturity))
        return m1, vol

    # -- serialization -----------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        return {
            "spot": np.asarray(self.spot, dtype=float).tolist(),
            "rate": self.rate,
            "volatilities": self.volatilities.tolist(),
            "correlation": self.correlation.tolist(),
            "dividends": self.dividend_vector.tolist(),
        }
