"""Local volatility models.

The realistic portfolio of the paper (Section 4.3) includes 1025 call options
priced by Monte-Carlo *"in a local volatility model which is very close to the
Black & Scholes model but in which the volatility is not constant anymore but
rather depends on the current time and stock price"*.

Two parametric local-volatility surfaces are provided:

* :class:`CEVModel` -- constant elasticity of variance,
  ``sigma(t, S) = sigma0 * (S / S0)**(beta - 1)``;
* :class:`SmileLocalVolModel` -- a smooth time/moneyness-dependent surface
  with a skew and a term structure, mimicking a calibrated Dupire surface
  without requiring market data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.models.base import DiffusionModel1D

__all__ = ["CEVModel", "SmileLocalVolModel"]


class CEVModel(DiffusionModel1D):
    """Constant Elasticity of Variance local volatility model.

    ``dS = (r - q) S dt + sigma0 * (S / S0)**(beta - 1) * S dW``

    ``beta = 1`` recovers Black-Scholes; ``beta < 1`` produces the downward
    sloping implied-volatility skew typical of equity markets.
    """

    model_name = "CEV1D"

    def __init__(
        self,
        spot: float,
        rate: float,
        volatility: float,
        beta: float = 0.7,
        dividend: float = 0.0,
    ):
        super().__init__(spot=float(spot), rate=rate, dividend=dividend)
        if volatility <= 0:
            raise PricingError("volatility must be strictly positive")
        if not 0.0 < beta <= 2.0:
            raise PricingError("CEV beta must lie in (0, 2]")
        self.volatility = float(volatility)
        self.beta = float(beta)

    def local_volatility(self, t: float, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=float)
        # floor the ratio to avoid overflow for beta < 1 near zero
        ratio = np.maximum(s / self.spot, 1e-8)
        return self.volatility * ratio ** (self.beta - 1.0)

    def to_params(self) -> dict[str, Any]:
        return {
            "spot": self.spot,
            "rate": self.rate,
            "volatility": self.volatility,
            "beta": self.beta,
            "dividend": self.dividend,
        }


class SmileLocalVolModel(DiffusionModel1D):
    """Parametric smile/term-structure local volatility surface.

    The surface is

    ``sigma(t, S) = base * (1 + skew * log(S0 / S)) * (1 + term * exp(-t))``

    clipped to ``[vol_floor, vol_cap]``.  It is smooth, strictly positive and
    reduces to Black-Scholes when ``skew = term = 0``, which the tests use as
    a consistency check.
    """

    model_name = "LocalVolSmile1D"

    def __init__(
        self,
        spot: float,
        rate: float,
        base_volatility: float,
        skew: float = 0.3,
        term: float = 0.1,
        dividend: float = 0.0,
        vol_floor: float = 0.01,
        vol_cap: float = 2.0,
    ):
        super().__init__(spot=float(spot), rate=rate, dividend=dividend)
        if base_volatility <= 0:
            raise PricingError("base volatility must be strictly positive")
        if vol_floor <= 0 or vol_cap <= vol_floor:
            raise PricingError("volatility bounds must satisfy 0 < floor < cap")
        self.base_volatility = float(base_volatility)
        self.skew = float(skew)
        self.term = float(term)
        self.vol_floor = float(vol_floor)
        self.vol_cap = float(vol_cap)

    def local_volatility(self, t: float, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=float)
        log_moneyness = np.log(np.maximum(self.spot / np.maximum(s, 1e-12), 1e-12))
        sigma = (
            self.base_volatility
            * (1.0 + self.skew * log_moneyness)
            * (1.0 + self.term * np.exp(-t))
        )
        return np.clip(sigma, self.vol_floor, self.vol_cap)

    def to_params(self) -> dict[str, Any]:
        return {
            "spot": self.spot,
            "rate": self.rate,
            "base_volatility": self.base_volatility,
            "skew": self.skew,
            "term": self.term,
            "dividend": self.dividend,
            "vol_floor": self.vol_floor,
            "vol_cap": self.vol_cap,
        }
