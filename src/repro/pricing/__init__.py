"""``repro.pricing`` -- the option pricing library (Premia substitute).

The public surface is organised like Premia's (asset, model, option, method)
tuples:

* models: :mod:`repro.pricing.models` (Black-Scholes, local volatility,
  Heston, Merton, correlated multi-asset Black-Scholes);
* options/products: :mod:`repro.pricing.products` (vanilla, digital, barrier,
  basket, Asian, American);
* methods: :mod:`repro.pricing.methods` (closed form, finite differences,
  trees, Monte-Carlo, Longstaff-Schwartz, Fourier-COS);
* the engine: :class:`repro.pricing.engine.PricingProblem`, the analogue of
  Premia's ``PremiaModel`` object, with name-based registries.
"""

from repro.pricing import analytics
from repro.pricing.batch import (
    BatchPlan,
    ProblemBatch,
    SimulationSignature,
    plan_batches,
    price_problems,
    simulation_signature,
)
from repro.pricing.cache import (
    CacheStats,
    ResultCache,
    model_digest,
    problem_digest,
    stable_digest,
)
from repro.pricing.engine import (
    ASSET_CLASSES,
    PricingProblem,
    compatible_methods,
    list_methods,
    list_models,
    list_products,
    premia_create,
    register_method,
    register_method_alias,
    register_model,
    register_product,
)
from repro.pricing.greeks import GreekReport, bump_model, compute_greeks
from repro.pricing.methods import (
    METHOD_CLASSES,
    BinomialTree,
    ClosedFormBarrier,
    ClosedFormBasketApprox,
    ClosedFormCall,
    ClosedFormDigital,
    ClosedFormPut,
    FourierCOS,
    LongstaffSchwartz,
    MonteCarloEuropean,
    PDEAmerican,
    PDEBarrier,
    PDEEuropean,
    PricingMethod,
    PricingResult,
    TrinomialTree,
)
from repro.pricing.models import (
    MODEL_CLASSES,
    BlackScholesModel,
    CEVModel,
    HestonModel,
    MertonJumpModel,
    Model,
    MultiAssetBlackScholesModel,
    SmileLocalVolModel,
    flat_correlation,
)
from repro.pricing.products import (
    PRODUCT_CLASSES,
    AmericanBasketCall,
    AmericanBasketPut,
    AmericanCall,
    AmericanPut,
    AsianCall,
    AsianPut,
    BarrierOption,
    BasketCall,
    BasketPut,
    DigitalCall,
    DigitalPut,
    DownOutCall,
    DownOutPut,
    EuropeanCall,
    EuropeanPut,
    Product,
    UpOutCall,
    UpOutPut,
)
from repro.pricing.rng import (
    AntitheticGenerator,
    PseudoRandomGenerator,
    RandomGenerator,
    SobolGenerator,
    create_generator,
)

__all__ = [
    # engine
    "PricingProblem",
    "premia_create",
    "register_model",
    "register_product",
    "register_method",
    "register_method_alias",
    "list_models",
    "list_products",
    "list_methods",
    "compatible_methods",
    "ASSET_CLASSES",
    # batch pricing & result cache
    "BatchPlan",
    "ProblemBatch",
    "SimulationSignature",
    "plan_batches",
    "price_problems",
    "simulation_signature",
    "CacheStats",
    "ResultCache",
    "model_digest",
    "problem_digest",
    "stable_digest",
    # models
    "Model",
    "BlackScholesModel",
    "CEVModel",
    "SmileLocalVolModel",
    "HestonModel",
    "MertonJumpModel",
    "MultiAssetBlackScholesModel",
    "flat_correlation",
    "MODEL_CLASSES",
    # products
    "Product",
    "EuropeanCall",
    "EuropeanPut",
    "DigitalCall",
    "DigitalPut",
    "BarrierOption",
    "DownOutCall",
    "DownOutPut",
    "UpOutCall",
    "UpOutPut",
    "BasketCall",
    "BasketPut",
    "AsianCall",
    "AsianPut",
    "AmericanCall",
    "AmericanPut",
    "AmericanBasketCall",
    "AmericanBasketPut",
    "PRODUCT_CLASSES",
    # methods
    "PricingMethod",
    "PricingResult",
    "ClosedFormCall",
    "ClosedFormPut",
    "ClosedFormDigital",
    "ClosedFormBarrier",
    "ClosedFormBasketApprox",
    "PDEEuropean",
    "PDEBarrier",
    "PDEAmerican",
    "BinomialTree",
    "TrinomialTree",
    "MonteCarloEuropean",
    "LongstaffSchwartz",
    "FourierCOS",
    "METHOD_CLASSES",
    # greeks & rng
    "GreekReport",
    "compute_greeks",
    "bump_model",
    "RandomGenerator",
    "PseudoRandomGenerator",
    "SobolGenerator",
    "AntitheticGenerator",
    "create_generator",
    "analytics",
]
