"""Financial products (the *option* layer of the Premia substitute)."""

from repro.pricing.products.american import (
    AmericanBasketCall,
    AmericanBasketPut,
    AmericanCall,
    AmericanPut,
)
from repro.pricing.products.asian import AsianCall, AsianOption, AsianPut
from repro.pricing.products.barrier import (
    BarrierOption,
    DownOutCall,
    DownOutPut,
    UpOutCall,
    UpOutPut,
)
from repro.pricing.products.base import ExerciseStyle, Product, VanillaLike
from repro.pricing.products.basket import BasketCall, BasketOption, BasketPut
from repro.pricing.products.vanilla import DigitalCall, DigitalPut, EuropeanCall, EuropeanPut

#: name -> class mapping used by the engine registry
PRODUCT_CLASSES: dict[str, type[Product]] = {
    cls.option_name: cls
    for cls in (
        EuropeanCall,
        EuropeanPut,
        DigitalCall,
        DigitalPut,
        BarrierOption,
        DownOutCall,
        DownOutPut,
        UpOutCall,
        UpOutPut,
        BasketOption,
        BasketCall,
        BasketPut,
        AsianOption,
        AsianCall,
        AsianPut,
        AmericanPut,
        AmericanCall,
        AmericanBasketPut,
        AmericanBasketCall,
    )
}

__all__ = [
    "Product",
    "VanillaLike",
    "ExerciseStyle",
    "EuropeanCall",
    "EuropeanPut",
    "DigitalCall",
    "DigitalPut",
    "BarrierOption",
    "DownOutCall",
    "DownOutPut",
    "UpOutCall",
    "UpOutPut",
    "BasketOption",
    "BasketCall",
    "BasketPut",
    "AsianOption",
    "AsianCall",
    "AsianPut",
    "AmericanPut",
    "AmericanCall",
    "AmericanBasketPut",
    "AmericanBasketCall",
    "PRODUCT_CLASSES",
]
