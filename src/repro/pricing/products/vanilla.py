"""Plain vanilla and digital European options.

The toy portfolio of Table II consists of 10,000 such options priced by
closed-form formulas; the realistic portfolio of Table III contains 1952
vanilla calls.
"""

from __future__ import annotations

import numpy as np

from repro.pricing.products.base import ExerciseStyle, VanillaLike

__all__ = ["EuropeanCall", "EuropeanPut", "DigitalCall", "DigitalPut"]


class EuropeanCall(VanillaLike):
    """European call: payoff ``max(S_T - K, 0)``."""

    option_name = "CallEuro"
    exercise = ExerciseStyle.EUROPEAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return np.maximum(spot - self.strike, 0.0)


class EuropeanPut(VanillaLike):
    """European put: payoff ``max(K - S_T, 0)``."""

    option_name = "PutEuro"
    exercise = ExerciseStyle.EUROPEAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return np.maximum(self.strike - spot, 0.0)


class DigitalCall(VanillaLike):
    """Cash-or-nothing digital call: pays 1 if ``S_T > K``."""

    option_name = "DigitalCallEuro"
    exercise = ExerciseStyle.EUROPEAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return (spot > self.strike).astype(float)


class DigitalPut(VanillaLike):
    """Cash-or-nothing digital put: pays 1 if ``S_T < K``."""

    option_name = "DigitalPutEuro"
    exercise = ExerciseStyle.EUROPEAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return (spot < self.strike).astype(float)
