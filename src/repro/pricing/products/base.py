"""Base classes for financial products (the *option* layer).

A product encodes a payoff and an exercise style, independent of the model
that drives the underlying.  Products are intentionally light-weight, fully
described by a small parameter dictionary (:meth:`Product.to_params`) so they
can be serialized, saved to problem files and shipped to cluster workers.

The three payoff entry points used by the numerical methods are:

* :meth:`Product.terminal_payoff` -- payoff as a function of the terminal
  underlying value(s); sufficient for European non-path-dependent products;
* :meth:`Product.path_payoff` -- payoff as a function of a full discretely
  monitored path; required by barrier and Asian options;
* :meth:`Product.intrinsic_value` -- immediate exercise value, used by the
  American pricers (PDE, trees, Longstaff-Schwartz).
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.errors import PricingError

__all__ = ["Product", "ExerciseStyle", "VanillaLike"]


class ExerciseStyle:
    """String constants for exercise styles."""

    EUROPEAN = "european"
    AMERICAN = "american"


class Product(abc.ABC):
    """Abstract base class of every product."""

    #: registry identifier, e.g. ``"CallEuro"``
    option_name: str = "abstract"
    #: exercise style -- one of :class:`ExerciseStyle`
    exercise: str = ExerciseStyle.EUROPEAN
    #: number of underlying assets the payoff depends on (1 or ``d``)
    dimension: int = 1
    #: whether the payoff depends on the whole path (barrier, Asian)
    path_dependent: bool = False

    def __init__(self, maturity: float):
        if maturity <= 0:
            raise PricingError("maturity must be strictly positive")
        self.maturity = float(maturity)

    # -- payoffs -------------------------------------------------------------
    @abc.abstractmethod
    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        """Payoff evaluated on terminal value(s).

        ``spot`` has shape ``(n,)`` for 1-d products and ``(n, d)`` for
        multi-asset products; the result has shape ``(n,)``.
        """

    def path_payoff(self, paths: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Payoff evaluated on discretely monitored paths.

        Default implementation ignores the path and applies
        :meth:`terminal_payoff` to the last time slice, which is correct for
        non-path-dependent products.
        """
        if paths.ndim == 2:
            terminal = paths[:, -1]
        else:
            terminal = paths[:, -1, :]
        return self.terminal_payoff(terminal)

    def intrinsic_value(self, spot: np.ndarray) -> np.ndarray:
        """Immediate exercise value at an arbitrary date.

        For most products this coincides with the terminal payoff function
        applied to the current spot.
        """
        return self.terminal_payoff(spot)

    # -- serialization ----------------------------------------------------------
    @abc.abstractmethod
    def to_params(self) -> dict[str, Any]:
        """Constructor parameters as a plain dictionary."""

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "Product":
        return cls(**params)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Product):
            return NotImplemented
        if self.option_name != other.option_name:
            return False
        pa, pb = self.to_params(), other.to_params()
        if pa.keys() != pb.keys():
            return False
        for key in pa:
            va, vb = pa[key], pb[key]
            if isinstance(va, str) or isinstance(vb, str):
                if va != vb:
                    return False
            elif not np.allclose(np.asarray(va, dtype=float), np.asarray(vb, dtype=float)):
                return False
        return True

    def __hash__(self) -> int:
        items = []
        for key, value in sorted(self.to_params().items()):
            if isinstance(value, str):
                items.append((key, value))
            else:
                items.append((key, np.asarray(value, dtype=float).tobytes()))
        return hash((self.option_name, tuple(items)))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.to_params().items())
        return f"{type(self).__name__}({params})"


class VanillaLike(Product):
    """Convenience base class for single-asset products with a strike."""

    def __init__(self, strike: float, maturity: float):
        super().__init__(maturity)
        if strike <= 0:
            raise PricingError("strike must be strictly positive")
        self.strike = float(strike)

    def to_params(self) -> dict[str, Any]:
        return {"strike": self.strike, "maturity": self.maturity}
