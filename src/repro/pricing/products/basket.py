"""Basket options on several underlying assets.

The realistic portfolio contains 525 European put options on a
40-dimensional basket (priced by plain Monte-Carlo) and 525 American put
options on a 7-dimensional basket (priced by Longstaff-Schwartz).  The
European variants live here; the American ones in
:mod:`repro.pricing.products.american`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.products.base import ExerciseStyle, Product

__all__ = ["BasketOption", "BasketCall", "BasketPut"]


class BasketOption(Product):
    """European option on a weighted arithmetic basket of assets.

    The basket value is ``B_T = sum_i w_i S^i_T``; the payoff is
    ``max(B_T - K, 0)`` for calls and ``max(K - B_T, 0)`` for puts.

    Parameters
    ----------
    strike:
        Basket strike.
    maturity:
        Time to expiry in years.
    weights:
        Basket weights (length = number of underlying assets).  They are not
        required to sum to one.
    payoff_type:
        ``"call"`` or ``"put"``.
    """

    option_name = "BasketEuro"
    exercise = ExerciseStyle.EUROPEAN

    def __init__(
        self,
        strike: float,
        maturity: float,
        weights: np.ndarray,
        payoff_type: str = "put",
    ):
        super().__init__(maturity)
        if strike <= 0:
            raise PricingError("strike must be strictly positive")
        weights = np.atleast_1d(np.asarray(weights, dtype=float))
        if weights.ndim != 1 or len(weights) < 1:
            raise PricingError("weights must be a non-empty 1-d array")
        if payoff_type not in ("call", "put"):
            raise PricingError("payoff_type must be 'call' or 'put'")
        self.strike = float(strike)
        self.weights = weights
        self.payoff_type = payoff_type
        self.dimension = len(weights)

    def basket_value(self, spot: np.ndarray) -> np.ndarray:
        """Weighted basket value for terminal asset vectors ``(n, d)``."""
        spot = np.asarray(spot, dtype=float)
        if spot.ndim == 1:
            if self.dimension != 1:
                raise PricingError(
                    f"expected {self.dimension}-dimensional spot vectors, got 1-d input"
                )
            return self.weights[0] * spot
        if spot.shape[-1] != self.dimension:
            raise PricingError(
                f"spot dimension {spot.shape[-1]} != basket dimension {self.dimension}"
            )
        return spot @ self.weights

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        basket = self.basket_value(spot)
        if self.payoff_type == "call":
            return np.maximum(basket - self.strike, 0.0)
        return np.maximum(self.strike - basket, 0.0)

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "weights": self.weights.tolist(),
            "payoff_type": self.payoff_type,
        }


class BasketCall(BasketOption):
    """European basket call."""

    option_name = "BasketCallEuro"

    def __init__(self, strike: float, maturity: float, weights: np.ndarray):
        super().__init__(strike=strike, maturity=maturity, weights=weights, payoff_type="call")

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "weights": self.weights.tolist(),
        }


class BasketPut(BasketOption):
    """European basket put -- the 40-dimensional product of the paper."""

    option_name = "BasketPutEuro"

    def __init__(self, strike: float, maturity: float, weights: np.ndarray):
        super().__init__(strike=strike, maturity=maturity, weights=weights, payoff_type="put")

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "weights": self.weights.tolist(),
        }
