"""Asian (average-price) options.

Not explicitly part of the paper's example portfolio, but Premia prices them
and the non-regression workload (Table I) is defined as "a single instance of
any pricing problem which can be solved using Premia".  Including a
path-dependent averaging product broadens the cost spectrum of the regression
workload in the same spirit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.products.base import ExerciseStyle, Product

__all__ = ["AsianOption", "AsianCall", "AsianPut"]


class AsianOption(Product):
    """Arithmetic-average Asian option with discrete monitoring.

    The average is taken over the monitoring grid supplied by the pricer
    (``times[1:]``, i.e. excluding the valuation date).

    Parameters
    ----------
    strike:
        Fixed strike ``K``.
    maturity:
        Time to expiry in years.
    payoff_type:
        ``"call"`` (``max(A - K, 0)``) or ``"put"`` (``max(K - A, 0)``).
    n_fixings:
        Suggested number of averaging dates; Monte-Carlo pricers use it to
        build their time grid.
    """

    option_name = "AsianEuro"
    exercise = ExerciseStyle.EUROPEAN
    path_dependent = True

    def __init__(
        self, strike: float, maturity: float, payoff_type: str = "call", n_fixings: int = 12
    ):
        super().__init__(maturity)
        if strike <= 0:
            raise PricingError("strike must be strictly positive")
        if payoff_type not in ("call", "put"):
            raise PricingError("payoff_type must be 'call' or 'put'")
        if n_fixings < 1:
            raise PricingError("n_fixings must be >= 1")
        self.strike = float(strike)
        self.payoff_type = payoff_type
        self.n_fixings = int(n_fixings)

    def average(self, paths: np.ndarray) -> np.ndarray:
        """Arithmetic average over the monitoring dates (excluding t=0)."""
        paths = np.asarray(paths, dtype=float)
        if paths.ndim != 2:
            raise PricingError("Asian options are single-asset products")
        return paths[:, 1:].mean(axis=1)

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        """Degenerate payoff treating the terminal value as the average.

        Only used as an intrinsic-value proxy; real pricing goes through
        :meth:`path_payoff`.
        """
        spot = np.asarray(spot, dtype=float)
        if self.payoff_type == "call":
            return np.maximum(spot - self.strike, 0.0)
        return np.maximum(self.strike - spot, 0.0)

    def path_payoff(self, paths: np.ndarray, times: np.ndarray) -> np.ndarray:
        avg = self.average(paths)
        if self.payoff_type == "call":
            return np.maximum(avg - self.strike, 0.0)
        return np.maximum(self.strike - avg, 0.0)

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "payoff_type": self.payoff_type,
            "n_fixings": self.n_fixings,
        }


class AsianCall(AsianOption):
    """Arithmetic-average Asian call."""

    option_name = "AsianCallEuro"

    def __init__(self, strike: float, maturity: float, n_fixings: int = 12):
        super().__init__(strike=strike, maturity=maturity, payoff_type="call", n_fixings=n_fixings)

    def to_params(self) -> dict[str, Any]:
        return {"strike": self.strike, "maturity": self.maturity, "n_fixings": self.n_fixings}


class AsianPut(AsianOption):
    """Arithmetic-average Asian put."""

    option_name = "AsianPutEuro"

    def __init__(self, strike: float, maturity: float, n_fixings: int = 12):
        super().__init__(strike=strike, maturity=maturity, payoff_type="put", n_fixings=n_fixings)

    def to_params(self) -> dict[str, Any]:
        return {"strike": self.strike, "maturity": self.maturity, "n_fixings": self.n_fixings}
