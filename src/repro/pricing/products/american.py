"""American-style products (early exercise at any time up to maturity).

The realistic portfolio of Section 4.3 includes 1952 American put options
priced by PDE and 525 American put options on a 7-dimensional basket priced
by Longstaff-Schwartz American Monte-Carlo.  "The evaluation of American
products is much longer than any other (above 60 seconds)" -- these products
populate the expensive tail of the workload distribution.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.products.base import ExerciseStyle, Product, VanillaLike

__all__ = ["AmericanPut", "AmericanCall", "AmericanBasketPut", "AmericanBasketCall"]


class AmericanPut(VanillaLike):
    """American put: exercise value ``max(K - S_t, 0)`` at any ``t <= T``."""

    option_name = "PutAmer"
    exercise = ExerciseStyle.AMERICAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return np.maximum(self.strike - spot, 0.0)


class AmericanCall(VanillaLike):
    """American call: exercise value ``max(S_t - K, 0)`` at any ``t <= T``.

    On a non-dividend-paying asset its value equals the European call, a
    classical no-arbitrage fact the test-suite verifies against the pricers.
    """

    option_name = "CallAmer"
    exercise = ExerciseStyle.AMERICAN

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        return np.maximum(spot - self.strike, 0.0)


class _AmericanBasket(Product):
    """Shared implementation for American basket options."""

    exercise = ExerciseStyle.AMERICAN
    payoff_type = "put"

    def __init__(self, strike: float, maturity: float, weights: np.ndarray):
        super().__init__(maturity)
        if strike <= 0:
            raise PricingError("strike must be strictly positive")
        weights = np.atleast_1d(np.asarray(weights, dtype=float))
        if weights.ndim != 1 or len(weights) < 1:
            raise PricingError("weights must be a non-empty 1-d array")
        self.strike = float(strike)
        self.weights = weights
        self.dimension = len(weights)

    def basket_value(self, spot: np.ndarray) -> np.ndarray:
        spot = np.asarray(spot, dtype=float)
        if spot.ndim == 1:
            if self.dimension != 1:
                raise PricingError(
                    f"expected {self.dimension}-dimensional spot vectors, got 1-d input"
                )
            return self.weights[0] * spot
        if spot.shape[-1] != self.dimension:
            raise PricingError(
                f"spot dimension {spot.shape[-1]} != basket dimension {self.dimension}"
            )
        return spot @ self.weights

    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        basket = self.basket_value(spot)
        if self.payoff_type == "call":
            return np.maximum(basket - self.strike, 0.0)
        return np.maximum(self.strike - basket, 0.0)

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "weights": self.weights.tolist(),
        }


class AmericanBasketPut(_AmericanBasket):
    """American put on a weighted basket (the paper's 7-dimensional product)."""

    option_name = "BasketPutAmer"
    payoff_type = "put"


class AmericanBasketCall(_AmericanBasket):
    """American call on a weighted basket."""

    option_name = "BasketCallAmer"
    payoff_type = "call"
