"""Barrier options (knock-out / knock-in, up / down).

The realistic portfolio of Section 4.3 includes 1952 *down-and-out call*
options priced by a PDE with a thin time step ("one time step every 2 days")
to resolve the barrier.  The product classes here support the four standard
single-barrier variants; the PDE and Monte-Carlo pricers use
:attr:`BarrierOption.barrier_type` / :attr:`BarrierOption.barrier` to apply
the knock-out condition, and the closed-form pricer implements the
Black-Scholes barrier formulas as a cross-check.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.products.base import ExerciseStyle, Product

__all__ = ["BarrierOption", "DownOutCall", "UpOutCall", "DownOutPut", "UpOutPut"]

_VALID_BARRIER_TYPES = ("down-out", "up-out", "down-in", "up-in")
_VALID_PAYOFFS = ("call", "put")


class BarrierOption(Product):
    """Single-barrier option with discrete (path-grid) monitoring.

    Parameters
    ----------
    strike:
        Option strike.
    maturity:
        Time to expiry in years.
    barrier:
        Barrier level ``B > 0``.
    barrier_type:
        One of ``"down-out"``, ``"up-out"``, ``"down-in"``, ``"up-in"``.
    payoff_type:
        ``"call"`` or ``"put"``.
    rebate:
        Cash amount paid when a knock-out option is knocked out (default 0).
    """

    option_name = "BarrierEuro"
    exercise = ExerciseStyle.EUROPEAN
    path_dependent = True

    def __init__(
        self,
        strike: float,
        maturity: float,
        barrier: float,
        barrier_type: str = "down-out",
        payoff_type: str = "call",
        rebate: float = 0.0,
    ):
        super().__init__(maturity)
        if strike <= 0:
            raise PricingError("strike must be strictly positive")
        if barrier <= 0:
            raise PricingError("barrier must be strictly positive")
        if barrier_type not in _VALID_BARRIER_TYPES:
            raise PricingError(f"barrier_type must be one of {_VALID_BARRIER_TYPES}")
        if payoff_type not in _VALID_PAYOFFS:
            raise PricingError(f"payoff_type must be one of {_VALID_PAYOFFS}")
        if rebate < 0:
            raise PricingError("rebate must be non-negative")
        self.strike = float(strike)
        self.barrier = float(barrier)
        self.barrier_type = barrier_type
        self.payoff_type = payoff_type
        self.rebate = float(rebate)

    # -- helpers ----------------------------------------------------------------
    @property
    def is_knock_out(self) -> bool:
        return self.barrier_type.endswith("out")

    @property
    def is_down(self) -> bool:
        return self.barrier_type.startswith("down")

    def vanilla_payoff(self, spot: np.ndarray) -> np.ndarray:
        """The underlying call/put payoff, ignoring the barrier."""
        spot = np.asarray(spot, dtype=float)
        if self.payoff_type == "call":
            return np.maximum(spot - self.strike, 0.0)
        return np.maximum(self.strike - spot, 0.0)

    def breached(self, paths: np.ndarray) -> np.ndarray:
        """Boolean array: whether each path touched/crossed the barrier."""
        paths = np.asarray(paths, dtype=float)
        if self.is_down:
            return (paths <= self.barrier).any(axis=1)
        return (paths >= self.barrier).any(axis=1)

    # -- payoffs ----------------------------------------------------------------
    def terminal_payoff(self, spot: np.ndarray) -> np.ndarray:
        """Terminal payoff assuming the barrier was *not* breached earlier.

        Used by the PDE pricer, which handles the barrier through the domain
        boundary, and as the living-option payoff in path pricing.
        """
        return self.vanilla_payoff(spot)

    def path_payoff(self, paths: np.ndarray, times: np.ndarray) -> np.ndarray:
        if paths.ndim != 2:
            raise PricingError("barrier options are single-asset products")
        breached = self.breached(paths)
        vanilla = self.vanilla_payoff(paths[:, -1])
        if self.is_knock_out:
            return np.where(breached, self.rebate, vanilla)
        return np.where(breached, vanilla, 0.0)

    # -- serialization -------------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "barrier": self.barrier,
            "barrier_type": self.barrier_type,
            "payoff_type": self.payoff_type,
            "rebate": self.rebate,
        }


class DownOutCall(BarrierOption):
    """Down-and-out call -- the barrier product used in the paper's portfolio."""

    option_name = "CallDownOutEuro"

    def __init__(self, strike: float, maturity: float, barrier: float, rebate: float = 0.0):
        super().__init__(
            strike=strike,
            maturity=maturity,
            barrier=barrier,
            barrier_type="down-out",
            payoff_type="call",
            rebate=rebate,
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "barrier": self.barrier,
            "rebate": self.rebate,
        }


class UpOutCall(BarrierOption):
    """Up-and-out call."""

    option_name = "CallUpOutEuro"

    def __init__(self, strike: float, maturity: float, barrier: float, rebate: float = 0.0):
        super().__init__(
            strike=strike,
            maturity=maturity,
            barrier=barrier,
            barrier_type="up-out",
            payoff_type="call",
            rebate=rebate,
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "barrier": self.barrier,
            "rebate": self.rebate,
        }


class DownOutPut(BarrierOption):
    """Down-and-out put."""

    option_name = "PutDownOutEuro"

    def __init__(self, strike: float, maturity: float, barrier: float, rebate: float = 0.0):
        super().__init__(
            strike=strike,
            maturity=maturity,
            barrier=barrier,
            barrier_type="down-out",
            payoff_type="put",
            rebate=rebate,
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "barrier": self.barrier,
            "rebate": self.rebate,
        }


class UpOutPut(BarrierOption):
    """Up-and-out put."""

    option_name = "PutUpOutEuro"

    def __init__(self, strike: float, maturity: float, barrier: float, rebate: float = 0.0):
        super().__init__(
            strike=strike,
            maturity=maturity,
            barrier=barrier,
            barrier_type="up-out",
            payoff_type="put",
            rebate=rebate,
        )

    def to_params(self) -> dict[str, Any]:
        return {
            "strike": self.strike,
            "maturity": self.maturity,
            "barrier": self.barrier,
            "rebate": self.rebate,
        }
