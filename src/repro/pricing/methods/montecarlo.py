"""Monte-Carlo pricing of European (possibly path-dependent) products.

This pricer covers the Monte-Carlo slices of the realistic portfolio:

* 525 put options on a 40-dimensional basket ("We usually use 10^6 samples
  for the Monte-Carlo simulations");
* 1025 call options in a local volatility model;

and additionally prices barrier and Asian options by path simulation, and any
European product under the Heston and Merton models (used in the
non-regression workload).

Variance reduction: antithetic variates (model-agnostic, through
:class:`~repro.pricing.rng.AntitheticGenerator`) and a martingale control
variate (the discounted terminal underlying / basket value, whose expectation
is known in every risk-neutral model of the library).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import IncompatibleMethodError, PricingError
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import Model, MultiAssetModel
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.products.barrier import BarrierOption
from repro.pricing.products.base import ExerciseStyle, Product
from repro.pricing.products.basket import BasketOption
from repro.pricing.rng import AntitheticGenerator, create_generator

__all__ = ["MonteCarloEuropean", "price_groups_stacked"]


def _stamp_and_validate(
    method: "MonteCarloEuropean",
    model: Model,
    products: list[Product],
    results: list[PricingResult],
    elapsed: float,
) -> None:
    """Share the wall-clock time across members and reject non-finite prices."""
    share = elapsed / len(results)
    for product, result in zip(products, results):
        result.elapsed = share
        result.method_name = method.method_name
        if not np.isfinite(result.price):
            raise IncompatibleMethodError(
                f"method {method.method_name!r} produced a non-finite price for "
                f"{product.option_name!r} under {model.model_name!r}"
            )


def price_groups_stacked(
    groups: Sequence[tuple["MonteCarloEuropean", Model, Sequence[Product]]],
) -> list[list[PricingResult]]:
    """Price several shared-simulation groups through the stacked kernel.

    The plan-level entry point used by batch pricing with
    ``kernel="stacked"``: all groups go to
    :func:`repro.pricing.kernel.run_groups` together, so groups whose
    methods draw identical random streams share one stacked simulation
    (cross-group draw cohorts).  Results are bit-identical to calling
    ``method.price_many(model, products)`` per group; elapsed time is
    measured here (the kernel module is wall-clock-free by contract) and
    shared across each group's members.
    """
    from repro.pricing.kernel import run_groups

    start = time.perf_counter()
    all_results = run_groups(groups)
    elapsed = time.perf_counter() - start
    n_members = sum(len(results) for results in all_results) or 1
    for (method, model, products), results in zip(groups, all_results):
        _stamp_and_validate(method, model, list(products), results, elapsed * len(results) / n_members)
    return all_results


@dataclass
class _MemberState:
    """Per-product accumulators of one shared-path pricing pass."""

    product: Product
    product_adj: Product
    use_cv: bool
    discount: float
    sum_payoff: float = 0.0
    sum_payoff2: float = 0.0
    sum_control: float = 0.0
    sum_control2: float = 0.0
    sum_cross: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

#: Broadie-Glasserman-Kou continuity-correction constant for discretely
#: monitored barriers: ``beta = -zeta(1/2) / sqrt(2 pi)``.
BARRIER_CORRECTION_BETA = 0.5826


class MonteCarloEuropean(PricingMethod):
    """Monte-Carlo pricer for European-exercise products.

    Parameters
    ----------
    n_paths:
        Number of simulated paths (after antithetic doubling).
    n_steps:
        Number of time steps for path-dependent products or models without an
        exact terminal law.  ``None`` lets the pricer choose: 1 step for
        terminal-law products under exactly samplable models, otherwise
        a grid fine enough for the product (e.g. 2-day steps for barriers).
    antithetic:
        Use antithetic variates (default True).
    control_variate:
        Use the discounted terminal underlying as a control variate
        (default True; only applied to non-path-dependent payoffs).
    rng_kind / seed:
        Random number generator family (``"pcg64"`` or ``"sobol"``) and seed.
    barrier_correction:
        Apply the Broadie-Glasserman continuity correction to barrier levels
        so that discretely monitored paths approximate a continuously
        monitored barrier (default True).
    batch_size:
        Paths are simulated in batches of at most this size to bound memory
        (important for the 40-dimensional baskets).
    """

    method_name = "MC_European"

    def __init__(
        self,
        n_paths: int = 100_000,
        n_steps: int | None = None,
        antithetic: bool = True,
        control_variate: bool = True,
        rng_kind: str = "pcg64",
        seed: int = 0,
        barrier_correction: bool = True,
        batch_size: int = 65_536,
    ):
        if n_paths < 2:
            raise PricingError("n_paths must be at least 2")
        if n_steps is not None and n_steps < 1:
            raise PricingError("n_steps must be >= 1 when given")
        if batch_size < 2:
            raise PricingError("batch_size must be at least 2")
        self.n_paths = int(n_paths)
        self.n_steps = None if n_steps is None else int(n_steps)
        self.antithetic = bool(antithetic)
        self.control_variate = bool(control_variate)
        self.rng_kind = str(rng_kind)
        self.seed = int(seed)
        self.barrier_correction = bool(barrier_correction)
        self.batch_size = int(batch_size)

    def to_params(self) -> dict[str, Any]:
        return {
            "n_paths": self.n_paths,
            "n_steps": self.n_steps,
            "antithetic": self.antithetic,
            "control_variate": self.control_variate,
            "rng_kind": self.rng_kind,
            "seed": self.seed,
            "barrier_correction": self.barrier_correction,
            "batch_size": self.batch_size,
        }

    # -- compatibility ---------------------------------------------------------
    def supports(self, model: Model, product: Product) -> bool:
        if product.exercise != ExerciseStyle.EUROPEAN:
            return False
        if product.dimension > 1:
            return isinstance(model, MultiAssetModel) and model.dimension == product.dimension
        return model.dimension == 1

    # -- helpers -----------------------------------------------------------------
    def _effective_steps(self, model: Model, product: Product) -> int:
        if self.n_steps is not None:
            return self.n_steps
        if isinstance(product, BarrierOption):
            # one monitoring date every 2 (business) days, as in the paper
            return max(2, int(np.ceil(product.maturity * 126)))
        if product.path_dependent:
            n_fixings = getattr(product, "n_fixings", 12)
            return max(1, int(n_fixings))
        return 1

    def _make_rng(self, dimension: int):
        rng = create_generator(self.rng_kind, seed=self.seed, dimension=dimension)
        if self.antithetic:
            rng = AntitheticGenerator(rng)
        return rng

    def _adjusted_product(self, model: Model, product: Product, n_steps: int) -> Product:
        """Apply the barrier continuity correction when appropriate."""
        if (
            not self.barrier_correction
            or not isinstance(product, BarrierOption)
            or not isinstance(model, BlackScholesModel)
            or n_steps < 1
        ):
            return product
        # To emulate a continuously monitored barrier with discretely
        # monitored paths, move the barrier *towards* the spot by
        # exp(beta * sigma * sqrt(dt)) (Broadie-Glasserman-Kou): up for a
        # down barrier, down for an up barrier.
        dt = product.maturity / n_steps
        shift = np.exp(
            (1 if product.is_down else -1)
            * BARRIER_CORRECTION_BETA
            * model.volatility
            * np.sqrt(dt)
        )
        adjusted = BarrierOption(
            strike=product.strike,
            maturity=product.maturity,
            barrier=product.barrier * shift,
            barrier_type=product.barrier_type,
            payoff_type=product.payoff_type,
            rebate=product.rebate,
        )
        return adjusted

    def _control_value(self, model: Model, terminal: np.ndarray, product: Product) -> np.ndarray:
        """Per-path control variate: terminal (basket) value."""
        if isinstance(product, BasketOption) and terminal.ndim == 2:
            return terminal @ product.weights
        if terminal.ndim == 2:
            return terminal.mean(axis=1)
        return terminal

    def _control_expectation(self, model: Model, product: Product) -> float:
        forward = model.forward(product.maturity)
        if isinstance(product, BasketOption) and np.ndim(forward) == 1:
            return float(np.sum(product.weights * forward))
        return float(np.mean(forward))

    # -- pricing -----------------------------------------------------------------
    def _price(self, model: Model, product: Product) -> PricingResult:
        # single-product pricing is the one-member case of the shared-path
        # engine, so batched portfolio pricing is bit-identical by construction
        return self._price_shared(model, [product])[0]

    def shares_simulation(self, model: Model, a: Product, b: Product) -> bool:
        """Whether ``a`` and ``b`` can be priced against one shared path set.

        Two products share the simulation when they induce the same effective
        time grid and the same sampling mode (full paths vs exact terminal
        law); the payoffs themselves are free to differ.
        """
        if self._effective_steps(model, a) != self._effective_steps(model, b):
            return False
        if a.maturity != b.maturity:
            return False
        n_steps = self._effective_steps(model, a)
        return (a.path_dependent or n_steps > 1) == (b.path_dependent or n_steps > 1)

    def price_many(
        self,
        model: Model,
        products: Sequence[Product],
        *,
        kernel: str = "loop",
        sample_sink: Any = None,
    ) -> list[PricingResult]:
        """Price several products against **one** shared simulated path set.

        All products must be supported under ``model`` and share the same
        simulation grid (see :meth:`shares_simulation`); the
        :mod:`repro.pricing.batch` planner guarantees this by grouping on the
        simulation signature.  Each returned :class:`PricingResult` is
        bit-identical to what :meth:`price` would return for that product
        alone -- the paths are a deterministic function of (model, rng kind,
        seed, batching), which every member reproduces independently.

        ``kernel`` selects the evaluation engine: ``"loop"`` (the per-member
        python loop above) or ``"stacked"`` (the vectorized engine of
        :mod:`repro.pricing.kernel`, bit-identical by construction and
        enforced so by the differential test suite).  ``kernel`` is an
        evaluation strategy, **not** a method parameter: it never enters
        :meth:`to_params`, so digests, signatures and cache keys are
        unchanged by the choice.  ``sample_sink``, when given, receives
        ``(member_index, payoff_batch)`` for every simulated batch (payoffs
        pair-averaged when antithetic) -- the differential harness uses it
        to compare per-path samples across kernels.
        """
        products = list(products)
        if not products:
            return []
        for product in products:
            self.check_supports(model, product)
        start = time.perf_counter()
        if kernel == "loop":
            results = self._price_shared(model, products, sample_sink=sample_sink)
        elif kernel == "stacked":
            from repro.pricing.kernel import price_many_stacked

            results = price_many_stacked(self, model, products, sample_sink=sample_sink)
        else:
            raise PricingError(f"unknown kernel {kernel!r}; expected 'loop' or 'stacked'")
        elapsed = time.perf_counter() - start
        _stamp_and_validate(self, model, products, results, elapsed)
        return results

    def _price_shared(
        self, model: Model, products: list[Product], sample_sink: Any = None
    ) -> list[PricingResult]:
        n_steps = self._effective_steps(model, products[0])
        maturity = products[0].maturity
        mode_paths = products[0].path_dependent or n_steps > 1
        for product in products[1:]:
            if not self.shares_simulation(model, products[0], product):
                raise PricingError(
                    "products in a shared-path batch must induce the same "
                    "simulation grid and sampling mode"
                )
        members = [
            _MemberState(
                product=product,
                product_adj=self._adjusted_product(model, product, n_steps),
                use_cv=self.control_variate and not product.path_dependent,
                discount=model.discount_factor(product.maturity),
            )
            for product in products
        ]

        n_total = self.n_paths
        if self.antithetic and n_total % 2:
            n_total += 1

        n_done = 0
        n_samples = 0
        rng = self._make_rng(dimension=max(model.dimension, 1))
        times = np.linspace(0.0, maturity, n_steps + 1)

        # simulate batch by batch (bounding memory) and evaluate every
        # member's payoff against the same path array
        while n_done < n_total:
            batch = min(self.batch_size, n_total - n_done)
            if self.antithetic:
                # keep antithetic pairs inside one batch; n_total is even, so
                # flooring (rather than padding past batch_size) never stalls
                # and the memory bound is respected even for odd batch sizes
                batch -= batch % 2
            if mode_paths:
                paths = model.simulate_paths(rng, batch, times)
                terminal = paths[:, -1] if paths.ndim == 2 else paths[:, -1, :]
            else:
                paths = None
                terminal = model.sample_terminal(rng, batch, maturity)
            half = batch // 2
            for index, member in enumerate(members):
                if mode_paths:
                    payoffs = member.product_adj.path_payoff(paths, times)
                else:
                    payoffs = member.product_adj.terminal_payoff(terminal)
                payoffs = np.asarray(payoffs, dtype=float)
                if member.use_cv:
                    control = self._control_value(model, terminal, member.product_adj)
                else:
                    control = None
                if self.antithetic:
                    # average each antithetic pair so that the variance
                    # estimate reflects the actual (pairwise-coupled) estimator
                    payoffs = 0.5 * (payoffs[:half] + payoffs[half:])
                    if control is not None:
                        control = 0.5 * (control[:half] + control[half:])
                member.sum_payoff += payoffs.sum()
                member.sum_payoff2 += (payoffs**2).sum()
                if control is not None:
                    member.sum_control += control.sum()
                    member.sum_control2 += (control**2).sum()
                    member.sum_cross += (payoffs * control).sum()
                if sample_sink is not None:
                    sample_sink(index, payoffs)
            n_done += batch
            n_samples += half if self.antithetic else batch

        # exact sample accounting: the estimator consumed n_samples
        # (pair-averaged) samples, i.e. n_paths_used simulated paths -- no
        # padded phantom paths are ever reported
        n_paths_used = 2 * n_samples if self.antithetic else n_samples
        return [
            self._finalize_member(model, member, n_samples, n_paths_used, n_steps)
            for member in members
        ]

    def _finalize_member(
        self,
        model: Model,
        member: _MemberState,
        n_samples: int,
        n_paths_used: int,
        n_steps: int,
    ) -> PricingResult:
        n = n_samples
        mean_payoff = member.sum_payoff / n
        var_payoff = max(member.sum_payoff2 / n - mean_payoff**2, 0.0)

        if member.use_cv:
            mean_control = member.sum_control / n
            var_control = max(member.sum_control2 / n - mean_control**2, 0.0)
            cov = member.sum_cross / n - mean_payoff * mean_control
            expected_control = self._control_expectation(model, member.product)
            if var_control > 1e-14:
                beta = cov / var_control
                adjusted_mean = mean_payoff - beta * (mean_control - expected_control)
                adjusted_var = max(var_payoff - cov**2 / var_control, 0.0)
            else:
                beta = 0.0
                adjusted_mean = mean_payoff
                adjusted_var = var_payoff
        else:
            beta = 0.0
            adjusted_mean = mean_payoff
            adjusted_var = var_payoff

        price = member.discount * adjusted_mean
        std_error = member.discount * np.sqrt(adjusted_var / n)
        half_width = 1.96 * std_error
        return PricingResult(
            price=float(price),
            std_error=float(std_error),
            confidence_interval=(float(price - half_width), float(price + half_width)),
            n_evaluations=n_paths_used * max(n_steps, 1),
            extra={
                "n_paths": n_paths_used,
                "n_paths_requested": self.n_paths,
                "n_steps": n_steps,
                "control_variate_beta": float(beta),
                "antithetic": self.antithetic,
            },
        )
