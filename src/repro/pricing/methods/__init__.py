"""Numerical pricing methods (the *method* layer of the Premia substitute)."""

from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.methods.closed_form import (
    ClosedFormBarrier,
    ClosedFormBasketApprox,
    ClosedFormCall,
    ClosedFormDigital,
    ClosedFormPut,
)
from repro.pricing.methods.fourier import FourierCOS
from repro.pricing.methods.longstaff_schwartz import LongstaffSchwartz
from repro.pricing.methods.montecarlo import MonteCarloEuropean
from repro.pricing.methods.pde import PDEAmerican, PDEBarrier, PDEEuropean, PDEGrid
from repro.pricing.methods.tree import BinomialTree, TrinomialTree

#: name -> class mapping used by the engine registry
METHOD_CLASSES: dict[str, type[PricingMethod]] = {
    cls.method_name: cls
    for cls in (
        ClosedFormCall,
        ClosedFormPut,
        ClosedFormDigital,
        ClosedFormBarrier,
        ClosedFormBasketApprox,
        PDEEuropean,
        PDEBarrier,
        PDEAmerican,
        BinomialTree,
        TrinomialTree,
        MonteCarloEuropean,
        LongstaffSchwartz,
        FourierCOS,
    )
}

__all__ = [
    "PricingMethod",
    "PricingResult",
    "ClosedFormCall",
    "ClosedFormPut",
    "ClosedFormDigital",
    "ClosedFormBarrier",
    "ClosedFormBasketApprox",
    "PDEEuropean",
    "PDEBarrier",
    "PDEAmerican",
    "PDEGrid",
    "BinomialTree",
    "TrinomialTree",
    "MonteCarloEuropean",
    "LongstaffSchwartz",
    "FourierCOS",
    "METHOD_CLASSES",
]
