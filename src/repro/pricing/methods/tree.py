"""Lattice (tree) pricing methods.

Premia's public release "contains finite difference algorithms, tree methods
and Monte Carlo methods"; the Cox-Ross-Rubinstein binomial tree and a
Kamrad-Ritchken trinomial tree are provided here.  Both handle European and
American exercise on one-dimensional Black-Scholes-type dynamics and serve as
independent references for validating the PDE and Longstaff-Schwartz pricers
in the test-suite.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import Model
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.products.american import AmericanCall, AmericanPut
from repro.pricing.products.base import ExerciseStyle, Product
from repro.pricing.products.vanilla import EuropeanCall, EuropeanPut

__all__ = ["BinomialTree", "TrinomialTree"]

_SUPPORTED_PRODUCTS = (EuropeanCall, EuropeanPut, AmericanCall, AmericanPut)


class BinomialTree(PricingMethod):
    """Cox-Ross-Rubinstein binomial tree.

    Parameters
    ----------
    n_steps:
        Number of time steps.  The price converges to the Black-Scholes /
        American value at rate ``O(1/n_steps)``.
    """

    method_name = "TR_CoxRossRubinstein"

    def __init__(self, n_steps: int = 500):
        if n_steps < 1:
            raise PricingError("n_steps must be >= 1")
        self.n_steps = int(n_steps)

    def to_params(self) -> dict[str, Any]:
        return {"n_steps": self.n_steps}

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, BlackScholesModel) and isinstance(
            product, _SUPPORTED_PRODUCTS
        )

    def _price(self, model: BlackScholesModel, product: Product) -> PricingResult:
        n = self.n_steps
        dt = product.maturity / n
        sigma = model.volatility
        u = np.exp(sigma * np.sqrt(dt))
        d = 1.0 / u
        growth = np.exp((model.rate - model.dividend) * dt)
        p = (growth - d) / (u - d)
        if not 0.0 < p < 1.0:
            raise PricingError(
                "risk-neutral probability outside (0, 1); increase n_steps"
            )
        discount = np.exp(-model.rate * dt)
        american = product.exercise == ExerciseStyle.AMERICAN

        # terminal asset values and payoffs
        j = np.arange(n + 1)
        terminal_spots = model.spot * u**j * d ** (n - j)
        values = product.terminal_payoff(terminal_spots)

        # keep the first two layers to read delta off the tree
        layer1_values: np.ndarray | None = None
        for step in range(n - 1, -1, -1):
            values = discount * (p * values[1:] + (1.0 - p) * values[:-1])
            if american:
                j = np.arange(step + 1)
                spots = model.spot * u**j * d ** (step - j)
                values = np.maximum(values, product.intrinsic_value(spots))
            if step == 1:
                layer1_values = values.copy()

        price = float(values[0])
        delta = None
        if layer1_values is not None and len(layer1_values) == 2:
            s_up = model.spot * u
            s_dn = model.spot * d
            delta = float((layer1_values[1] - layer1_values[0]) / (s_up - s_dn))
        return PricingResult(
            price=price,
            delta=delta,
            n_evaluations=(n + 1) * (n + 2) // 2,
            extra={"u": float(u), "d": float(d), "p": float(p)},
        )


class TrinomialTree(PricingMethod):
    """Kamrad-Ritchken trinomial tree (lambda = sqrt(3/2))."""

    method_name = "TR_Trinomial"

    def __init__(self, n_steps: int = 300, stretch: float = np.sqrt(1.5)):
        if n_steps < 1:
            raise PricingError("n_steps must be >= 1")
        if stretch < 1.0:
            raise PricingError("stretch parameter must be >= 1")
        self.n_steps = int(n_steps)
        self.stretch = float(stretch)

    def to_params(self) -> dict[str, Any]:
        return {"n_steps": self.n_steps, "stretch": self.stretch}

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, BlackScholesModel) and isinstance(
            product, _SUPPORTED_PRODUCTS
        )

    def _price(self, model: BlackScholesModel, product: Product) -> PricingResult:
        n = self.n_steps
        dt = product.maturity / n
        sigma = model.volatility
        lam = self.stretch
        dx = lam * sigma * np.sqrt(dt)
        nu = model.rate - model.dividend - 0.5 * sigma**2
        pu = 0.5 / lam**2 + 0.5 * nu * np.sqrt(dt) / (lam * sigma)
        pd = 0.5 / lam**2 - 0.5 * nu * np.sqrt(dt) / (lam * sigma)
        pm = 1.0 - pu - pd
        if min(pu, pm, pd) < 0.0:
            raise PricingError(
                "negative trinomial probability; increase n_steps or the stretch"
            )
        discount = np.exp(-model.rate * dt)
        american = product.exercise == ExerciseStyle.AMERICAN

        j = np.arange(-n, n + 1)
        spots = model.spot * np.exp(j * dx)
        values = product.terminal_payoff(spots)

        layer1_values: np.ndarray | None = None
        layer1_spots: np.ndarray | None = None
        for step in range(n - 1, -1, -1):
            values = discount * (pu * values[2:] + pm * values[1:-1] + pd * values[:-2])
            j = np.arange(-step, step + 1)
            spots = model.spot * np.exp(j * dx)
            if american:
                values = np.maximum(values, product.intrinsic_value(spots))
            if step == 1:
                layer1_values = values.copy()
                layer1_spots = spots.copy()

        price = float(values[0])
        delta = None
        if layer1_values is not None and layer1_spots is not None and len(layer1_values) == 3:
            delta = float(
                (layer1_values[2] - layer1_values[0]) / (layer1_spots[2] - layer1_spots[0])
            )
        return PricingResult(
            price=price,
            delta=delta,
            n_evaluations=(n + 1) ** 2,
            extra={"pu": float(pu), "pm": float(pm), "pd": float(pd)},
        )
