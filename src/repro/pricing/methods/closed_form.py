"""Closed-form pricing methods.

These methods are "almost instantaneous" (the paper's characterisation of the
plain-vanilla slice of the realistic portfolio) and are the ones used for the
10,000-option toy portfolio of Table II, where they make the communication
cost visible.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.pricing import analytics
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import Model
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.models.multi_asset import MultiAssetBlackScholesModel
from repro.pricing.products.barrier import BarrierOption
from repro.pricing.products.base import Product
from repro.pricing.products.basket import BasketOption
from repro.pricing.products.vanilla import DigitalCall, DigitalPut, EuropeanCall, EuropeanPut

__all__ = [
    "ClosedFormCall",
    "ClosedFormPut",
    "ClosedFormDigital",
    "ClosedFormBarrier",
    "ClosedFormBasketApprox",
]


class ClosedFormCall(PricingMethod):
    """Black-Scholes formula for European calls (price + full Greeks)."""

    method_name = "CF_Call"

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, BlackScholesModel) and isinstance(product, EuropeanCall)

    def _price(self, model: BlackScholesModel, product: EuropeanCall) -> PricingResult:
        s, k, r, sigma, t, q = (
            model.spot,
            product.strike,
            model.rate,
            model.volatility,
            product.maturity,
            model.dividend,
        )
        price = float(analytics.bs_call_price(s, k, r, sigma, t, q))
        delta = float(analytics.bs_call_delta(s, k, r, sigma, t, q))
        extra = {
            "gamma": float(analytics.bs_gamma(s, k, r, sigma, t, q)),
            "vega": float(analytics.bs_vega(s, k, r, sigma, t, q)),
            "theta": float(analytics.bs_call_theta(s, k, r, sigma, t, q)),
            "rho": float(analytics.bs_call_rho(s, k, r, sigma, t, q)),
        }
        return PricingResult(price=price, delta=delta, n_evaluations=1, extra=extra)


class ClosedFormPut(PricingMethod):
    """Black-Scholes formula for European puts (price + full Greeks)."""

    method_name = "CF_Put"

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, BlackScholesModel) and isinstance(product, EuropeanPut)

    def _price(self, model: BlackScholesModel, product: EuropeanPut) -> PricingResult:
        s, k, r, sigma, t, q = (
            model.spot,
            product.strike,
            model.rate,
            model.volatility,
            product.maturity,
            model.dividend,
        )
        price = float(analytics.bs_put_price(s, k, r, sigma, t, q))
        delta = float(analytics.bs_put_delta(s, k, r, sigma, t, q))
        extra = {
            "gamma": float(analytics.bs_gamma(s, k, r, sigma, t, q)),
            "vega": float(analytics.bs_vega(s, k, r, sigma, t, q)),
            "theta": float(analytics.bs_put_theta(s, k, r, sigma, t, q)),
            "rho": float(analytics.bs_put_rho(s, k, r, sigma, t, q)),
        }
        return PricingResult(price=price, delta=delta, n_evaluations=1, extra=extra)


class ClosedFormDigital(PricingMethod):
    """Black-Scholes formula for cash-or-nothing digital options."""

    method_name = "CF_Digital"

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, BlackScholesModel) and isinstance(
            product, (DigitalCall, DigitalPut)
        )

    def _price(self, model: BlackScholesModel, product: Product) -> PricingResult:
        s, k, r, sigma, t, q = (
            model.spot,
            product.strike,
            model.rate,
            model.volatility,
            product.maturity,
            model.dividend,
        )
        if isinstance(product, DigitalCall):
            price = float(analytics.digital_call_price(s, k, r, sigma, t, q))
        else:
            price = float(analytics.digital_put_price(s, k, r, sigma, t, q))
        # delta by central finite difference on the closed form (cheap, exact
        # enough for risk aggregation)
        bump = 1e-4 * s
        if isinstance(product, DigitalCall):
            up = analytics.digital_call_price(s + bump, k, r, sigma, t, q)
            dn = analytics.digital_call_price(s - bump, k, r, sigma, t, q)
        else:
            up = analytics.digital_put_price(s + bump, k, r, sigma, t, q)
            dn = analytics.digital_put_price(s - bump, k, r, sigma, t, q)
        delta = float((up - dn) / (2 * bump))
        return PricingResult(price=price, delta=delta, n_evaluations=1)


class ClosedFormBarrier(PricingMethod):
    """Reiner-Rubinstein formulas for continuously monitored barrier options.

    Only zero-rebate barriers are handled in closed form; options with a
    rebate fall back to the PDE or Monte-Carlo pricers.
    """

    method_name = "CF_Barrier"

    def supports(self, model: Model, product: Product) -> bool:
        return (
            isinstance(model, BlackScholesModel)
            and isinstance(product, BarrierOption)
            and product.rebate == 0.0
        )

    def _price(self, model: BlackScholesModel, product: BarrierOption) -> PricingResult:
        s, k, h, r, sigma, t, q = (
            model.spot,
            product.strike,
            product.barrier,
            model.rate,
            model.volatility,
            product.maturity,
            model.dividend,
        )
        if product.payoff_type == "call":
            price = float(
                analytics.barrier_call_price(
                    s, k, h, r, sigma, t, q, barrier_type=product.barrier_type
                )
            )
            bump = 1e-4 * s
            up = analytics.barrier_call_price(
                s + bump, k, h, r, sigma, t, q, barrier_type=product.barrier_type
            )
            dn = analytics.barrier_call_price(
                s - bump, k, h, r, sigma, t, q, barrier_type=product.barrier_type
            )
        else:
            price = float(
                analytics.barrier_put_price(
                    s, k, h, r, sigma, t, q, barrier_type=product.barrier_type
                )
            )
            bump = 1e-4 * s
            up = analytics.barrier_put_price(
                s + bump, k, h, r, sigma, t, q, barrier_type=product.barrier_type
            )
            dn = analytics.barrier_put_price(
                s - bump, k, h, r, sigma, t, q, barrier_type=product.barrier_type
            )
        delta = float((np.asarray(up) - np.asarray(dn)) / (2 * bump))
        return PricingResult(price=price, delta=delta, n_evaluations=1)


class ClosedFormBasketApprox(PricingMethod):
    """Moment-matched lognormal approximation for European basket options.

    The basket value is approximated by a lognormal variable with the same
    first two moments (Levy 1992 approximation) and priced with the Black-76
    formula.  Used as a fast sanity check and as a control variate for the
    Monte-Carlo basket pricer.
    """

    method_name = "CF_BasketMomentMatch"

    def supports(self, model: Model, product: Product) -> bool:
        return (
            isinstance(model, MultiAssetBlackScholesModel)
            and isinstance(product, BasketOption)
            and product.dimension == model.dimension
            and np.all(product.weights >= 0)
        )

    def _price(self, model: MultiAssetBlackScholesModel, product: BasketOption) -> PricingResult:
        forward, vol = model.basket_lognormal_proxy(product.weights, product.maturity)
        df = model.discount_factor(product.maturity)
        price = float(
            analytics.black_formula(
                forward,
                product.strike,
                vol,
                product.maturity,
                df,
                is_call=(product.payoff_type == "call"),
            )
        )
        extra = {"proxy_forward": forward, "proxy_volatility": vol}
        return PricingResult(price=price, n_evaluations=1, extra=extra)

    def to_params(self) -> dict[str, Any]:
        return {}
