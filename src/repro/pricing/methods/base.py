"""Base classes shared by all numerical pricing methods.

A *method* is the third leg of Premia's (model, option, method) triple: a
numerical algorithm that can price certain (model, product) pairs.  Every
method implements

* :meth:`PricingMethod.supports` -- a cheap compatibility check used by the
  engine registry to refuse invalid combinations up front (mirroring Premia's
  compatibility tables);
* :meth:`PricingMethod.price` -- the actual computation, returning a
  :class:`PricingResult`;
* :meth:`PricingMethod.to_params` -- the method parameters (number of paths,
  grid sizes, ...) as a plain dictionary for serialization.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import IncompatibleMethodError
from repro.pricing.models.base import Model
from repro.pricing.products.base import Product

__all__ = ["PricingResult", "PricingMethod"]


@dataclass
class PricingResult:
    """Outcome of one pricing computation.

    Attributes
    ----------
    price:
        Present value of the product.
    delta:
        First derivative of the price with respect to the spot, when the
        method computes it (closed form, PDE, trees).  ``None`` otherwise.
    std_error:
        Monte-Carlo standard error of the price estimate (``None`` for
        deterministic methods).
    confidence_interval:
        95% confidence interval ``(low, high)`` for Monte-Carlo methods.
    method_name:
        Registry name of the method that produced the result.
    n_evaluations:
        Work indicator (number of paths, grid nodes, tree nodes...), used by
        the cluster cost model.
    elapsed:
        Wall-clock seconds spent inside :meth:`PricingMethod.price`.
    extra:
        Free-form dictionary of method-specific outputs (e.g. exercise
        boundary, per-step diagnostics).
    """

    price: float
    delta: float | None = None
    std_error: float | None = None
    confidence_interval: tuple[float, float] | None = None
    method_name: str = ""
    n_evaluations: int = 0
    elapsed: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view used by the serialization layer and reports."""
        return {
            "price": self.price,
            "delta": self.delta,
            "std_error": self.std_error,
            "confidence_interval": list(self.confidence_interval)
            if self.confidence_interval is not None
            else None,
            "method_name": self.method_name,
            "n_evaluations": self.n_evaluations,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PricingResult":
        ci = data.get("confidence_interval")
        return cls(
            price=float(data["price"]),
            delta=None if data.get("delta") is None else float(data["delta"]),
            std_error=None if data.get("std_error") is None else float(data["std_error"]),
            confidence_interval=None if ci is None else (float(ci[0]), float(ci[1])),
            method_name=str(data.get("method_name", "")),
            n_evaluations=int(data.get("n_evaluations", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
        )


class PricingMethod(abc.ABC):
    """Abstract base class of every pricing algorithm."""

    #: registry identifier, e.g. ``"CF_Call"`` or ``"MC_European"``
    method_name: str = "abstract"

    # -- compatibility ---------------------------------------------------------
    @abc.abstractmethod
    def supports(self, model: Model, product: Product) -> bool:
        """Return whether this method can price ``product`` under ``model``."""

    def check_supports(self, model: Model, product: Product) -> None:
        """Raise :class:`IncompatibleMethodError` when unsupported."""
        if not self.supports(model, product):
            raise IncompatibleMethodError(
                f"method {self.method_name!r} cannot price "
                f"{product.option_name!r} under {model.model_name!r}"
            )

    # -- computation --------------------------------------------------------------
    @abc.abstractmethod
    def _price(self, model: Model, product: Product) -> PricingResult:
        """Method-specific pricing; called by :meth:`price` after the
        compatibility check."""

    def price(self, model: Model, product: Product) -> PricingResult:
        """Price ``product`` under ``model``.

        Performs the compatibility check, times the computation and stamps
        the result with the method name.
        """
        self.check_supports(model, product)
        start = time.perf_counter()
        result = self._price(model, product)
        result.elapsed = time.perf_counter() - start
        result.method_name = self.method_name
        if not np.isfinite(result.price):
            raise IncompatibleMethodError(
                f"method {self.method_name!r} produced a non-finite price for "
                f"{product.option_name!r} under {model.model_name!r}"
            )
        return result

    # -- serialization ----------------------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        """Method parameters as a plain dictionary (default: no parameters)."""
        return {}

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "PricingMethod":
        return cls(**params)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PricingMethod):
            return NotImplemented
        return (
            self.method_name == other.method_name and self.to_params() == other.to_params()
        )

    def __hash__(self) -> int:
        return hash((self.method_name, tuple(sorted(self.to_params().items(), key=str))))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.to_params().items())
        return f"{type(self).__name__}({params})"
