"""Fourier-cosine (COS) pricing of European options.

The COS method of Fang & Oosterlee (2008) prices European calls and puts for
any model whose characteristic function of ``log(S_T / S_0)`` is known --
Black-Scholes, Heston and Merton in this library.  It is used both as a
standalone pricing method (it is the reference method for Heston Europeans in
the non-regression workload) and as ground truth for validating the
Monte-Carlo pricers on stochastic-volatility and jump models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import Model
from repro.pricing.products.base import Product
from repro.pricing.products.vanilla import DigitalCall, DigitalPut, EuropeanCall, EuropeanPut

__all__ = ["FourierCOS"]


def _chi(k: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    """Cosine coefficients of ``exp(x)`` on ``[c, d]`` within ``[a, b]``."""
    omega = k * np.pi / (b - a)
    denom = 1.0 + omega**2
    return (
        np.cos(omega * (d - a)) * np.exp(d)
        - np.cos(omega * (c - a)) * np.exp(c)
        + omega * np.sin(omega * (d - a)) * np.exp(d)
        - omega * np.sin(omega * (c - a)) * np.exp(c)
    ) / denom


def _psi(k: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    """Cosine coefficients of ``1`` on ``[c, d]`` within ``[a, b]``."""
    omega = k * np.pi / (b - a)
    out = np.empty_like(omega)
    nonzero = omega != 0
    out[nonzero] = (
        np.sin(omega[nonzero] * (d - a)) - np.sin(omega[nonzero] * (c - a))
    ) / omega[nonzero]
    out[~nonzero] = d - c
    return out


class FourierCOS(PricingMethod):
    """COS-method pricer for European vanilla and digital options.

    Parameters
    ----------
    n_terms:
        Number of cosine expansion terms (default 256; 64 is usually enough
        for Black-Scholes, Heston benefits from more).
    truncation_width:
        Half width ``L`` of the integration interval in units of the standard
        deviation of ``log(S_T/S_0)``, estimated numerically from the
        characteristic function (default 12).
    """

    method_name = "FFT_COS"

    def __init__(self, n_terms: int = 256, truncation_width: float = 12.0):
        if n_terms < 8:
            raise PricingError("n_terms must be at least 8")
        if truncation_width <= 0:
            raise PricingError("truncation_width must be positive")
        self.n_terms = int(n_terms)
        self.truncation_width = float(truncation_width)

    def to_params(self) -> dict[str, Any]:
        return {"n_terms": self.n_terms, "truncation_width": self.truncation_width}

    def supports(self, model: Model, product: Product) -> bool:
        if not isinstance(product, (EuropeanCall, EuropeanPut, DigitalCall, DigitalPut)):
            return False
        if model.dimension != 1:
            return False
        try:
            model.log_char_function(np.array([0.5]), product.maturity)
        except Exception:
            return False
        return True

    # -- helpers ---------------------------------------------------------------
    def _cumulants(self, model: Model, maturity: float) -> tuple[float, float]:
        """Numerical mean and variance of ``log(S_T/S_0)`` from the
        characteristic function (finite differences of ``log phi`` at 0)."""
        h = 1e-4
        u = np.array([-2 * h, -h, 0.0, h, 2 * h])
        phi = model.log_char_function(u, maturity)
        log_phi = np.log(phi)
        first = (log_phi[3] - log_phi[1]) / (2 * h)
        second = (log_phi[3] - 2 * log_phi[2] + log_phi[1]) / h**2
        mean = float(np.imag(first))
        var = float(max(-np.real(second), 1e-12))
        return mean, var

    def _price(self, model: Model, product: Product) -> PricingResult:
        maturity = product.maturity
        strike = product.strike
        spot = float(np.asarray(model.spot).reshape(-1)[0])
        discount = model.discount_factor(maturity)

        mean, var = self._cumulants(model, maturity)
        width = self.truncation_width * np.sqrt(var)
        # interval for y = log(S_T / K); x = log(S_0 / K)
        x = np.log(spot / strike)
        a = x + mean - width
        b = x + mean + width

        k = np.arange(self.n_terms)
        omega = k * np.pi / (b - a)
        phi = model.log_char_function(omega, maturity)
        # characteristic function of log(S_T/K) = log(S_T/S_0) + x
        phi_adj = phi * np.exp(1j * omega * (x - a))

        if isinstance(product, EuropeanCall):
            v_k = 2.0 / (b - a) * strike * (_chi(k, a, b, 0.0, b) - _psi(k, a, b, 0.0, b))
        elif isinstance(product, EuropeanPut):
            v_k = 2.0 / (b - a) * strike * (-_chi(k, a, b, a, 0.0) + _psi(k, a, b, a, 0.0))
        elif isinstance(product, DigitalCall):
            v_k = 2.0 / (b - a) * _psi(k, a, b, 0.0, b)
        else:  # DigitalPut
            v_k = 2.0 / (b - a) * _psi(k, a, b, a, 0.0)

        terms = np.real(phi_adj) * v_k
        terms[0] *= 0.5
        price = discount * float(np.sum(terms))
        price = max(price, 0.0)
        return PricingResult(
            price=price,
            n_evaluations=self.n_terms,
            extra={"interval": (float(a), float(b)), "n_terms": self.n_terms},
        )
