"""American Monte-Carlo pricing by Longstaff-Schwartz regression.

The paper's example problem (Section 3.3) is an American option in the Heston
model priced with ``MC_AM_Alfonsi_LongstaffSchwartz``; the realistic
portfolio additionally contains 525 American put options on a 7-dimensional
basket priced by "American Monte-Carlo techniques".  This module implements
the Longstaff-Schwartz least-squares algorithm for both cases:

* single-asset American options under any 1-d model of the library
  (Black-Scholes, local volatility, Heston -- for Heston the variance is
  simulated with the Alfonsi scheme when ``heston_scheme="alfonsi"``);
* American basket options under the multi-asset Black-Scholes model, with a
  regression basis built on the basket value.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import Model, MultiAssetModel
from repro.pricing.models.heston import HestonModel
from repro.pricing.products.american import AmericanBasketCall, AmericanBasketPut, AmericanCall, AmericanPut
from repro.pricing.products.base import ExerciseStyle, Product
from repro.pricing.rng import AntitheticGenerator, create_generator

__all__ = ["LongstaffSchwartz"]


def _polynomial_basis(x: np.ndarray, degree: int) -> np.ndarray:
    """Vandermonde-style polynomial basis ``[1, x, x^2, ..., x^degree]``.

    ``x`` is normalised by its mean to keep the regression well conditioned.
    """
    scale = np.mean(np.abs(x))
    scale = scale if scale > 1e-12 else 1.0
    xn = x / scale
    return np.column_stack([xn**k for k in range(degree + 1)])


class LongstaffSchwartz(PricingMethod):
    """Least-squares American Monte-Carlo (Longstaff-Schwartz 2001).

    Parameters
    ----------
    n_paths:
        Number of simulated paths.
    n_steps:
        Number of exercise dates (a Bermudan approximation of the American
        exercise right; 50 dates per year is the default).
    basis_degree:
        Degree of the polynomial regression basis in the state variable
        (the asset price, or the basket value for basket options).
    antithetic, rng_kind, seed:
        Random number generation controls, as for
        :class:`~repro.pricing.methods.montecarlo.MonteCarloEuropean`.
    heston_scheme:
        Variance discretisation scheme used when the model is Heston:
        ``"alfonsi"`` (default, the scheme named in the paper) or
        ``"full_truncation"``.
    """

    method_name = "MC_AM_LongstaffSchwartz"

    def __init__(
        self,
        n_paths: int = 50_000,
        n_steps: int | None = None,
        basis_degree: int = 3,
        antithetic: bool = True,
        rng_kind: str = "pcg64",
        seed: int = 0,
        heston_scheme: str = "alfonsi",
    ):
        if n_paths < 10:
            raise PricingError("n_paths must be at least 10")
        if n_steps is not None and n_steps < 2:
            raise PricingError("n_steps must be >= 2 when given")
        if basis_degree < 1:
            raise PricingError("basis_degree must be >= 1")
        if heston_scheme not in ("alfonsi", "full_truncation"):
            raise PricingError(f"unknown heston_scheme: {heston_scheme!r}")
        self.n_paths = int(n_paths)
        self.n_steps = None if n_steps is None else int(n_steps)
        self.basis_degree = int(basis_degree)
        self.antithetic = bool(antithetic)
        self.rng_kind = str(rng_kind)
        self.seed = int(seed)
        self.heston_scheme = heston_scheme

    def to_params(self) -> dict[str, Any]:
        return {
            "n_paths": self.n_paths,
            "n_steps": self.n_steps,
            "basis_degree": self.basis_degree,
            "antithetic": self.antithetic,
            "rng_kind": self.rng_kind,
            "seed": self.seed,
            "heston_scheme": self.heston_scheme,
        }

    # -- compatibility ---------------------------------------------------------
    def supports(self, model: Model, product: Product) -> bool:
        if product.exercise != ExerciseStyle.AMERICAN:
            return False
        if isinstance(product, (AmericanPut, AmericanCall)):
            return model.dimension == 1
        if isinstance(product, (AmericanBasketPut, AmericanBasketCall)):
            return isinstance(model, MultiAssetModel) and model.dimension == product.dimension
        return False

    # -- helpers -----------------------------------------------------------------
    def _effective_steps(self, product: Product) -> int:
        if self.n_steps is not None:
            return self.n_steps
        return max(10, int(np.ceil(50 * product.maturity)))

    def _state_variable(self, slice_values: np.ndarray, product: Product) -> np.ndarray:
        """Scalar regression state: asset price or basket value."""
        if slice_values.ndim == 1:
            return slice_values
        if isinstance(product, (AmericanBasketPut, AmericanBasketCall)):
            return slice_values @ product.weights
        return slice_values.mean(axis=1)

    def _exercise_value(self, slice_values: np.ndarray, product: Product) -> np.ndarray:
        return product.intrinsic_value(slice_values)

    # -- pricing -----------------------------------------------------------------
    def _price(self, model: Model, product: Product) -> PricingResult:
        n_steps = self._effective_steps(product)
        n_paths = self.n_paths
        if self.antithetic and n_paths % 2:
            n_paths += 1
        rng = create_generator(self.rng_kind, seed=self.seed, dimension=max(model.dimension, 1))
        if self.antithetic:
            rng = AntitheticGenerator(rng)
        times = np.linspace(0.0, product.maturity, n_steps + 1)

        if isinstance(model, HestonModel):
            paths = model.simulate_paths(rng, n_paths, times, scheme=self.heston_scheme)
        else:
            paths = model.simulate_paths(rng, n_paths, times)

        dt = product.maturity / n_steps
        step_discount = np.exp(-model.rate * dt)

        # cashflows received when following the current (sub)optimal policy,
        # expressed as value at the *current* step during backward induction
        terminal_slice = paths[:, -1] if paths.ndim == 2 else paths[:, -1, :]
        cashflows = self._exercise_value(terminal_slice, product).astype(float)

        for step in range(n_steps - 1, 0, -1):
            cashflows *= step_discount
            slice_values = paths[:, step] if paths.ndim == 2 else paths[:, step, :]
            exercise = self._exercise_value(slice_values, product)
            itm = exercise > 0.0
            if itm.sum() >= self.basis_degree + 2:
                state = self._state_variable(slice_values, product)
                basis = _polynomial_basis(state[itm], self.basis_degree)
                coeffs, *_ = np.linalg.lstsq(basis, cashflows[itm], rcond=None)
                continuation = basis @ coeffs
                exercise_now = exercise[itm] > continuation
                idx = np.where(itm)[0][exercise_now]
                cashflows[idx] = exercise[itm][exercise_now]
        cashflows *= step_discount

        # the option can also be exercised immediately at the valuation date
        spot0 = paths[:, 0] if paths.ndim == 2 else paths[:, 0, :]
        immediate = float(np.mean(self._exercise_value(spot0[:1], product)))

        mean = float(np.mean(cashflows))
        std_error = float(np.std(cashflows, ddof=1) / np.sqrt(n_paths))
        price = max(mean, immediate)
        half_width = 1.96 * std_error
        return PricingResult(
            price=price,
            std_error=std_error,
            confidence_interval=(price - half_width, price + half_width),
            n_evaluations=n_paths * n_steps,
            extra={
                "n_paths": n_paths,
                "n_steps": n_steps,
                "immediate_exercise": immediate,
                "basis_degree": self.basis_degree,
            },
        )
